"""Top-k trending items on the Kosarak-style click stream.

The paper's second real workload: an online news portal's click stream.
This example runs the top-k query three ways — ASketch (filter-backed,
§7.2.2), Space Saving (the counter-based specialist) and exact counting
— and reports precision and per-item error, reproducing the Figure 11
frequency-estimation comparison along the way.

Run with::

    python examples/clickstream_topk.py
"""

from __future__ import annotations

from repro import ASketch, SpaceSaving, kosarak_stream
from repro.metrics.error import observed_error_percent
from repro.metrics.precision import precision_at_k
from repro.queries.workload import frequency_weighted_queries

SYNOPSIS_BYTES = 128 * 1024
K = 20


def main() -> None:
    clicks = kosarak_stream(stream_size=500_000, seed=11)
    print(f"click stream: {len(clicks):,} clicks over "
          f"{clicks.distinct_seen():,} distinct pages")

    asketch = ASketch(total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=2)
    asketch.process_stream(clicks.keys)

    space_saving = SpaceSaving(total_bytes=SYNOPSIS_BYTES,
                               estimate_mode="zero")
    space_saving.process_stream(clicks.keys)

    truth = clicks.true_top_k(K)
    print(f"\ntop-{K} precision:")
    print(f"  asketch      "
          f"{precision_at_k(asketch.top_k(K), truth, k=K):.2f}")
    print(f"  space saving "
          f"{precision_at_k(space_saving.top_k(K), truth, k=K):.2f}")

    print(f"\n{'page':>8} {'true':>8} {'asketch':>8} {'space-saving':>12}")
    for key, true_count in truth[:8]:
        print(f"{key:>8} {true_count:>8,} {asketch.query(key):>8,} "
              f"{space_saving.estimate(key):>12,}")

    # Frequency-estimation error on the paper's query workload (queries
    # sampled from the stream, so hot pages are queried more).
    queries = frequency_weighted_queries(clicks, 20_000, seed=3)
    truths = [clicks.exact.count_of(int(key)) for key in queries]
    asketch_error = observed_error_percent(
        asketch.query_batch(queries), truths
    )
    ss_error = observed_error_percent(
        space_saving.estimate_batch(queries), truths
    )
    print(f"\nobserved frequency-estimation error: "
          f"asketch {asketch_error:.5f}%, space saving {ss_error:.5f}%")
    print("(Space Saving is built for top-k, not frequency estimation — "
          "the paper's Figure 11 point.)")


if __name__ == "__main__":
    main()
