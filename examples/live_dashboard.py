"""A live analytics pipeline: engine + sharded ASketch + consumers.

Puts the runtime layer together the way a collector deployment would:
a chunked source feeds a 4-shard ASketch through the ingestion engine;
a top-k board snapshots the trending items every 50K tuples and a
threshold alerter fires once per elephant flow as it crosses 0.5% of
traffic.

Run with::

    python examples/live_dashboard.py
"""

from __future__ import annotations

from repro import (
    ShardedASketch,
    StreamEngine,
    ThresholdAlert,
    TopKBoard,
    zipf_stream,
)

SHARDS = 4
CHUNK = 25_000


def main() -> None:
    stream = zipf_stream(400_000, 100_000, skew=1.3, seed=41)
    print(f"source: {len(stream):,} tuples over "
          f"{stream.distinct_seen():,} keys, chunked by {CHUNK:,}")

    synopsis = ShardedASketch(
        SHARDS, total_bytes=64 * 1024, filter_items=32, seed=5
    )
    engine = StreamEngine(synopsis)

    board = TopKBoard(synopsis, k=5)
    engine.every(100_000, board, name="top-5 board")
    threshold = int(0.005 * len(stream))
    alerts = ThresholdAlert(synopsis, threshold)
    engine.every(CHUNK, alerts, name="elephant alerts")

    stats = engine.run(stream.chunks(CHUNK))

    print(f"\ningested {stats.tuples_ingested:,} tuples in "
          f"{stats.chunks_ingested} chunks "
          f"({stats.wall_throughput_items_per_ms:,.0f} items/ms wall); "
          f"consumers fired {stats.consumer_firings} times")

    print("\ntop-5 board snapshots:")
    for position, snapshot in board.snapshots:
        keys = [key for key, _ in snapshot]
        print(f"  @{position:>7,}: {keys}")

    print(f"\nelephant alerts (threshold {threshold:,}):")
    for position, key, estimate in alerts.alerts[:8]:
        true = stream.exact.count_of(key)
        print(f"  @{position:>7,}: key {key} flagged at {estimate:,} "
              f"(final true count {true:,})")

    true_elephants = {
        key for key, count in stream.exact.items() if count >= threshold
    }
    caught = true_elephants & alerts.alerted_keys
    print(f"\nrecall: {len(caught)}/{len(true_elephants)} true elephants "
          "alerted before stream end")


if __name__ == "__main__":
    main()
