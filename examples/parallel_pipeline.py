"""Parallel ASketch: the two-core pipeline and SPMD scaling (§6.2-6.3).

Runs a sequential ASketch to measure its real operation split and
selectivity at several skews, then evaluates the paper's two parallel
deployments with the hardware models:

* pipeline: filter on core C0, sketch on core C1, exchanges as messages;
* SPMD: one independent counting kernel per core.

Run with::

    python examples/parallel_pipeline.py
"""

from __future__ import annotations

from repro import ASketch, PipelineSimulator, SpmdModel, zipf_stream


def main() -> None:
    pipeline = PipelineSimulator()
    print("pipeline parallelism (filter core + sketch core)")
    print(f"{'skew':>5} {'selectivity':>11} {'sequential':>11} "
          f"{'pipelined':>10} {'speedup':>8} {'bottleneck':>10}")
    for skew in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
        stream = zipf_stream(100_000, 25_000, skew, seed=17)
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=6)
        asketch.process_stream(stream.keys)
        stage0, stage1 = asketch.stage_ops()
        stage0.items = len(stream)
        result = pipeline.run(
            stage0,
            stage1,
            n_items=len(stream),
            forwarded_items=asketch.miss_events,
            returned_items=asketch.exchange_count,
            sketch_bytes=asketch.sketch.size_bytes,
            filter_bytes=asketch.filter.size_bytes,
        )
        print(
            f"{skew:>5.1f} {asketch.achieved_selectivity:>11.3f} "
            f"{result.sequential_items_per_ms:>9,.0f}/ms "
            f"{result.throughput_items_per_ms:>8,.0f}/ms "
            f"{result.speedup:>8.2f} {result.bottleneck:>10}"
        )

    print("\nSPMD scaling (one kernel per core, Zipf 1.5, 2.40 GHz)")
    stream = zipf_stream(100_000, 25_000, 1.5, seed=18)
    asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=7)
    asketch.process_stream(stream.keys)
    model = SpmdModel()
    print(f"{'cores':>6} {'aggregate':>12} {'efficiency':>10}")
    for cores in (1, 2, 4, 8, 16, 32):
        result = model.run(
            asketch.combined_ops(), asketch.sketch.size_bytes, cores
        )
        print(f"{cores:>6} {result.aggregate_items_per_ms:>10,.0f}/ms "
              f"{result.efficiency:>10.2%}")


if __name__ == "__main__":
    main()
