"""Network heavy-hitter monitoring on the IP-trace surrogate.

The paper's motivating IP-trace scenario: estimate per-flow packet
counts from a high-rate edge stream, flag flows crossing a threshold
(potential DDoS sources / elephants for load balancing), and show why
the ASketch filter matters — a plain Count-Min misreports the heaviest
flows and can promote mice to elephants.

Run with::

    python examples/network_heavy_hitters.py
"""

from __future__ import annotations

from repro import ASketch, CountMinSketch, ip_trace_stream
from repro.metrics.misclassification import find_misclassified
from repro.streams.ip_trace import decode_edge

SYNOPSIS_BYTES = 64 * 1024
ELEPHANT_FRACTION = 0.002  # flows above 0.2% of traffic are "elephants"


def flow_label(edge_key: int) -> str:
    source, destination = decode_edge(edge_key % (1 << 42))
    return f"host{source:05d}->host{destination:05d}"


def main() -> None:
    trace = ip_trace_stream(stream_size=400_000, n_distinct=12_000, seed=3)
    print(f"trace: {len(trace):,} packets over "
          f"{trace.distinct_seen():,} flows "
          f"(max flow {trace.max_frequency():,} packets)")

    monitor = ASketch(
        total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=1
    )
    baseline = CountMinSketch(num_hashes=8, total_bytes=SYNOPSIS_BYTES,
                              seed=1)

    # Ingest in chunks, as a collector would consume NetFlow batches.
    for chunk in trace.chunks(50_000):
        monitor.process_stream(chunk)
        baseline.update_batch(chunk)

    threshold = int(ELEPHANT_FRACTION * len(trace))
    print(f"\nelephant threshold: {threshold:,} packets")
    print(f"{'flow':>24} {'true':>9} {'count-min':>10} {'asketch':>9}")
    for key, true_count in trace.true_top_k(8):
        print(
            f"{flow_label(key):>24} {true_count:>9,} "
            f"{baseline.estimate(key):>10,} {monitor.query(key):>9,}"
        )

    # Accuracy on the elephants: total absolute error on the top flows.
    top = trace.true_top_k(32)
    cms_error = sum(abs(baseline.estimate(k) - c) for k, c in top)
    asketch_error = sum(abs(monitor.query(k) - c) for k, c in top)
    print(f"\ntotal error on the top-32 flows: "
          f"count-min {cms_error:,}, asketch {asketch_error:,}")

    # Mice promoted to elephants (the paper's misclassification story).
    cms_mice = find_misclassified(baseline, trace.exact, heavy_k=32)
    asketch_mice = find_misclassified(monitor, trace.exact, heavy_k=32)
    print(f"mice misreported at elephant level: "
          f"count-min {len(cms_mice)}, asketch {len(asketch_mice)}")

    # A live alerting pass: which flows does each synopsis flag?
    true_elephants = {
        key for key, count in trace.exact.items() if count >= threshold
    }
    flagged = {
        key for key, estimate in monitor.top_k(32) if estimate >= threshold
    }
    print(f"\ntrue elephants: {len(true_elephants)}, "
          f"flagged by asketch top-k: {len(flagged)}, "
          f"overlap: {len(true_elephants & flagged)}")


if __name__ == "__main__":
    main()
