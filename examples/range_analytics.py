"""Time-range analytics with the hierarchical Count-Min.

The related-work alternative to ASketch's filter-based top-k is a
hierarchical (dyadic) sketch [8] — and its real strength is *range*
queries.  This example indexes events by time bucket and answers
"how many events in [t1, t2]?" questions from O(log U) dyadic estimates
instead of a scan, alongside heavy-hitter detection over the same
structure.

Run with::

    python examples/range_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import HierarchicalCountMin

DOMAIN_BITS = 14          # 16 384 time buckets (e.g. ~11 days of minutes)
EVENTS = 300_000
SYNOPSIS_BYTES = 256 * 1024


def generate_event_times(seed: int) -> np.ndarray:
    """A diurnal-ish workload: two daily peaks plus uniform noise."""
    rng = np.random.default_rng(seed)
    buckets = 1 << DOMAIN_BITS
    day = 1440  # minutes
    base = rng.integers(0, buckets, size=EVENTS // 3)
    morning = (
        rng.normal(9 * 60, 45, size=EVENTS // 3).astype(np.int64)
        + day * rng.integers(0, buckets // day, size=EVENTS // 3)
    )
    evening = (
        rng.normal(20 * 60, 60, size=EVENTS - 2 * (EVENTS // 3)).astype(
            np.int64
        )
        + day * rng.integers(0, buckets // day, size=EVENTS - 2 * (EVENTS // 3))
    )
    times = np.concatenate([base, morning, evening])
    return np.clip(times, 0, buckets - 1)


def main() -> None:
    times = generate_event_times(seed=51)
    hierarchy = HierarchicalCountMin(
        DOMAIN_BITS, total_bytes=SYNOPSIS_BYTES, num_hashes=4, seed=3
    )
    hierarchy.update_batch(times)
    print(f"indexed {EVENTS:,} events into {hierarchy.levels} dyadic "
          f"levels ({hierarchy.size_bytes // 1024}KB total)")

    day = 1440
    queries = [
        ("day 0, morning peak (08:00-10:00)", 8 * 60, 10 * 60 - 1),
        ("day 0, full day", 0, day - 1),
        ("days 0-3", 0, 4 * day - 1),
        ("one quiet hour (03:00-04:00)", 3 * 60, 4 * 60 - 1),
    ]
    print(f"\n{'range':>36} {'true':>9} {'estimate':>9}")
    for label, low, high in queries:
        true = int(((times >= low) & (times <= high)).sum())
        estimate = hierarchy.range_count(low, high)
        print(f"{label:>36} {true:>9,} {estimate:>9,}")
        assert estimate >= true, "range estimates are one-sided"

    busiest = hierarchy.top_k(5)
    print("\nbusiest minutes (top-5 by estimate):")
    for bucket, estimate in busiest:
        hour, minute = divmod(int(bucket) % day, 60)
        print(f"  day {int(bucket) // day}, {hour:02d}:{minute:02d}  "
              f"~{estimate:,} events")

    print("\nRange answers come from O(log U) dyadic cells — no bucket "
          "scan — with the usual one-sided guarantee.")


if __name__ == "__main__":
    main()
