"""Quickstart: build an ASketch, feed it a skewed stream, query it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ASketch, CountMinSketch, zipf_stream


def main() -> None:
    # A synthetic stream shaped like the paper's synthetic dataset:
    # Zipf-distributed keys, scaled down from 32M/8M to 200K/50K.
    stream = zipf_stream(
        stream_size=200_000, n_distinct=50_000, skew=1.5, seed=7
    )
    print(f"stream: {len(stream):,} tuples, "
          f"{stream.distinct_seen():,} distinct keys, Zipf {stream.skew}")

    # An ASketch with the paper's defaults: 128KB total budget, a
    # 32-item Relaxed-Heap filter, Count-Min underneath.  The filter's
    # space is carved out of the sketch, so the total matches a plain
    # 128KB Count-Min.
    asketch = ASketch(total_bytes=128 * 1024, filter_items=32)
    asketch.process_stream(stream.keys)

    # Frequency estimation (Algorithm 2): heavy hitters answer from the
    # filter and are typically *exact*; the tail answers from the sketch
    # with the usual one-sided Count-Min guarantee.
    print("\ntop-5 true heavy hitters vs ASketch estimates:")
    for key, true_count in stream.true_top_k(5):
        print(f"  key {key:>8}: true {true_count:>7,}   "
              f"asketch {asketch.query(key):>7,}")

    # Compare with a plain Count-Min of the same total size.
    count_min = CountMinSketch(num_hashes=8, total_bytes=128 * 1024)
    count_min.update_batch(stream.keys)
    key, true_count = stream.true_top_k(1)[0]
    print(f"\nmost frequent key {key}: true {true_count:,}, "
          f"count-min {count_min.estimate(key):,}, "
          f"asketch {asketch.query(key):,}")

    # Top-k directly from the filter (§7.2.2).
    print("\nASketch top-5 (from the filter):")
    for key, estimate in asketch.top_k(5):
        print(f"  key {key:>8}: {estimate:>7,}")

    # Runtime statistics the paper's figures are built from.
    print(f"\nfilter selectivity N2/N: {asketch.achieved_selectivity:.3f} "
          f"(exchanges: {asketch.exchange_count})")


if __name__ == "__main__":
    main()
