"""Trending-now monitoring with a sliding-window ASketch.

Extension demo (built on the paper's Appendix-A deletions): track the
top items of the *last N events only*, so yesterday's viral page does
not dominate today's dashboard.  The workload shifts its popularity
distribution halfway through; the windowed synopsis follows the shift
while a whole-stream ASketch stays anchored to the old regime.

Run with::

    python examples/sliding_window_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import ASketch, SlidingWindowASketch, zipf_stream

WINDOW = 20_000
SYNOPSIS_BYTES = 64 * 1024


def shifted_workload(seed: int) -> np.ndarray:
    """Two popularity regimes: items [0, 5K) first, then [5K, 10K)."""
    before = zipf_stream(60_000, 5_000, 1.4, seed=seed).keys
    after = zipf_stream(60_000, 5_000, 1.4, seed=seed + 1).keys + 5_000
    return np.concatenate([before, after])


def main() -> None:
    events = shifted_workload(seed=23)
    print(f"workload: {len(events):,} events, popularity shift at "
          f"event {len(events) // 2:,}")

    windowed = SlidingWindowASketch(
        WINDOW, total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=1
    )
    whole_stream = ASketch(
        total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=1
    )

    checkpoints = [len(events) // 2 - 1, len(events) - 1]
    next_checkpoint = 0
    for position, key in enumerate(events.tolist()):
        windowed.process(key)
        whole_stream.update(key)
        if (next_checkpoint < len(checkpoints)
                and position == checkpoints[next_checkpoint]):
            regime = "old" if position < len(events) // 2 else "new"
            window_top = [k for k, _ in windowed.top_k(5)]
            stream_top = [k for k, _ in whole_stream.top_k(5)]
            new_regime_hits = sum(1 for k in window_top if k >= 5_000)
            print(f"\nafter event {position + 1:,} ({regime} regime):")
            print(f"  window   top-5: {window_top} "
                  f"({new_regime_hits}/5 from the current regime)")
            print(f"  lifetime top-5: {stream_top}")
            next_checkpoint += 1

    # The windowed synopsis must have flipped entirely to the new regime.
    final_top = [k for k, _ in windowed.top_k(10)]
    flipped = sum(1 for k in final_top if k >= 5_000)
    print(f"\nwindowed top-10 now from the new regime: {flipped}/10")
    stale = [k for k, _ in whole_stream.top_k(10)]
    lifetime_old = sum(1 for k in stale if k < 5_000)
    print(f"lifetime top-10 still from the old regime: {lifetime_old}/10")
    print("\nThe window follows the shift; the lifetime synopsis cannot — "
          "the capability Appendix-A deletions unlock.")


if __name__ == "__main__":
    main()
