"""Sketch-backed word co-occurrence counting for NLP (PMI ranking).

The paper's introduction cites sentiment-analysis pipelines that count
word and word-pair frequencies in sketches to compute pointwise mutual
information (PMI); inaccurate counts then misrank words.  This example
builds that pipeline end to end:

* synthetic "text" with Zipf word frequencies (the shape of natural
  language) into which 12 genuine collocations are planted — bigrams
  whose words strongly predict each other;
* one ASketch counts single-word frequencies, another counts bigrams;
* PMI is computed from the synopses, with the standard minimum-support
  cutoff, and the resulting collocation ranking is compared against the
  ranking from exact counts.

Run with::

    python examples/nlp_cooccurrence.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import ASketch, ExactCounter, zipf_stream

VOCABULARY = 20_000
TOKENS = 300_000
SYNOPSIS_BYTES = 128 * 1024
PLANTED_COLLOCATIONS = 12
MIN_SUPPORT = 40  # standard PMI practice: ignore rare pairs


def pair_key(word_a: int, word_b: int) -> int:
    """Order-insensitive encoding of a word pair."""
    low, high = (word_a, word_b) if word_a <= word_b else (word_b, word_a)
    return low * VOCABULARY + high


def generate_text(seed: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Zipf tokens with planted collocations.

    For each planted bigram (a, b), 70% of occurrences of ``a`` are
    immediately followed by ``b`` — a strong collocation, like
    "New York" in real text.
    """
    base = zipf_stream(TOKENS, VOCABULARY, skew=1.1, seed=seed)
    tokens = base.keys.copy()
    rng = np.random.default_rng(seed + 1)
    # Plant among mid-frequency words so the pairs are frequent enough
    # to matter but not trivially the most common words.
    ranked = [word for word, _ in base.exact.top_k(120)]
    partners = ranked[40 : 40 + 2 * PLANTED_COLLOCATIONS]
    planted = [
        (partners[2 * i], partners[2 * i + 1])
        for i in range(PLANTED_COLLOCATIONS)
    ]
    follower = {a: b for a, b in planted}
    for position in range(TOKENS - 1):
        word = int(tokens[position])
        partner = follower.get(word)
        if partner is not None and rng.random() < 0.7:
            tokens[position + 1] = partner
    return tokens, planted


def main() -> None:
    tokens, planted = generate_text(seed=13)
    print(f"corpus: {TOKENS:,} tokens, vocabulary {VOCABULARY:,}, "
          f"{len(planted)} planted collocations")

    word_sketch = ASketch(total_bytes=SYNOPSIS_BYTES, filter_items=64,
                          seed=4)
    pair_sketch = ASketch(total_bytes=2 * SYNOPSIS_BYTES, filter_items=64,
                          seed=5)
    exact_words = ExactCounter()
    exact_pairs = ExactCounter()

    word_sketch.process_stream(tokens)
    exact_words.update_batch(tokens)

    token_list = tokens.tolist()
    total_pairs = TOKENS - 1
    for left, right in zip(token_list, token_list[1:]):
        key = pair_key(left, right)
        pair_sketch.process(key)
        exact_pairs.update(key)

    # Candidate pairs: the pair sketch's own heavy hitters (its filter),
    # plus anything above the support cutoff among planted+random pairs.
    candidates = {key for key, _ in pair_sketch.top_k(64)}
    candidates |= {pair_key(a, b) for a, b in planted}

    def pmi_of(pair_counts, word_counts, key: int) -> float:
        word_a, word_b = divmod(key, VOCABULARY)
        joint = pair_counts(key)
        if joint < MIN_SUPPORT:
            return float("-inf")
        expected = (
            word_counts(word_a) / TOKENS
        ) * (word_counts(word_b) / TOKENS)
        return math.log2((joint / total_pairs) / expected)

    def ranking(pair_counts, word_counts) -> list[int]:
        scored = sorted(
            candidates,
            key=lambda key: pmi_of(pair_counts, word_counts, key),
            reverse=True,
        )
        return scored[: len(planted)]

    sketch_top = ranking(pair_sketch.query, word_sketch.query)
    exact_top = ranking(exact_pairs.count_of, exact_words.count_of)

    planted_keys = {pair_key(a, b) for a, b in planted}
    sketch_found = len(planted_keys & set(sketch_top))
    exact_found = len(planted_keys & set(exact_top))
    agreement = len(set(sketch_top) & set(exact_top))

    print(f"\nplanted collocations recovered in top-{len(planted)} by PMI:")
    print(f"  exact counting: {exact_found}/{len(planted)}")
    print(f"  sketch-backed:  {sketch_found}/{len(planted)}")
    print(f"  sketch/exact ranking agreement: "
          f"{agreement}/{len(planted)}")

    print(f"\n{'pair':>16} {'sketch PMI':>10} {'exact PMI':>10}")
    for key in sketch_top[:8]:
        word_a, word_b = divmod(key, VOCABULARY)
        sketch_value = pmi_of(pair_sketch.query, word_sketch.query, key)
        exact_value = pmi_of(exact_pairs.count_of, exact_words.count_of, key)
        print(f"{f'({word_a},{word_b})':>16} {sketch_value:>10.3f} "
              f"{exact_value:>10.3f}")

    assert sketch_found >= exact_found - 2, (
        "sketch-backed PMI lost collocations relative to exact counting"
    )
    print("\nAccurate heavy-hitter counts keep the sketch PMI ranking "
          "aligned with exact counting — the paper's NLP motivation.")


if __name__ == "__main__":
    main()
