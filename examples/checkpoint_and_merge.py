"""Distributed collectors: checkpoint, restore, and merge synopses.

Extension demo: four collector shards each summarise their own partition
of a stream (e.g. per-NIC or per-datacenter), checkpoint to disk,
restart from the checkpoint, and finally merge into one global synopsis
whose answers keep the one-sided guarantee over the union of all
partitions — the aggregation story behind the paper's SPMD deployment.

Run with::

    python examples/checkpoint_and_merge.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ASketch,
    ExactCounter,
    load_asketch,
    save_asketch,
    zipf_stream,
)
from repro.runtime.sharding import ShardedASketch

SHARDS = 4
SYNOPSIS_BYTES = 64 * 1024


def main() -> None:
    partitions = [
        zipf_stream(50_000, 12_000, 1.4, seed=31 + shard)
        for shard in range(SHARDS)
    ]
    truth = ExactCounter()
    for partition in partitions:
        truth.update_batch(partition.keys)
    print(f"{SHARDS} shards x {len(partitions[0]):,} tuples, "
          f"{truth.distinct:,} distinct keys overall")

    with tempfile.TemporaryDirectory() as workdir:
        # Phase 1: each shard summarises its partition and checkpoints.
        # Shards share seeds so their sketches are merge-compatible.
        checkpoint_paths = []
        for shard, partition in enumerate(partitions):
            collector = ASketch(
                total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=7
            )
            collector.process_stream(partition.keys)
            path = Path(workdir) / f"shard{shard}.npz"
            save_asketch(collector, path)
            checkpoint_paths.append(path)
            print(f"  shard {shard}: checkpointed "
                  f"({collector.exchange_count} exchanges, "
                  f"selectivity {collector.achieved_selectivity:.3f})")

        # Phase 2: a fresh aggregator restores every checkpoint ("the
        # collectors restarted") and merges them into one synopsis.
        restored = [load_asketch(path) for path in checkpoint_paths]
        merged = restored[0]
        for other in restored[1:]:
            merged.merge(other)

    print(f"\nmerged synopsis: {merged.total_mass:,} tuples accounted")

    print(f"\n{'key':>8} {'true total':>10} {'merged est':>10}")
    violations = 0
    for key, count in truth.top_k(8):
        estimate = merged.query(key)
        print(f"{key:>8} {count:>10,} {estimate:>10,}")
        if estimate < count:
            violations += 1
    assert violations == 0, "one-sided guarantee violated after merge"

    # Global top-k from the merged filter.
    merged_top = {key for key, _ in merged.top_k(10)}
    true_top = {key for key, _ in truth.top_k(10)}
    print(f"\nmerged top-10 vs true global top-10 overlap: "
          f"{len(merged_top & true_top)}/10")
    print("Checkpoints restore bit-for-bit; merging preserves the "
          "one-sided guarantee over the union of all shards.")

    # Alternative: hash-partitioned sharding in one process.  reduce()
    # collapses the group into a single standalone ASketch without
    # touching the shards.
    group = ShardedASketch(
        shards=SHARDS, total_bytes=SYNOPSIS_BYTES, filter_items=32, seed=7
    )
    group.process_stream(
        np.concatenate([partition.keys for partition in partitions])
    )
    reduced = group.reduce()
    key, count = truth.top_k(1)[0]
    print(f"\nShardedASketch.reduce(): one ASketch, "
          f"{reduced.total_mass:,} tuples; top key estimate "
          f"{reduced.query(key):,} (true {count:,})")


if __name__ == "__main__":
    main()
