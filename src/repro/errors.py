"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` from wrong argument types, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or impossible parameters.

    Examples: a synopsis byte budget too small to hold a single sketch row,
    a filter capacity of zero, or a hash family asked for a non-positive
    output range.
    """


class CapacityError(ReproError):
    """A bounded data structure was asked to hold more than it can.

    Raised by filters when an unconditional insert is attempted on a full
    filter (the ASketch update path never triggers this; it is a guard for
    direct misuse of the filter API).
    """


class NegativeCountError(ReproError):
    """A deletion would drive an item's count below zero.

    The paper (Appendix A) models deletions as negative-count updates that
    are only well defined while every item's running count stays
    non-negative (the "strict turnstile" model).  Violations raise this
    error rather than silently corrupting the synopsis.
    """


class UnknownExperimentError(ReproError):
    """An experiment id was not found in the experiment registry."""


class StreamFormatError(ReproError):
    """A stream file on disk is malformed or from an incompatible version."""


class TransientSourceError(ReproError):
    """A chunk source failed in a way that is expected to heal on retry.

    The canonical producer is an unreliable transport (socket hiccup,
    NFS stall); :class:`~repro.runtime.reliability.RetryingSource`
    retries these with exponential backoff before giving up.  The
    fault-injection harness raises it deterministically to exercise the
    retry path.
    """


class RetryExhaustedError(ReproError):
    """A retryable source error persisted past its retry budget.

    Raised by :class:`~repro.runtime.reliability.RetryingSource` after
    the per-error-class :class:`~repro.runtime.reliability.RetryPolicy`
    allowance is spent; the final underlying failure is chained as
    ``__cause__``.  Attributes: ``chunk_index`` (0-based index of the
    chunk being fetched), ``attempts`` (total fetch attempts made).
    """

    def __init__(self, message: str, *, chunk_index: int, attempts: int) -> None:
        super().__init__(message)
        self.chunk_index = chunk_index
        self.attempts = attempts


class PoisonChunkError(ReproError):
    """An ingest chunk failed validation and must not reach a synopsis.

    Covers payloads the integer-keyed turnstile model cannot represent:
    float or object dtypes (silent ``int64`` coercion would truncate
    fractional keys), NaN/inf keys, non-1-D shapes, and negative counts
    outside the strict-turnstile model.  Attributes: ``chunk_index``
    (0-based position of the offending chunk in the source), ``reason``
    (human-readable validation failure).
    """

    def __init__(self, reason: str, *, chunk_index: int) -> None:
        super().__init__(f"poison chunk {chunk_index}: {reason}")
        self.chunk_index = chunk_index
        self.reason = reason


class RecoveryError(ReproError):
    """Crash recovery could not restore a usable checkpoint.

    Raised by :class:`~repro.runtime.reliability.CheckpointStore` and
    :meth:`~repro.runtime.reliability.ResilientEngine.resume` when the
    journal names checkpoints but every recorded generation fails
    validation (corrupt archive, checksum mismatch, missing snapshot).
    """


class WorkerStalledError(ReproError):
    """A parallel worker stopped consuming its ring without dying.

    Raised by the parent-side wait loops of
    :class:`~repro.runtime.parallel.ParallelIngestRuntime` when a
    worker process is still alive but has made no ring progress within
    its stall budget — the "slow/hung worker" case, which liveness
    polling alone cannot distinguish from a merely busy worker.  The
    runtime catches it internally and fails the worker over (respawn,
    inline, or standby per configuration); it escapes to callers only
    when no recovery tier is available.  Attributes: ``worker``
    (worker index), ``waited_seconds`` (how long the parent waited
    without observing progress).
    """

    def __init__(
        self, message: str, *, worker: int, waited_seconds: float
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.waited_seconds = waited_seconds


class ShardFailedError(ReproError):
    """A shard of a partitioned synopsis group failed during ingestion.

    Raised inside the per-shard ingest path (or injected by the fault
    harness); :class:`~repro.runtime.reliability.ShardSupervisor`
    catches it, isolates the shard, and degrades to a standby sketch
    rather than letting the whole group fail.
    """
