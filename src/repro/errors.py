"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` from wrong argument types, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or impossible parameters.

    Examples: a synopsis byte budget too small to hold a single sketch row,
    a filter capacity of zero, or a hash family asked for a non-positive
    output range.
    """


class CapacityError(ReproError):
    """A bounded data structure was asked to hold more than it can.

    Raised by filters when an unconditional insert is attempted on a full
    filter (the ASketch update path never triggers this; it is a guard for
    direct misuse of the filter API).
    """


class NegativeCountError(ReproError):
    """A deletion would drive an item's count below zero.

    The paper (Appendix A) models deletions as negative-count updates that
    are only well defined while every item's running count stays
    non-negative (the "strict turnstile" model).  Violations raise this
    error rather than silently corrupting the synopsis.
    """


class UnknownExperimentError(ReproError):
    """An experiment id was not found in the experiment registry."""


class StreamFormatError(ReproError):
    """A stream file on disk is malformed or from an incompatible version."""
