"""Achieved filter selectivity (paper Figure 17, "achieved" series)."""

from __future__ import annotations

from repro.core.asketch import ASketch


def achieved_selectivity(asketch: ASketch) -> float:
    """Measured ``N2 / N`` of a processed ASketch.

    ``N2`` is the count mass that overflowed the filter into the sketch
    (exchange re-insertions excluded, matching the paper's definition of
    filter selectivity as the *overflow* ratio).
    """
    return asketch.achieved_selectivity
