"""Misclassification of low-frequency items as heavy hitters.

The paper's Table 3 counts, for small Count-Min synopses, "low-frequency
items misleadingly appearing as very high-frequency items", and Figure 6
reports the average relative error those items carry (order 1e5 for a
16KB sketch).  Operationally:

* the *heavy threshold* is the true count of the k-th most frequent item
  (k defaults to 32, the filter size used throughout §7);
* an item is **misclassified** when its estimated count reaches the heavy
  threshold although its true count is at most ``tail_fraction`` of it —
  i.e. a genuinely light item that a top-k-by-estimate scan would report
  as heavy.

Scanning estimates for every distinct item requires a synopsis-wide
sweep, which the vectorised ``estimate_batch`` paths keep fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.counters.exact import ExactCounter
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Misclassification:
    """One light item reported at heavy-hitter level."""

    key: int
    true_count: int
    estimated_count: int

    @property
    def relative_error(self) -> float:
        return abs(self.estimated_count - self.true_count) / self.true_count


def find_misclassified(
    estimator,
    exact: ExactCounter,
    heavy_k: int = 32,
    tail_fraction: float = 0.01,
) -> list[Misclassification]:
    """All light items whose estimate reaches the top-``heavy_k`` level.

    Parameters
    ----------
    estimator:
        Any object with ``estimate_batch`` (sketch or ASketch).
    exact:
        Ground truth for the same stream.
    heavy_k:
        Rank defining "high-frequency": the threshold is the true count
        of the ``heavy_k``-th item.
    tail_fraction:
        An item counts as low-frequency when its true count is at most
        ``tail_fraction * threshold``.
    """
    if heavy_k < 1:
        raise ConfigurationError(f"heavy_k must be >= 1, got {heavy_k}")
    if not 0 < tail_fraction < 1:
        raise ConfigurationError(
            f"tail_fraction must be in (0, 1), got {tail_fraction}"
        )
    top = exact.top_k(heavy_k)
    if len(top) < heavy_k:
        raise ConfigurationError(
            f"stream has only {len(top)} distinct items, need >= {heavy_k}"
        )
    threshold = top[-1][1]
    tail_cutoff = tail_fraction * threshold

    pairs = exact.items()
    keys = np.fromiter((key for key, _ in pairs), dtype=np.int64)
    true_counts = np.fromiter((count for _, count in pairs), dtype=np.int64)
    light = true_counts <= tail_cutoff
    if not light.any():
        return []
    light_keys = keys[light]
    light_true = true_counts[light]
    estimates = np.asarray(estimator.estimate_batch(light_keys))
    hit = estimates >= threshold
    return [
        Misclassification(int(key), int(true), int(estimate))
        for key, true, estimate in zip(
            light_keys[hit], light_true[hit], estimates[hit]
        )
    ]
