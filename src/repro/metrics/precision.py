"""Precision-at-k for top-k frequent-items queries (paper Table 5)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError


def precision_at_k(
    reported: Sequence[tuple[int, int]] | Iterable[int],
    true_top: Sequence[tuple[int, int]] | Iterable[int],
    k: int | None = None,
) -> float:
    """Fraction of the reported top-k that are true top-k items.

    Accepts either (key, count) pairs or bare keys for both arguments;
    only keys matter.  ``k`` defaults to ``len(reported)``.
    """
    reported_keys = [_key_of(entry) for entry in reported]
    true_keys = {_key_of(entry) for entry in true_top}
    if k is None:
        if not reported_keys:
            return 0.0
        k = len(reported_keys)
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    head = reported_keys[:k]
    if not head:
        return 0.0
    hits = sum(1 for key in head if key in true_keys)
    return hits / k


def _key_of(entry) -> int:
    if isinstance(entry, tuple):
        return int(entry[0])
    return int(entry)
