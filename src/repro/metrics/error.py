"""Observed error and average relative error (paper §7.1).

Observed error:

    ``sum_i |est_i - true_i| / sum_i true_i``  over the queried items,

reported as a percentage in the paper's figures.  Average relative error:

    ``(1/|Q|) * sum_i |est_i - true_i| / true_i``,

which the paper notes is biased towards low-frequency items (small
denominators).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def _as_arrays(
    estimates: Sequence[int], truths: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    est = np.asarray(estimates, dtype=np.float64)
    true = np.asarray(truths, dtype=np.float64)
    if est.shape != true.shape:
        raise ConfigurationError(
            f"estimates and truths differ in length: {est.shape} vs "
            f"{true.shape}"
        )
    if est.size == 0:
        raise ConfigurationError("error metrics need at least one query")
    return est, true


def observed_error(estimates: Sequence[int], truths: Sequence[int]) -> float:
    """Total absolute error over total true count (a ratio, not percent)."""
    est, true = _as_arrays(estimates, truths)
    denominator = true.sum()
    if denominator == 0:
        raise ConfigurationError(
            "observed error undefined: queried items have zero total count"
        )
    return float(np.abs(est - true).sum() / denominator)


def observed_error_percent(
    estimates: Sequence[int], truths: Sequence[int]
) -> float:
    """Observed error as the percentage the paper's figures plot."""
    return 100.0 * observed_error(estimates, truths)


def average_relative_error(
    estimates: Sequence[int], truths: Sequence[int]
) -> float:
    """Mean of per-query ``|est - true| / true``.

    Queries whose true count is zero are excluded (their relative error
    is undefined); if every query has zero true count the metric is an
    error.
    """
    est, true = _as_arrays(estimates, truths)
    valid = true > 0
    if not valid.any():
        raise ConfigurationError(
            "average relative error undefined: all queried items have "
            "zero true count"
        )
    return float(
        (np.abs(est[valid] - true[valid]) / true[valid]).mean()
    )
