"""Accuracy metrics exactly as defined in the paper's §7.1.

* observed error and average relative error over a query set
  (:mod:`repro.metrics.error`);
* misclassification of low-frequency items as heavy hitters
  (:mod:`repro.metrics.misclassification`, Table 3 / Figure 6);
* precision-at-k for top-k queries (:mod:`repro.metrics.precision`,
  Table 5);
* achieved filter selectivity (:mod:`repro.metrics.selectivity`,
  Figure 17).
"""

from repro.metrics.error import (
    average_relative_error,
    observed_error,
    observed_error_percent,
)
from repro.metrics.misclassification import (
    Misclassification,
    find_misclassified,
)
from repro.metrics.precision import precision_at_k
from repro.metrics.selectivity import achieved_selectivity

__all__ = [
    "Misclassification",
    "achieved_selectivity",
    "average_relative_error",
    "find_misclassified",
    "observed_error",
    "observed_error_percent",
    "precision_at_k",
]
