"""Synthetic Kosarak click stream matching the paper's published statistics.

The Kosarak dataset is an anonymised click stream of a Hungarian online
news portal: 8M clicks over 40 270 distinct items, maximum item frequency
601 374, with skew "similar to a Zipf distribution of 1.0" (§7.1).  The
original is distributed by the FIMI repository (no network access here),
so this module synthesises a stream with the same shape.  The distinct
count is kept at the original 40 270 — it is small enough to keep — and
the stream length scales (DESIGN.md, substitution 4).
"""

from __future__ import annotations

from repro.streams.base import Stream
from repro.streams.zipf import zipf_stream

#: Published statistics of the original click stream.
PAPER_STREAM_SIZE = 8_000_000
PAPER_DISTINCT_ITEMS = 40_270
PAPER_MAX_FREQUENCY = 601_374
PAPER_SKEW = 1.0


def kosarak_stream(
    stream_size: int = 1_000_000,
    n_distinct: int = PAPER_DISTINCT_ITEMS,
    seed: int = 11,
) -> Stream:
    """Generate the Kosarak surrogate (defaults: 1M clicks, 40 270 items)."""
    stream = zipf_stream(
        stream_size=stream_size,
        n_distinct=n_distinct,
        skew=PAPER_SKEW,
        seed=seed,
        name="kosarak",
    )
    return stream
