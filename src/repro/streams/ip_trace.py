"""Synthetic IP-trace edge stream matching the paper's published statistics.

The paper's IP-trace dataset is an anonymised LAN packet trace: 461M
tuples over 13M distinct *edges* (source/destination IP pairs), maximum
edge frequency 17 978 588, with a frequency distribution "similar to a
Zipf distribution of skew 0.9" (§7.1).  The trace itself is proprietary,
so this module generates an edge stream with the same shape:

* edge frequencies follow Zipf(0.9) over the requested number of distinct
  edges;
* keys are *edge encodings* of (source, destination) endpoint pairs so the
  example applications can decode realistic-looking flows;
* the default size keeps the paper's ~35:1 tuples-to-distinct ratio.

Because frequency estimation depends only on the frequency vector, this
surrogate exercises the same code paths and error behaviour as the
original trace (DESIGN.md, substitution 3).
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Stream
from repro.streams.zipf import zipf_stream

#: Published statistics of the original trace.
PAPER_STREAM_SIZE = 461_000_000
PAPER_DISTINCT_EDGES = 13_000_000
PAPER_MAX_FREQUENCY = 17_978_588
PAPER_SKEW = 0.9

_ENDPOINT_BITS = 21  # up to ~2M endpoints, well above any scaled run


def encode_edge(source: int, destination: int) -> int:
    """Pack a (source, destination) endpoint pair into one edge key."""
    return (source << _ENDPOINT_BITS) | destination


def decode_edge(edge_key: int) -> tuple[int, int]:
    """Unpack an edge key back into (source, destination)."""
    return edge_key >> _ENDPOINT_BITS, edge_key & ((1 << _ENDPOINT_BITS) - 1)


def ip_trace_stream(
    stream_size: int = 1_400_000,
    n_distinct: int = 40_000,
    seed: int = 7,
) -> Stream:
    """Generate the IP-trace surrogate.

    The defaults scale the original 461M/13M trace down by ~330x while
    keeping the tuples-to-distinct ratio (~35:1) and the skew.
    """
    base = zipf_stream(
        stream_size=stream_size,
        n_distinct=n_distinct,
        skew=PAPER_SKEW,
        seed=seed,
        name="ip-trace",
    )
    # Re-encode item ids as edges between synthetic endpoints: distribute
    # ids over endpoint pairs deterministically.
    rng = np.random.default_rng(seed + 1)
    n_endpoints = max(2, int(np.sqrt(n_distinct) * 4))
    sources = rng.integers(0, n_endpoints, size=n_distinct, dtype=np.int64)
    destinations = rng.integers(0, n_endpoints, size=n_distinct, dtype=np.int64)
    edge_keys = (sources << _ENDPOINT_BITS) | destinations
    # Edge keys may repeat across item ids; offset repeats so distinctness
    # is preserved (edge identity still decodes to plausible endpoints).
    unique, first_index = np.unique(edge_keys, return_index=True)
    del unique
    is_first = np.zeros(n_distinct, dtype=bool)
    is_first[first_index] = True
    collision_fix = np.cumsum(~is_first).astype(np.int64)
    edge_keys = edge_keys + (~is_first) * (
        (np.int64(1) << np.int64(2 * _ENDPOINT_BITS)) + collision_fix
    )
    keys = edge_keys[base.keys]
    return Stream(
        keys=keys,
        name="ip-trace",
        skew=PAPER_SKEW,
        n_distinct_domain=int(n_distinct),
        seed=seed,
    )
