"""Uniform stream generator (the skew = 0 end of the paper's sweeps)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import Stream


def uniform_stream(
    stream_size: int,
    n_distinct: int,
    seed: int = 0,
    name: str = "uniform",
) -> Stream:
    """Draw ``stream_size`` keys uniformly from ``[0, n_distinct)``.

    Equivalent to ``zipf_stream(..., skew=0)`` but sampled directly,
    which is much faster for large domains.
    """
    if stream_size < 1:
        raise ConfigurationError(
            f"stream_size must be >= 1, got {stream_size}"
        )
    if n_distinct < 1:
        raise ConfigurationError(
            f"n_distinct must be >= 1, got {n_distinct}"
        )
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_distinct, size=stream_size, dtype=np.int64)
    return Stream(
        keys=keys,
        name=name,
        skew=0.0,
        n_distinct_domain=int(n_distinct),
        seed=seed,
    )
