"""Persist streams to disk so expensive generations can be reused."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import StreamFormatError
from repro.streams.base import Stream

_FORMAT_VERSION = 1


def save_stream(stream: Stream, path: str | Path) -> None:
    """Write a stream (keys + metadata) to a ``.npz`` file."""
    path = Path(path)
    metadata = {
        "version": _FORMAT_VERSION,
        "name": stream.name,
        "skew": stream.skew,
        "n_distinct_domain": stream.n_distinct_domain,
        "seed": stream.seed,
    }
    np.savez_compressed(
        path,
        keys=stream.keys,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    )


def load_stream(path: str | Path) -> Stream:
    """Read a stream written by :func:`save_stream`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            keys = archive["keys"]
            metadata_bytes = archive["metadata"].tobytes()
    except (OSError, KeyError, ValueError) as exc:
        raise StreamFormatError(f"cannot read stream file {path}: {exc}")
    try:
        metadata = json.loads(metadata_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StreamFormatError(f"corrupt metadata in {path}: {exc}")
    if metadata.get("version") != _FORMAT_VERSION:
        raise StreamFormatError(
            f"unsupported stream format version {metadata.get('version')!r} "
            f"in {path}"
        )
    return Stream(
        keys=keys,
        name=metadata["name"],
        skew=metadata["skew"],
        n_distinct_domain=metadata["n_distinct_domain"],
        seed=metadata["seed"],
    )
