"""Stream datasets: synthetic Zipf/uniform plus the paper's real-data surrogates.

The paper evaluates on (§7.1):

* a **synthetic** Zipf stream — 32M tuples over 8M distinct items, skew
  varied 0..3 (:func:`~repro.streams.zipf.zipf_stream`);
* the **IP-trace** network stream — 461M tuples, 13M distinct edges,
  max frequency 17 978 588, Zipf-like skew 0.9.  Proprietary, so
  :func:`~repro.streams.ip_trace.ip_trace_stream` synthesises an edge
  stream with those published statistics (see DESIGN.md substitution 3);
* the **Kosarak** click stream — 8M clicks, 40 270 distinct items,
  max frequency 601 374, Zipf-like skew 1.0; same treatment
  (:func:`~repro.streams.kosarak.kosarak_stream`).

All generators return a :class:`~repro.streams.base.Stream` with integer
keys, a cached exact counter, and provenance metadata; they are
deterministic in their ``seed``.
"""

from repro.streams.adversarial import (
    lemma2_alternating_stream,
    lemma3_colliding_stream,
)
from repro.streams.base import Stream
from repro.streams.io import load_stream, save_stream
from repro.streams.ip_trace import decode_edge, encode_edge, ip_trace_stream
from repro.streams.kosarak import kosarak_stream
from repro.streams.uniform import uniform_stream
from repro.streams.zipf import zipf_stream

__all__ = [
    "Stream",
    "decode_edge",
    "encode_edge",
    "ip_trace_stream",
    "kosarak_stream",
    "lemma2_alternating_stream",
    "lemma3_colliding_stream",
    "load_stream",
    "save_stream",
    "uniform_stream",
    "zipf_stream",
]
