"""Zipf stream generator — the paper's synthetic dataset.

The paper's synthetic workload draws 32M tuples over 8M distinct items
with skew varied from 0 to 3 (§7.1).  Ranks are mapped to *shuffled* key
ids so that an item's key value carries no frequency information (sketch
hash quality must not correlate with rank), and samples are drawn i.i.d.
from the Zipf law — frequency-estimation accuracy depends only on the
frequency vector, and i.i.d. arrival is the natural-order assumption the
paper's filter analysis uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import zipf_probabilities
from repro.errors import ConfigurationError
from repro.streams.base import Stream


def zipf_stream(
    stream_size: int,
    n_distinct: int,
    skew: float,
    seed: int = 0,
    name: str = "zipf",
    method: str = "sampled",
) -> Stream:
    """Generate a Zipf(skew) stream.

    Parameters
    ----------
    stream_size:
        Number of tuples ``N`` (the paper uses 32M; the scaled default in
        the experiment configs is smaller, see ``ExperimentConfig``).
    n_distinct:
        Size of the item domain ``M`` (the paper uses 8M).
    skew:
        Zipf exponent ``z``; 0 gives the uniform distribution.
    seed:
        RNG seed; streams are deterministic per (size, distinct, skew,
        seed, method).
    method:
        ``"sampled"`` (default) draws tuples i.i.d. from the Zipf law —
        realistic, with multinomial noise in the realised frequencies.
        ``"expected"`` materialises frequencies equal to the *expected*
        counts (largest-remainder rounding to exactly ``stream_size``)
        in a shuffled arrival order — zero frequency noise, useful for
        low-variance sensitivity studies.
    """
    if stream_size < 1:
        raise ConfigurationError(
            f"stream_size must be >= 1, got {stream_size}"
        )
    if skew < 0:
        raise ConfigurationError(f"skew must be >= 0, got {skew}")
    if method not in ("sampled", "expected"):
        raise ConfigurationError(
            f"method must be 'sampled' or 'expected', got {method!r}"
        )
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(skew, n_distinct)
    if method == "sampled":
        ranks = rng.choice(n_distinct, size=stream_size, p=probabilities)
    else:
        counts = _largest_remainder_counts(probabilities, stream_size)
        ranks = np.repeat(
            np.nonzero(counts)[0], counts[np.nonzero(counts)[0]]
        )
        rng.shuffle(ranks)
    # Relabel ranks through a random permutation of the key domain so
    # key ids are uncorrelated with frequency rank.
    relabel = rng.permutation(n_distinct)
    keys = relabel[ranks].astype(np.int64)
    return Stream(
        keys=keys,
        name=name,
        skew=float(skew),
        n_distinct_domain=int(n_distinct),
        seed=seed,
    )


def _largest_remainder_counts(
    probabilities: np.ndarray, total: int
) -> np.ndarray:
    """Integer counts summing to ``total``, proportional to probabilities."""
    raw = probabilities * total
    counts = np.floor(raw).astype(np.int64)
    shortfall = total - int(counts.sum())
    if shortfall > 0:
        remainders = raw - counts
        top_up = np.argsort(remainders)[::-1][:shortfall]
        counts[top_up] += 1
    return counts
