"""The Stream container shared by generators, experiments and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.counters.exact import ExactCounter
from repro.errors import ConfigurationError


@dataclass
class Stream:
    """An in-memory stream of unit-count integer tuples.

    Attributes
    ----------
    keys:
        The stream's key sequence in arrival order (int64).  Every tuple
        has unit count (``u = 1``), as in all of the paper's experiments;
        weighted tuples are exercised directly through the synopsis APIs.
    name:
        Dataset label (``"zipf"``, ``"ip-trace"``, ...).
    skew:
        Nominal Zipf skew of the generator (None when not applicable).
    n_distinct_domain:
        Size of the key domain the generator drew from (actual distinct
        count may be smaller; see :meth:`distinct_seen`).
    seed:
        Generator seed, for provenance.
    """

    keys: np.ndarray
    name: str = "stream"
    skew: float | None = None
    n_distinct_domain: int | None = None
    seed: int | None = None
    _exact: ExactCounter | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.keys = np.ascontiguousarray(self.keys, dtype=np.int64)
        if self.keys.ndim != 1:
            raise ConfigurationError("stream keys must be a 1-D array")

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def __iter__(self) -> Iterator[int]:
        return iter(self.keys.tolist())

    @property
    def exact(self) -> ExactCounter:
        """Ground-truth counter over the whole stream (computed lazily)."""
        if self._exact is None:
            counter = ExactCounter()
            counter.update_batch(self.keys)
            self._exact = counter
        return self._exact

    @property
    def total_count(self) -> int:
        """Aggregate count ``N`` (equals ``len`` for unit tuples)."""
        return len(self)

    def distinct_seen(self) -> int:
        """Number of distinct keys actually present."""
        return self.exact.distinct

    def max_frequency(self) -> int:
        """True frequency of the most frequent key."""
        top = self.exact.top_k(1)
        return top[0][1] if top else 0

    def true_top_k(self, k: int) -> list[tuple[int, int]]:
        """True top-k (key, count), descending."""
        return self.exact.top_k(k)

    def prefix(self, n: int) -> "Stream":
        """A stream over the first ``n`` tuples (fresh ground truth)."""
        return Stream(
            keys=self.keys[:n].copy(),
            name=f"{self.name}[:{n}]",
            skew=self.skew,
            n_distinct_domain=self.n_distinct_domain,
            seed=self.seed,
        )

    def chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield contiguous key chunks (streaming-style ingestion)."""
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        for start in range(0, len(self), chunk_size):
            yield self.keys[start : start + chunk_size]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream(name={self.name!r}, n={len(self)}, "
            f"skew={self.skew}, domain={self.n_distinct_domain})"
        )
