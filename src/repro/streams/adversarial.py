"""Adversarial stream orderings from the paper's Appendix C.2.

Two constructions bound the ASketch exchange count from above:

* Lemma 2 (no sketch collisions): the order ``A B B A A B B A A B B ...``
  over two items with a size-1 filter forces an exchange roughly every
  second tuple — ``floor((N-1)/2)`` exchanges, the collision-free maximum.
* Lemma 3 (full collisions): the order ``A B B A B A B A B A ...`` with
  both items hashing to the same cells in every row forces an exchange on
  almost every tuple — up to ``N - 2``, approaching the absolute bound of
  ``N`` from Lemma 1.

These generators produce exactly those orders; the exchange-bound tests
drive ASketch over them and check the measured counts against the lemmas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import Stream


def lemma2_alternating_stream(
    stream_size: int, key_a: int = 0, key_b: int = 1
) -> Stream:
    """The Lemma 2 order: ``A B B A A B B A A B B ...``.

    After the initial ``A``, items arrive in pairs ``B B A A B B ...`` so
    that each item accumulates two hits in the sketch before overtaking
    the filter resident, triggering an exchange every other pair.
    """
    if stream_size < 1:
        raise ConfigurationError(
            f"stream_size must be >= 1, got {stream_size}"
        )
    if key_a == key_b:
        raise ConfigurationError("key_a and key_b must differ")
    keys = np.empty(stream_size, dtype=np.int64)
    keys[0] = key_a
    # Pairs alternate: BB, AA, BB, AA, ...
    for position in range(1, stream_size):
        pair_index = (position - 1) // 2
        keys[position] = key_b if pair_index % 2 == 0 else key_a
    return Stream(keys=keys, name="lemma2-alternating", skew=None)


def lemma3_colliding_stream(
    stream_size: int, key_a: int = 0, key_b: int = 1
) -> Stream:
    """The Lemma 3 order: ``A B B A B A B A B A ...``.

    Combined with a sketch in which both keys collide in every row (the
    tests arrange this with a width-1 sketch), each arrival overtakes the
    filter resident and triggers an exchange.
    """
    if stream_size < 1:
        raise ConfigurationError(
            f"stream_size must be >= 1, got {stream_size}"
        )
    if key_a == key_b:
        raise ConfigurationError("key_a and key_b must differ")
    keys = np.empty(stream_size, dtype=np.int64)
    keys[0] = key_a
    if stream_size > 1:
        keys[1] = key_b
    for position in range(2, stream_size):
        keys[position] = key_b if position % 2 == 0 else key_a
    return Stream(keys=keys, name="lemma3-colliding", skew=None)
