"""repro — a reproduction of "Augmented Sketch: Faster and More Accurate
Stream Processing" (Roy, Khan & Alonso, SIGMOD 2016).

The package implements the paper's contribution — :class:`ASketch`, a
filter-augmented sketch for frequency estimation over data streams — and
every substrate its evaluation depends on: Count-Min, Count Sketch,
Frequency-Aware Counting, Holistic UDAFs, Space Saving, Misra-Gries, four
filter implementations, a lane-accurate SSE2 emulation, a calibrated
hardware cost model with pipeline/SPMD parallelism models, stream and
query workload generators, and the paper's accuracy metrics.

Quickstart::

    from repro import ASketch, zipf_stream

    stream = zipf_stream(stream_size=100_000, n_distinct=25_000, skew=1.5)
    sketch = ASketch(total_bytes=128 * 1024, filter_items=32)
    sketch.process_stream(stream.keys)

    key, true_count = stream.true_top_k(1)[0]
    print(sketch.query(key), "vs true", true_count)
    print(sketch.top_k(10))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core.asketch import ASketch
from repro.core.kernel_group import KernelGroup
from repro.core.staged import ClassicExchange, ExchangePolicy, StagedSynopsis
from repro.core.window import SlidingWindowASketch
from repro.core.filters import (
    RelaxedHeapFilter,
    StreamSummaryFilter,
    StrictHeapFilter,
    VectorFilter,
    make_filter,
)
from repro.counters import (
    ExactCounter,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    StreamSummary,
)
from repro.hardware import (
    CostModel,
    EventDrivenPipeline,
    OpCounters,
    PipelineSimulator,
    SpmdModel,
)
from repro.kernels import (
    active_backend,
    available_backends,
    set_backend,
    use_backend,
)
from repro.runtime import (
    AdaptiveController,
    CheckpointStore,
    ChunkRing,
    FaultPlan,
    ParallelIngestRuntime,
    ResilientEngine,
    RetryingSource,
    RetryPolicy,
    ShardedASketch,
    ShardSupervisor,
    StreamEngine,
    ThresholdAlert,
    TopKBoard,
    parallel_ingest,
)
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    current_registry,
    install_registry,
    install_tracer,
    render_prometheus,
    snapshot_metrics,
    trace_span,
    uninstall_registry,
    uninstall_tracer,
    validate_metrics_json,
    write_metrics_json,
)
from repro.persistence import (
    load_asketch,
    load_count_min,
    load_hierarchical,
    load_synopsis,
    save_asketch,
    save_count_min,
    save_hierarchical,
    save_synopsis,
)
from repro.synopses import (
    Synopsis,
    SynopsisSpec,
    SynopsisState,
    build_synopsis,
    register_synopsis,
    registered_kinds,
)
from repro.sketches import (
    CountMinSketch,
    CountSketch,
    FrequencyAwareCountMin,
    HierarchicalCountMin,
    HolisticUDAF,
    SalsaCountMin,
    SFSketch,
)
from repro.streams import (
    Stream,
    ip_trace_stream,
    kosarak_stream,
    uniform_stream,
    zipf_stream,
)

__version__ = "1.0.0"

__all__ = [
    "ASketch",
    "AdaptiveController",
    "CheckpointStore",
    "ChunkRing",
    "ClassicExchange",
    "CostModel",
    "CountMinSketch",
    "CountSketch",
    "EventDrivenPipeline",
    "ExactCounter",
    "ExchangePolicy",
    "FaultPlan",
    "FrequencyAwareCountMin",
    "HierarchicalCountMin",
    "HolisticUDAF",
    "KernelGroup",
    "LossyCounting",
    "MetricsRegistry",
    "MetricsServer",
    "MisraGries",
    "OpCounters",
    "ParallelIngestRuntime",
    "PipelineSimulator",
    "RelaxedHeapFilter",
    "ResilientEngine",
    "RetryPolicy",
    "RetryingSource",
    "SFSketch",
    "SalsaCountMin",
    "ShardSupervisor",
    "ShardedASketch",
    "SlidingWindowASketch",
    "SpaceSaving",
    "SpmdModel",
    "StagedSynopsis",
    "Stream",
    "StreamEngine",
    "StreamSummary",
    "StreamSummaryFilter",
    "StrictHeapFilter",
    "Synopsis",
    "SynopsisSpec",
    "SynopsisState",
    "ThresholdAlert",
    "TopKBoard",
    "VectorFilter",
    "__version__",
    "active_backend",
    "available_backends",
    "build_synopsis",
    "current_registry",
    "install_registry",
    "install_tracer",
    "ip_trace_stream",
    "kosarak_stream",
    "load_asketch",
    "load_count_min",
    "load_hierarchical",
    "load_synopsis",
    "make_filter",
    "parallel_ingest",
    "register_synopsis",
    "registered_kinds",
    "render_prometheus",
    "save_asketch",
    "save_count_min",
    "save_hierarchical",
    "save_synopsis",
    "set_backend",
    "snapshot_metrics",
    "trace_span",
    "uniform_stream",
    "uninstall_registry",
    "uninstall_tracer",
    "use_backend",
    "validate_metrics_json",
    "write_metrics_json",
    "zipf_stream",
]
