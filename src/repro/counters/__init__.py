"""Counter-based stream summaries.

Counter algorithms track approximate counts for *only* the frequent items,
in contrast to sketches which count everything.  The paper uses:

* :class:`~repro.counters.space_saving.SpaceSaving` [27] — the top-k
  baseline of Figure 11, built on the Stream-Summary structure;
* :class:`~repro.counters.misra_gries.MisraGries` [28] — the classifier
  inside Frequency-Aware Counting;
* :class:`~repro.counters.stream_summary.StreamSummary` — the bucket-list
  structure shared by Space Saving and the Stream-Summary filter;
* :class:`~repro.counters.exact.ExactCounter` — the ground truth used by
  every error metric;
* :class:`~repro.counters.lossy_counting.LossyCounting` — an additional
  counter baseline (extension beyond the paper's comparisons).
"""

from repro.counters.exact import ExactCounter
from repro.counters.lossy_counting import LossyCounting
from repro.counters.misra_gries import MisraGries
from repro.counters.space_saving import SpaceSaving
from repro.counters.stream_summary import StreamSummary

__all__ = [
    "ExactCounter",
    "LossyCounting",
    "MisraGries",
    "SpaceSaving",
    "StreamSummary",
]
