"""Space Saving (Metwally, Agrawal & El Abbadi, reference [27]).

Monitors ``k`` items on a :class:`~repro.counters.stream_summary.
StreamSummary`.  A miss on a full summary evicts a minimum-count item and
adopts its count: the newcomer enters with ``min_count + amount`` and a
recorded overestimation error of ``min_count``.  Guarantees: every
monitored count overestimates by at most ``min_count <= N/k``, and all
items with frequency above ``N/k`` are monitored.

The paper evaluates Space Saving as a frequency-estimation baseline in
Figure 11 with two query conventions for unmonitored items — return the
minimum count ("never underestimate", per [27]) or return 0 (per [9]);
both are implemented via ``estimate_mode``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.counters.stream_summary import StreamSummary
from repro.hardware.costs import OpCounters

#: Logical bytes per monitored item: key, count, error and the four list
#: pointers of the Stream-Summary node plus its hash-table entry.  This is
#: the "high space overhead ... up to four pointers per item" the paper
#: cites when rejecting Stream-Summary as the ASketch filter; 96 bytes
#: reproduces Table 6's 4-items-in-0.4KB reading.
BYTES_PER_ITEM = 96


class SpaceSaving:
    """The classical Space Saving top-k summary.

    Parameters
    ----------
    capacity:
        Number of monitored counters, or None to derive from total_bytes.
    total_bytes:
        Byte budget; capacity = total_bytes // BYTES_PER_ITEM.
    estimate_mode:
        ``"min"`` — unmonitored queries return the minimum count
        (never underestimates, the convention of [27]);
        ``"zero"`` — unmonitored queries return 0 (the convention of [9]).
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        total_bytes: int | None = None,
        estimate_mode: str = "min",
    ) -> None:
        if (capacity is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of capacity or total_bytes"
            )
        if total_bytes is not None:
            capacity = total_bytes // BYTES_PER_ITEM
        assert capacity is not None
        if capacity < 1:
            raise ConfigurationError(
                f"Space Saving needs capacity >= 1, got {capacity}"
            )
        if estimate_mode not in ("min", "zero"):
            raise ConfigurationError(
                f"estimate_mode must be 'min' or 'zero', got {estimate_mode!r}"
            )
        self.capacity = int(capacity)
        self.estimate_mode = estimate_mode
        self.ops = OpCounters()
        self._summary = StreamSummary(self.capacity, ops=self.ops)

    @property
    def size_bytes(self) -> int:
        """Logical synopsis size: ``capacity * BYTES_PER_ITEM``."""
        return self.capacity * BYTES_PER_ITEM

    def update(self, key: int, amount: int = 1) -> int:
        """Process one occurrence; returns the item's monitored count."""
        self.ops.items += 1
        summary = self._summary
        if key in summary:
            return summary.increment(key, amount)
        if not summary.is_full:
            summary.insert(key, amount, payload=0)
            return amount
        evicted_key, min_count, _ = summary.evict_min()
        del evicted_key
        summary.insert(key, min_count + amount, payload=min_count)
        return min_count + amount

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Sequentially process a key array (order matters for evictions)."""
        for key in keys.tolist():
            self.update(int(key), amount)

    def process_stream(self, keys: np.ndarray) -> None:
        """Ingest a unit-count key array (driver entry point)."""
        self.update_batch(keys)

    def estimate(self, key: int) -> int:
        """Frequency estimate under the configured unmonitored convention."""
        count = self._summary.count_of(key)
        if count is not None:
            return count
        if self.estimate_mode == "min":
            return self._summary.min_count
        return 0

    def estimate_batch(self, keys) -> list[int]:
        """Point-query every key under the configured convention."""
        return [self.estimate(int(key)) for key in keys]

    def guaranteed_count(self, key: int) -> int | None:
        """Lower bound ``count - error`` for a monitored key, else None."""
        count = self._summary.count_of(key)
        if count is None:
            return None
        error = self._summary.payload_of(key)
        assert isinstance(error, int)
        return count - error

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The k highest (key, monitored count) pairs, descending."""
        return self._summary.top_k(k)

    def __len__(self) -> int:
        return len(self._summary)

    def __contains__(self, key: int) -> bool:
        return key in self._summary
