"""Space Saving (Metwally, Agrawal & El Abbadi, reference [27]).

Monitors ``k`` items on a :class:`~repro.counters.stream_summary.
StreamSummary`.  A miss on a full summary evicts a minimum-count item and
adopts its count: the newcomer enters with ``min_count + amount`` and a
recorded overestimation error of ``min_count``.  Guarantees: every
monitored count overestimates by at most ``min_count <= N/k``, and all
items with frequency above ``N/k`` are monitored.

The paper evaluates Space Saving as a frequency-estimation baseline in
Figure 11 with two query conventions for unmonitored items — return the
minimum count ("never underestimate", per [27]) or return 0 (per [9]);
both are implemented via ``estimate_mode``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.counters.stream_summary import StreamSummary
from repro.hardware.costs import OpCounters
from repro.synopses.protocol import SynopsisState

#: Logical bytes per monitored item: key, count, error and the four list
#: pointers of the Stream-Summary node plus its hash-table entry.  This is
#: the "high space overhead ... up to four pointers per item" the paper
#: cites when rejecting Stream-Summary as the ASketch filter; 96 bytes
#: reproduces Table 6's 4-items-in-0.4KB reading.
BYTES_PER_ITEM = 96


class SpaceSaving:
    """The classical Space Saving top-k summary.

    Parameters
    ----------
    capacity:
        Number of monitored counters, or None to derive from total_bytes.
    total_bytes:
        Byte budget; capacity = total_bytes // BYTES_PER_ITEM.
    estimate_mode:
        ``"min"`` — unmonitored queries return the minimum count
        (never underestimates, the convention of [27]);
        ``"zero"`` — unmonitored queries return 0 (the convention of [9]).
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        total_bytes: int | None = None,
        estimate_mode: str = "min",
    ) -> None:
        if (capacity is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of capacity or total_bytes"
            )
        if total_bytes is not None:
            capacity = total_bytes // BYTES_PER_ITEM
        assert capacity is not None
        if capacity < 1:
            raise ConfigurationError(
                f"Space Saving needs capacity >= 1, got {capacity}"
            )
        if estimate_mode not in ("min", "zero"):
            raise ConfigurationError(
                f"estimate_mode must be 'min' or 'zero', got {estimate_mode!r}"
            )
        self.capacity = int(capacity)
        self.estimate_mode = estimate_mode
        self.ops = OpCounters()
        self._summary = StreamSummary(self.capacity, ops=self.ops)

    @property
    def size_bytes(self) -> int:
        """Logical synopsis size: ``capacity * BYTES_PER_ITEM``."""
        return self.capacity * BYTES_PER_ITEM

    def update(self, key: int, amount: int = 1) -> int:
        """Process one occurrence; returns the item's monitored count."""
        self.ops.items += 1
        summary = self._summary
        if key in summary:
            return summary.increment(key, amount)
        if not summary.is_full:
            summary.insert(key, amount, payload=0)
            return amount
        evicted_key, min_count, _ = summary.evict_min()
        del evicted_key
        summary.insert(key, min_count + amount, payload=min_count)
        return min_count + amount

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Sequentially process a key array (order matters for evictions)."""
        for key in keys.tolist():
            self.update(int(key), amount)

    def process_stream(self, keys: np.ndarray) -> None:
        """Ingest a unit-count key array (driver entry point)."""
        self.update_batch(keys)

    def estimate(self, key: int) -> int:
        """Frequency estimate under the configured unmonitored convention."""
        count = self._summary.count_of(key)
        if count is not None:
            return count
        if self.estimate_mode == "min":
            return self._summary.min_count
        return 0

    def estimate_batch(self, keys) -> list[int]:
        """Point-query every key under the configured convention."""
        return [self.estimate(int(key)) for key in keys]

    def guaranteed_count(self, key: int) -> int | None:
        """Lower bound ``count - error`` for a monitored key, else None."""
        count = self._summary.count_of(key)
        if count is None:
            return None
        error = self._summary.payload_of(key)
        assert isinstance(error, int)
        return count - error

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The k highest (key, monitored count) pairs, descending."""
        return self._summary.top_k(k)

    def __len__(self) -> int:
        return len(self._summary)

    def __contains__(self, key: int) -> bool:
        return key in self._summary

    # -- merging -----------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another summary in, keeping both one-sided guarantees.

        The standard mergeable-summaries construction: each side's
        estimate for a key it does *not* monitor is its unmonitored
        bound ``m`` (the minimum count when full, 0 otherwise — no key
        evicted from a full summary can exceed the minimum).  Every key
        in the union of monitored sets gets the sum of the two sides'
        estimates as its count (and of their error bounds as its
        error); the ``capacity`` largest survive.

        Merely replaying ``other``'s monitored items would lose the
        mass ``other`` itself evicted: a key monitored here but evicted
        there would sit below the merged minimum, breaking the
        never-underestimate convention.  Charging each side's bound to
        the keys it is missing keeps every monitored count an
        overestimate of the key's frequency in the concatenated stream,
        keeps the merged minimum above any fully-unmonitored key's
        total, and keeps ``guaranteed_count`` (count - error) a valid
        lower bound — the properties the merge property suite pins.
        """
        if not isinstance(other, SpaceSaving):
            raise ConfigurationError(
                f"cannot merge SpaceSaving with {type(other).__name__}"
            )
        mine = {key: (count, error)
                for key, count, error in self._summary.items()}
        theirs = {key: (count, error)
                  for key, count, error in other._summary.items()}
        bound_mine = self._summary.min_count if self._summary.is_full else 0
        bound_theirs = (
            other._summary.min_count if other._summary.is_full else 0
        )
        combined = []
        for key in mine.keys() | theirs.keys():
            count_a, error_a = mine.get(key, (bound_mine, bound_mine))
            count_b, error_b = theirs.get(key, (bound_theirs, bound_theirs))
            combined.append((key, count_a + count_b, error_a + error_b))
        combined.sort(key=lambda entry: (-entry[1], entry[0]))
        self._summary = StreamSummary(self.capacity, ops=self.ops)
        for key, count, error in reversed(combined[: self.capacity]):
            self._summary.insert(int(key), int(count), payload=int(error))

    # -- synopsis protocol ---------------------------------------------------

    SYNOPSIS_KIND = "space-saving"

    def state(self) -> SynopsisState:
        """Monitored (key, count, error) triples in summary order."""
        items = list(self._summary.items())
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "capacity": self.capacity,
                "estimate_mode": self.estimate_mode,
            },
            arrays={
                "keys": np.array([k for k, _, _ in items], dtype=np.int64),
                "counts": np.array([c for _, c, _ in items], dtype=np.int64),
                "errors": np.array([e for _, _, e in items], dtype=np.int64),
            },
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "SpaceSaving":
        summary = cls(**state.params)
        # items() walks buckets head-to-tail and inserts attach at a
        # bucket's head, so reversed replay restores the exact node order
        # (and with it future eviction tie-breaks).
        for key, count, error in zip(
            reversed(state.arrays["keys"].tolist()),
            reversed(state.arrays["counts"].tolist()),
            reversed(state.arrays["errors"].tolist()),
        ):
            summary._summary.insert(
                int(key), int(count), payload=int(error)
            )
        return summary
