"""Exact frequency counting — the ground truth for every error metric.

A thin wrapper over a dictionary with a vectorised bulk path (NumPy
``unique``), plus the derived quantities the experiments need: true top-k,
total count ``N``, and frequency-ranked item lists.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import NegativeCountError


class ExactCounter:
    """Exact per-key counts with bulk ingestion."""

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self._total = 0

    def update(self, key: int, amount: int = 1) -> int:
        """Add ``amount`` (may be negative) to a key; returns new count."""
        new_count = self._counts[key] + amount
        if new_count < 0:
            raise NegativeCountError(
                f"deleting {-amount} from key {key} with count "
                f"{self._counts[key]}"
            )
        if new_count == 0:
            del self._counts[key]
        else:
            self._counts[key] = new_count
        self._total += amount
        return new_count

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Bulk-count a key array via ``np.unique`` (orders of magnitude
        faster than per-item dictionary updates for long streams)."""
        uniques, counts = np.unique(np.asarray(keys), return_counts=True)
        for key, count in zip(uniques.tolist(), counts.tolist()):
            self.update(int(key), int(count) * amount)

    def estimate(self, key: int) -> int:
        """True count of a key (0 if never seen) — exact, despite the name;
        shares the sketch interface so metrics code is uniform."""
        return self._counts.get(key, 0)

    def count_of(self, key: int) -> int:
        """True count of a key (0 if never seen)."""
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        """Aggregate count ``N`` across all keys."""
        return self._total

    @property
    def distinct(self) -> int:
        """Number of distinct keys with non-zero count."""
        return len(self._counts)

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The true k most frequent (key, count) pairs, descending."""
        return self._counts.most_common(k)

    def keys_by_frequency(self) -> list[int]:
        """All keys, most frequent first (ties broken by key)."""
        return [key for key, _ in sorted(
            self._counts.items(), key=lambda pair: (-pair[1], pair[0])
        )]

    def items(self) -> list[tuple[int, int]]:
        """All (key, count) pairs in arbitrary order."""
        return list(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: int) -> bool:
        return key in self._counts
