"""Lossy Counting (Manku & Motwani) — an extension counter baseline.

Not one of the paper's comparison points, but a standard counter-based
summary included so the benchmark suite can situate ASketch against the
wider frequent-items landscape surveyed in the paper's related work
(Manerikar & Palpanas [26] benchmark it alongside Space Saving).

The stream is conceptually divided into windows of ``ceil(1/epsilon)``
items.  Each tracked item carries (count, Delta) where Delta bounds the
count mass it may have missed before being tracked; at every window
boundary, items with ``count + Delta <= current_window`` are pruned.
Guarantees: counts underestimate by at most ``epsilon * N`` and every item
with frequency above ``epsilon * N`` survives.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


class LossyCounting:
    """Classic epsilon-deficient lossy counting."""

    def __init__(self, epsilon: float = 0.001) -> None:
        if not 0 < epsilon < 1:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        self.epsilon = float(epsilon)
        self.window_size = int(math.ceil(1.0 / epsilon))
        self._entries: dict[int, tuple[int, int]] = {}  # key -> (count, delta)
        self._items_seen = 0
        self._current_window = 1

    def update(self, key: int, amount: int = 1) -> None:
        """Process one occurrence of ``key``."""
        count, delta = self._entries.get(key, (0, self._current_window - 1))
        self._entries[key] = (count + amount, delta)
        self._items_seen += 1
        if self._items_seen % self.window_size == 0:
            self._prune()
            self._current_window += 1

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Sequentially process a key array (pruning is order-dependent)."""
        for key in keys.tolist():
            self.update(int(key), amount)

    def _prune(self) -> None:
        window = self._current_window
        self._entries = {
            key: (count, delta)
            for key, (count, delta) in self._entries.items()
            if count + delta > window
        }

    def estimate(self, key: int) -> int:
        """Tracked (under)count of a key; 0 when pruned or never seen."""
        count, _ = self._entries.get(key, (0, 0))
        return count

    def frequent_items(self, support: float) -> list[tuple[int, int]]:
        """Items with estimated frequency >= (support - epsilon) * N."""
        threshold = (support - self.epsilon) * self._items_seen
        found = [
            (key, count)
            for key, (count, _) in self._entries.items()
            if count >= threshold
        ]
        found.sort(key=lambda pair: pair[1], reverse=True)
        return found

    def __len__(self) -> int:
        return len(self._entries)
