"""Misra-Gries frequent-items counter (reference [28] of the paper).

Maintains at most ``k`` (key, count) pairs.  A hit increments; a miss with
a free slot inserts; a miss with a full table decrements *every* counter,
discarding zeros — the classical "repeated elements" algorithm.  Any item
with true frequency above ``N / (k + 1)`` is guaranteed to be monitored,
and each monitored count underestimates the true count by at most the
total decrement amount.

In this library Misra-Gries serves as the high/low-frequency classifier
inside Frequency-Aware Counting (FCM), exactly as in the paper's baseline
description (§7.1).  The classifier lookup uses the same array layout as
the ASketch filter so the cost model charges it the same SIMD probe costs
("For lookup in the MG counter, we use the same hardware-conscious
SIMD-enabled lookup code that we use for the filter lookup").
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.hardware.costs import OpCounters
from repro.simd.engine import simd_probe_blocks
from repro.synopses.protocol import SynopsisState


class MisraGries:
    """Array-backed Misra-Gries summary with SIMD-costed lookup.

    Parameters
    ----------
    capacity:
        ``k``, the maximum number of monitored items.
    ops:
        Optional shared operation record.
    """

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        if capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ops = ops if ops is not None else OpCounters()
        # Slot id 0 is the empty marker; stored ids are key + 1.  The dict
        # index mirrors the id array for O(1) Python-side lookup; the cost
        # model still charges the SIMD scan the C implementation performs.
        self._ids = np.zeros(self.capacity, dtype=np.int64)
        self._counts = [0] * self.capacity
        self._index: dict[int, int] = {}
        self._free = list(range(capacity - 1, -1, -1))
        #: Total per-counter decrement applied so far (error bound).
        self.total_decrements = 0

    def __len__(self) -> int:
        return len(self._index)

    def _find(self, key: int) -> int:
        self.ops.filter_probes += 1
        self.ops.filter_probe_blocks += simd_probe_blocks(self.capacity)
        return self._index.get(key, -1)

    def update(self, key: int, amount: int = 1) -> None:
        """Process one stream occurrence of ``key``."""
        self.ops.mg_ops += 1
        index = self._find(key)
        if index >= 0:
            self._counts[index] += amount
            return
        if self._free:
            slot = self._free.pop()
            self._ids[slot] = key + 1
            self._counts[slot] = amount
            self._index[key] = slot
            return
        self._decrement_all(amount)

    def _decrement_all(self, amount: int) -> None:
        """Decrement every counter by ``amount``, freeing exhausted slots."""
        self.total_decrements += amount
        for slot in range(self.capacity):
            if self._ids[slot] == 0:
                continue
            self._counts[slot] -= amount
            if self._counts[slot] <= 0:
                del self._index[int(self._ids[slot]) - 1]
                self._ids[slot] = 0
                self._counts[slot] = 0
                self._free.append(slot)
        self.ops.mg_ops += self.capacity

    def count_of(self, key: int) -> int | None:
        """Monitored (under)count of ``key``, or None if not monitored."""
        index = self._find(key)
        if index < 0:
            return None
        return self._counts[index]

    def is_frequent(self, key: int) -> bool:
        """Whether the key is currently monitored (FCM's classifier test)."""
        return self._find(key) >= 0

    def items(self) -> list[tuple[int, int]]:
        """All monitored (key, count) pairs, descending count."""
        pairs = [
            (int(self._ids[slot]) - 1, self._counts[slot])
            for slot in range(self.capacity)
            if self._ids[slot] != 0
        ]
        pairs.sort(key=lambda pair: pair[1], reverse=True)
        return pairs

    # -- sizing ------------------------------------------------------------

    #: Logical bytes per slot: id + count in the 12-byte array layout the
    #: cost model prices (same as the ASketch array filters).
    BYTES_PER_ITEM = 12

    @property
    def size_bytes(self) -> int:
        """Logical summary size: ``capacity * BYTES_PER_ITEM``."""
        return self.capacity * self.BYTES_PER_ITEM

    # -- queries -----------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Monitored undercount of ``key`` (0 when not monitored).

        Always a lower bound: ``estimate(k) <= true count``, with error
        at most :attr:`total_decrements`.
        """
        count = self.count_of(key)
        return 0 if count is None else count

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MisraGries") -> None:
        """Fold another summary in by weighted replay.

        Each of ``other``'s monitored (key, count) pairs is replayed as
        one weighted update; capacity pressure triggers the usual
        all-counter decrements.  The combined error bound is the sum of
        both summaries' decrement totals (replay-induced decrements are
        accumulated by :meth:`update` itself), so monitored counts stay
        valid undercounts of the concatenated stream.
        """
        if not isinstance(other, MisraGries):
            raise CapacityError(
                f"cannot merge MisraGries with {type(other).__name__}"
            )
        for key, count in other.items():
            self.update(key, count)
        self.total_decrements += other.total_decrements

    # -- synopsis protocol ---------------------------------------------------

    SYNOPSIS_KIND = "misra-gries"

    def state(self) -> SynopsisState:
        """Exact slot-level state, including the free-slot stack order.

        The free list's LIFO order decides which slot a future insert
        lands in; persisting it verbatim makes the restored summary's
        slot assignments — and thus its SIMD probe traces — identical.
        """
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={"capacity": self.capacity},
            arrays={
                "ids": self._ids.copy(),
                "counts": np.array(self._counts, dtype=np.int64),
                "free": np.array(self._free, dtype=np.int64),
            },
            extra={"total_decrements": self.total_decrements},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "MisraGries":
        summary = cls(**state.params)
        summary._ids[:] = state.arrays["ids"]
        summary._counts = [int(c) for c in state.arrays["counts"].tolist()]
        summary._free = [int(s) for s in state.arrays["free"].tolist()]
        summary._index = {
            int(summary._ids[slot]) - 1: slot
            for slot in range(summary.capacity)
            if summary._ids[slot] != 0
        }
        summary.total_decrements = int(state.extra["total_decrements"])
        return summary
