"""Stream-Summary: the bucket-list structure of Metwally et al. [27].

A Stream-Summary monitors a bounded set of items.  Items live in *buckets*
— one bucket per distinct count value — and buckets form a doubly-linked
list sorted by count, so the minimum-count item is reachable in O(1) and an
increment moves an item to the neighbouring bucket in O(1).  A hash map
gives O(1) item lookup.

This module provides the structure itself; :class:`repro.counters.
space_saving.SpaceSaving` builds the classical algorithm on top, and
:class:`repro.core.filters.stream_summary.StreamSummaryFilter` reuses it as
one of the four ASketch filter implementations (§6.1), where its pointer
overhead (~4 pointers/item) is exactly the space disadvantage Table 6
reports.

Every pointer-chasing step and hash-map access is charged to the owning
structure's :class:`~repro.hardware.costs.OpCounters` so that the cost
model reproduces the paper's observation that Stream-Summary lookups are
expensive relative to a SIMD linear scan.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CapacityError
from repro.hardware.costs import OpCounters


class _Node:
    """One monitored item: key, auxiliary payload, and list linkage."""

    __slots__ = ("key", "payload", "bucket", "prev", "next")

    def __init__(self, key: int, payload: object = None) -> None:
        self.key = key
        self.payload = payload
        self.bucket: Optional["_Bucket"] = None
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class _Bucket:
    """All items sharing one count value, as a doubly-linked node list."""

    __slots__ = ("count", "head", "prev", "next")

    def __init__(self, count: int) -> None:
        self.count = count
        self.head: Optional[_Node] = None
        self.prev: Optional["_Bucket"] = None
        self.next: Optional["_Bucket"] = None

    def attach(self, node: _Node) -> None:
        node.bucket = self
        node.prev = None
        node.next = self.head
        if self.head is not None:
            self.head.prev = node
        self.head = node

    def detach(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        node.prev = None
        node.next = None
        node.bucket = None

    @property
    def empty(self) -> bool:
        return self.head is None


class StreamSummary:
    """Bounded set of (key, count) pairs with O(1) min and increment.

    Parameters
    ----------
    capacity:
        Maximum number of monitored items.
    ops:
        Optional shared operation record; a fresh one is created otherwise.
    """

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        if capacity < 1:
            raise CapacityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ops = ops if ops is not None else OpCounters()
        self._nodes: dict[int, _Node] = {}
        self._min_bucket: Optional[_Bucket] = None

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: int) -> bool:
        self.ops.hashtable_ops += 1
        return key in self._nodes

    @property
    def is_full(self) -> bool:
        """Whether the summary monitors its full capacity of items."""
        return len(self._nodes) >= self.capacity

    def count_of(self, key: int) -> int | None:
        """Count of a monitored key, or None if not monitored."""
        self.ops.hashtable_ops += 1
        node = self._nodes.get(key)
        if node is None:
            return None
        self.ops.pointer_derefs += 1
        assert node.bucket is not None
        return node.bucket.count

    def payload_of(self, key: int) -> object | None:
        """Auxiliary payload of a monitored key (None if not monitored)."""
        node = self._nodes.get(key)
        return None if node is None else node.payload

    def set_payload(self, key: int, payload: object) -> None:
        """Replace the payload of a monitored key."""
        self._nodes[key].payload = payload

    def min_item(self) -> tuple[int, int, object]:
        """(key, count, payload) of one minimum-count item.

        Raises :class:`CapacityError` when the summary is empty.
        """
        if self._min_bucket is None:
            raise CapacityError("min_item on an empty StreamSummary")
        self.ops.pointer_derefs += 2
        node = self._min_bucket.head
        assert node is not None
        return node.key, self._min_bucket.count, node.payload

    @property
    def min_count(self) -> int:
        """Smallest monitored count (0 when empty, matching Space Saving)."""
        if self._min_bucket is None:
            return 0
        return self._min_bucket.count

    def items(self) -> Iterator[tuple[int, int, object]]:
        """All (key, count, payload) triples, ascending count order."""
        bucket = self._min_bucket
        while bucket is not None:
            node = bucket.head
            while node is not None:
                yield node.key, bucket.count, node.payload
                node = node.next
            bucket = bucket.next

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The k highest (key, count) pairs, descending count."""
        ordered = sorted(
            ((key, count) for key, count, _ in self.items()),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return ordered[:k]

    # -- mutation -------------------------------------------------------

    def insert(self, key: int, count: int, payload: object = None) -> None:
        """Insert a new key with an initial count.

        Raises :class:`CapacityError` if full or the key already exists;
        callers evict first (see :meth:`evict_min`).
        """
        self.ops.hashtable_ops += 1
        if key in self._nodes:
            raise CapacityError(f"key {key} already monitored")
        if self.is_full:
            raise CapacityError("StreamSummary full; evict before inserting")
        node = _Node(key, payload)
        self._nodes[key] = node
        self._attach_at_count(node, count)

    def increment(self, key: int, amount: int = 1) -> int:
        """Increase a monitored key's count; returns the new count."""
        self.ops.hashtable_ops += 1
        node = self._nodes[key]
        assert node.bucket is not None
        return self._move_to_count(node, node.bucket.count + amount)

    def decrement(self, key: int, amount: int = 1) -> int:
        """Decrease a monitored key's count (deletion support)."""
        self.ops.hashtable_ops += 1
        node = self._nodes[key]
        assert node.bucket is not None
        new_count = node.bucket.count - amount
        if new_count < 0:
            raise CapacityError("decrement below zero")
        return self._move_to_count(node, new_count)

    def remove(self, key: int) -> tuple[int, object]:
        """Remove a monitored key; returns (count, payload)."""
        self.ops.hashtable_ops += 1
        node = self._nodes.pop(key)
        bucket = node.bucket
        assert bucket is not None
        count = bucket.count
        bucket.detach(node)
        self.ops.pointer_derefs += 2
        if bucket.empty:
            self._unlink_bucket(bucket)
        return count, node.payload

    def evict_min(self) -> tuple[int, int, object]:
        """Remove and return (key, count, payload) of a minimum-count item."""
        key, count, payload = self.min_item()
        self.remove(key)
        return key, count, payload

    # -- internal bucket-list maintenance --------------------------------

    def _attach_at_count(self, node: _Node, count: int) -> None:
        """Place a detached node into the bucket for ``count``."""
        bucket = self._find_or_create_bucket(count)
        bucket.attach(node)
        self.ops.pointer_derefs += 2

    def _move_to_count(self, node: _Node, new_count: int) -> int:
        old_bucket = node.bucket
        assert old_bucket is not None
        old_bucket.detach(node)
        self.ops.pointer_derefs += 2
        # Increments can resume the bucket walk from the old position;
        # decrements (deletions) must restart from the minimum bucket.
        hint = old_bucket if new_count >= old_bucket.count else None
        bucket = self._find_or_create_bucket(new_count, hint=hint)
        bucket.attach(node)
        self.ops.pointer_derefs += 2
        if old_bucket.empty:
            self._unlink_bucket(old_bucket)
        return new_count

    def _find_or_create_bucket(
        self, count: int, hint: Optional[_Bucket] = None
    ) -> _Bucket:
        """Locate the bucket for a count, creating and linking if needed.

        Scans from ``hint`` (a bucket known to have a count <= ``count``)
        or from the minimum bucket; unit increments move items to the
        neighbouring bucket so the walk is O(1) in Space-Saving usage, and
        every step is charged as a pointer dereference.
        """
        if hint is not None and hint.count <= count:
            previous = hint.prev
            bucket: Optional[_Bucket] = hint
        else:
            previous = None
            bucket = self._min_bucket
        while bucket is not None and bucket.count < count:
            self.ops.pointer_derefs += 1
            previous = bucket
            bucket = bucket.next
        if bucket is not None and bucket.count == count:
            return bucket
        created = _Bucket(count)
        created.prev = previous
        created.next = bucket
        if previous is not None:
            previous.next = created
        else:
            self._min_bucket = created
        if bucket is not None:
            bucket.prev = created
        return created

    def _unlink_bucket(self, bucket: _Bucket) -> None:
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min_bucket = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev
        self.ops.pointer_derefs += 2
