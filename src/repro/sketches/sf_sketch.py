"""SF-sketch: a fat update stage feeding a slim query stage.

Yang et al., "SF-sketch: A Fast, Accurate, and Memory Efficient Data
Structure to Store Frequencies of Data Items" (arXiv:1701.04148) observe
that a sketch kept *locally* (where updates happen) can afford to be
large, while the copy *shipped* to remote queriers must be small.  The
SF ("slim-fat") sketch therefore maintains two Count-Min tables:

* the **fat** stage — a wide table absorbing every update normally; its
  estimates are relatively accurate because collisions are rare;
* the **slim** stage — the small table actually answering queries (and
  the only part counted as the shipped synopsis).  On an update of
  ``(k, u)`` each slim cell of ``k`` is raised only as far as evidence
  requires::

      cell' = min(cell + u, max(cell, n))

  where ``n`` is ``k``'s *post-update fat estimate*.  A slim cell
  therefore never grows beyond the fat stage's (already one-sided)
  estimate of the largest key hashing into it, instead of accumulating
  the full collision mass a plain Count-Min cell would.

One-sidedness (insert-only streams) holds by induction: both branches
of the ``min`` dominate the updated key's true count (``cell + u`` by
the inductive hypothesis, ``max(cell, n) >= n >= f_k`` by Count-Min's
guarantee), and neither branch can shrink a cell, so other keys'
estimates never drop below their counts.  The repo's hypothesis
merge/guarantee property suites exercise exactly this.

Within the staged architecture (:mod:`repro.core.staged`) this is a
second *back-stage* family: ``ASketch(sketch=SFSketch(...))`` composes
the paper's exact filter with a slim/fat backend, and the registered
``"sf-sketch"`` kind makes it reachable from specs, the CLI, the
experiment harness and checkpoint/restore.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NegativeCountError
from repro.sketches.base import FrequencySketch
from repro.sketches.count_min import CountMinSketch
from repro.synopses.protocol import SynopsisState

#: Seed offset separating the fat stage's hash family from the slim's.
_FAT_SEED_OFFSET = 1_000_081


class SFSketch(FrequencySketch):
    """Slim-fat Count-Min pair with conditional slim updates.

    Parameters
    ----------
    num_hashes:
        ``w`` for the slim (query) stage.
    row_width:
        Slim row width ``h``; mutually exclusive with ``total_bytes``.
    total_bytes:
        Byte budget of the *slim* stage — the shipped synopsis, and the
        number :attr:`size_bytes` reports, so equal-space comparisons
        against other sketches compare what a querier actually holds.
        The fat stage is local scratch on top (see
        :attr:`total_memory_bytes`).
    fat_ratio:
        The fat stage's row width as a multiple of the slim's
        (default 8, in the paper's recommended regime).
    fat_hashes:
        ``w`` for the fat stage; defaults to ``num_hashes``.
    seed:
        Hash seeding; the fat stage derives a disjoint family.
    """

    def __init__(
        self,
        num_hashes: int = 8,
        row_width: int | None = None,
        *,
        total_bytes: int | None = None,
        fat_ratio: int = 8,
        fat_hashes: int | None = None,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if fat_ratio < 1:
            raise ConfigurationError(
                f"fat_ratio must be >= 1, got {fat_ratio}"
            )
        self._slim = CountMinSketch(
            num_hashes=num_hashes,
            row_width=row_width,
            total_bytes=total_bytes,
            seed=seed,
            hash_family=hash_family,
        )
        self.fat_ratio = int(fat_ratio)
        self.fat_hashes = int(
            fat_hashes if fat_hashes is not None else num_hashes
        )
        self._fat = CountMinSketch(
            num_hashes=self.fat_hashes,
            row_width=self._slim.row_width * self.fat_ratio,
            seed=seed + _FAT_SEED_OFFSET,
            hash_family=hash_family,
        )
        self.seed = int(seed)
        self.hash_family_name = hash_family
        # One shared operation record: the staged core (and the cost
        # model) read a single ``ops`` per back stage.
        self.ops = self._slim.ops
        self._fat.ops = self.ops

    # -- introspection -----------------------------------------------------

    @property
    def num_hashes(self) -> int:
        """Hash rows in the slim (query) stage."""
        return self._slim.num_hashes

    @property
    def row_width(self) -> int:
        """Slots per row in the slim (query) stage."""
        return self._slim.row_width

    @property
    def slim(self) -> CountMinSketch:
        """The slim (query) stage — the shipped synopsis."""
        return self._slim

    @property
    def fat(self) -> CountMinSketch:
        """The fat (update) stage — local scratch."""
        return self._fat

    @property
    def size_bytes(self) -> int:
        """Size of the shipped (slim) synopsis, per the SF-sketch model."""
        return self._slim.size_bytes

    @property
    def total_memory_bytes(self) -> int:
        """Local footprint: slim plus the fat update stage."""
        return self._slim.size_bytes + self._fat.size_bytes

    # -- updates -----------------------------------------------------------

    def update(self, key: int, amount: int = 1) -> int:
        """Fat update, then the conditional slim raise; returns the new
        slim estimate (the query stage's answer)."""
        if amount < 0:
            raise NegativeCountError(
                "SF-sketch supports insert-only streams; the conditional "
                "slim update cannot honour deletions"
            )
        fat_estimate = self._fat.update(key, amount)
        slim = self._slim
        table = slim._table
        ops = self.ops
        ops.hash_evals += slim.num_hashes
        ops.sketch_cell_reads += slim.num_hashes
        ops.sketch_cell_writes += slim.num_hashes
        estimate: int | None = None
        for row, col in enumerate(slim.hash_columns(key)):
            cell = int(table[row, col])
            raised = min(cell + amount, max(cell, fat_estimate))
            table[row, col] = raised
            if estimate is None or raised < estimate:
                estimate = raised
        assert estimate is not None
        return estimate

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Per-key loop: every slim raise depends on the cells the
        previous update left behind (like conservative Count-Min, the
        conditional update cannot be scatter-added)."""
        keys = np.asarray(keys)
        amounts = np.asarray(amounts, dtype=np.int64)
        for key, amount in zip(keys.tolist(), amounts.tolist()):
            self.update(int(key), int(amount))

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        keys = np.asarray(keys)
        for key in keys.tolist():
            self.update(int(key), amount)

    # -- queries -----------------------------------------------------------

    def estimate(self, key: int) -> int:
        """The slim stage answers queries (that is the point of SF)."""
        return self._slim.estimate(key)

    def estimate_batch(self, keys) -> list[int]:
        return self._slim.estimate_batch(keys)

    def total_count(self) -> int:
        """Aggregate count ``N`` absorbed so far (fat stage row sum)."""
        return self._fat.total_count()

    # -- merging -----------------------------------------------------------

    def is_mergeable_with(self, other: "SFSketch") -> bool:
        """Both stages must share geometry and hash families."""
        if not isinstance(other, SFSketch):
            return False
        return self._slim.is_mergeable_with(
            other._slim
        ) and self._fat.is_mergeable_with(other._fat)

    def merge(self, other: "SFSketch") -> None:
        """Cell-wise add both stages.

        The fat stages are plain linear Count-Min tables, so their sum
        summarises the concatenated stream exactly as Count-Min does.
        Slim cells are summed too: each input cell over-estimates its
        keys on its own stream, so the sum over-estimates them on the
        union — one-sided, at the cost of re-admitting the collision
        slack a fresh conditional pass would have avoided (the price of
        merging shipped copies without replaying updates).
        """
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "sketches must share dimensions and hash seeds to merge"
            )
        self._fat.merge(other._fat)
        self._slim.merge(other._slim)

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "sf-sketch"

    def state(self) -> SynopsisState:
        """Portable snapshot: both stages' tables plus the geometry."""
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "num_hashes": self._slim.num_hashes,
                "row_width": self._slim.row_width,
                "fat_ratio": self.fat_ratio,
                "fat_hashes": self.fat_hashes,
                "seed": self.seed,
                "hash_family": self.hash_family_name,
            },
            arrays={
                "slim_table": self._slim._table.copy(),
                "fat_table": self._fat._table.copy(),
            },
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "SFSketch":
        sketch = cls(**state.params)
        sketch._slim._table[:] = state.arrays["slim_table"]
        sketch._fat._table[:] = state.arrays["fat_table"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SFSketch(w={self._slim.num_hashes}, h={self._slim.row_width}, "
            f"fat=x{self.fat_ratio}, bytes={self.size_bytes})"
        )
