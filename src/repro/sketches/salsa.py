"""SALSA: self-adjusting lean streaming analytics on Count-Min.

Basat et al., "SALSA: Self-Adjusting Lean Streaming Analytics"
(arXiv:2102.12531) start Count-Min rows from *small* counters (one byte
per slot instead of the paper's four-byte cells — four times as many
counters at equal space) and merge a counter with its buddy on overflow:
when a segment's value exceeds what its bytes can represent, the
aligned power-of-two block containing it and its buddy becomes one
logical counter whose value is the *sum* of the merged sub-segments.
Heavy keys end up owning wide, high-capacity counters while the long
tail keeps many narrow ones — the row adapts its layout to the
frequency distribution instead of fixing cell width up front.

Representation: per row, ``values[slot]`` holds the logical value of
the segment containing ``slot`` (mirrored across the segment, so a
query is a plain gather) and ``seg_log[slot]`` the log2 of that
segment's size.  Segments are always power-of-two sized and aligned
(truncated at the row end), so two segments either nest or are
disjoint — the buddy-merge invariant.

One-sidedness: a segment's value is the sum of every increment that
landed in any of its slots, which dominates any single key's count, so
``min`` over rows stays an over-estimate; merging buddies only ever
sums more mass in.  Insert-only streams (a merged counter cannot be
un-merged to honour a deletion).

Within the staged architecture this is a third back-stage family:
``ASketch(sketch=SalsaCountMin(...))`` puts the paper's exact filter in
front of self-adjusting rows, and the registered ``"salsa-cm"`` kind is
reachable from specs, the CLI, the experiment harness and
checkpoint/restore.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NegativeCountError
from repro.hardware.costs import OpCounters
from repro.hashing import make_hash_family
from repro.hashing.families import encode_key_array, key_to_int
from repro.sketches.base import FrequencySketch
from repro.synopses.protocol import SynopsisState

#: Stored logical values are int64; segments spanning a whole row may
#: exceed their byte-model capacity rather than overflow the store.
_VALUE_CAP_BITS = 63


class SalsaCountMin(FrequencySketch):
    """Count-Min with on-demand buddy counter merging.

    Parameters
    ----------
    num_hashes:
        ``w``, the number of rows.
    num_slots:
        Slots per row; mutually exclusive with ``total_bytes``.
    total_bytes:
        Byte budget; slots per row is ``bytes / (w * slot_bytes)`` —
        at ``slot_bytes=1`` that is 4x the counters of a 4-byte-cell
        Count-Min in the same space.
    slot_bytes:
        Bytes per base counter slot (default 1, as in the SALSA paper).
    seed:
        Seed for the hash family parameters.
    """

    def __init__(
        self,
        num_hashes: int = 8,
        num_slots: int | None = None,
        *,
        total_bytes: int | None = None,
        slot_bytes: int = 1,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if (num_slots is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of num_slots or total_bytes"
            )
        if slot_bytes < 1:
            raise ConfigurationError(
                f"slot_bytes must be >= 1, got {slot_bytes}"
            )
        if total_bytes is not None:
            num_slots = total_bytes // (num_hashes * slot_bytes)
        assert num_slots is not None
        if num_hashes <= 0 or num_slots < 2:
            raise ConfigurationError(
                f"invalid SALSA dimensions w={num_hashes}, "
                f"slots={num_slots} (need >= 2 slots per row)"
            )
        self.num_hashes = int(num_hashes)
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self.seed = int(seed)
        self.hash_family_name = hash_family
        self._values = np.zeros(
            (self.num_hashes, self.num_slots), dtype=np.int64
        )
        self._seg_log = np.zeros(
            (self.num_hashes, self.num_slots), dtype=np.uint8
        )
        self._hashes = [
            make_hash_family(
                hash_family, self.num_slots, seed * 1_000_003 + row
            )
            for row in range(self.num_hashes)
        ]
        #: Buddy merges performed so far (the structure's adaptation count).
        self.counter_merges = 0
        self.ops = OpCounters()

    # -- sizing -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_hashes * self.num_slots * self.slot_bytes

    def _capacity(self, seg_log: int) -> int:
        """Largest value a ``2**seg_log``-slot segment can represent."""
        bits = min(8 * self.slot_bytes * (1 << seg_log), _VALUE_CAP_BITS)
        return (1 << bits) - 1

    # -- hashing ----------------------------------------------------------

    def hash_columns(self, key: int) -> list[int]:
        """The ``w`` slot indices for a key (one per row)."""
        encoded = key_to_int(key)
        return [h(encoded) for h in self._hashes]

    # -- segment mechanics -------------------------------------------------

    def _segment(self, row: int, slot: int) -> tuple[int, int, int]:
        """(head, end, seg_log) of the segment containing ``slot``."""
        level = int(self._seg_log[row, slot])
        size = 1 << level
        head = slot & ~(size - 1)
        return head, min(head + size, self.num_slots), level

    def _span_sum(self, row: int, head: int, end: int) -> int:
        """Sum of the distinct segment values inside ``[head, end)``.

        Valid because segments are aligned power-of-two blocks: every
        segment intersecting an aligned superblock nests inside it, and
        the walk always lands on sub-segment heads.
        """
        values = self._values[row]
        seg_log = self._seg_log[row]
        total = 0
        position = head
        while position < end:
            total += int(values[position])
            position += 1 << int(seg_log[position])
        return total

    def _write_segment(
        self, row: int, head: int, end: int, level: int, value: int
    ) -> None:
        """Mirror a segment's value/level across all its slots."""
        self._values[row, head:end] = value
        self._seg_log[row, head:end] = level

    def _grow_until_fits(
        self, row: int, head: int, end: int, level: int, value: int
    ) -> int:
        """Merge buddies until ``value`` fits its segment's capacity.

        The current segment already holds ``value``; each round doubles
        the aligned block, sums every sub-segment inside it (which now
        includes ``value``), and relabels.  Returns the final value.
        """
        while value > self._capacity(level) and (1 << level) < self.num_slots:
            level += 1
            size = 1 << level
            head = head & ~(size - 1)
            end = min(head + size, self.num_slots)
            value = self._span_sum(row, head, end)
            self._write_segment(row, head, end, level, value)
            self.counter_merges += 1
            self.ops.sketch_cell_writes += end - head
        return value

    # -- updates ----------------------------------------------------------

    def update(self, key: int, amount: int = 1) -> int:
        """Add ``amount`` to the key's segment in every row; merge buddies
        on overflow.  Returns the new (minimum-over-rows) estimate."""
        if amount < 0:
            raise NegativeCountError(
                "SALSA supports insert-only streams; merged counters "
                "cannot be un-merged to honour deletions"
            )
        ops = self.ops
        ops.hash_evals += self.num_hashes
        ops.sketch_cell_reads += self.num_hashes
        ops.sketch_cell_writes += self.num_hashes
        estimate: int | None = None
        for row, slot in enumerate(self.hash_columns(key)):
            head, end, level = self._segment(row, slot)
            value = int(self._values[row, head]) + amount
            self._write_segment(row, head, end, level, value)
            if value > self._capacity(level):
                value = self._grow_until_fits(row, head, end, level, value)
            if estimate is None or value < estimate:
                estimate = value
        assert estimate is not None
        return estimate

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Per-key loop: merges are state-dependent, so updates cannot
        be scatter-added like a fixed-layout Count-Min's."""
        keys = np.asarray(keys)
        amounts = np.asarray(amounts, dtype=np.int64)
        for key, amount in zip(keys.tolist(), amounts.tolist()):
            self.update(int(key), int(amount))

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        keys = np.asarray(keys)
        for key in keys.tolist():
            self.update(int(key), amount)

    # -- queries ----------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Minimum over rows of the key's segment value (a gather, since
        values are mirrored across segment slots)."""
        self.ops.hash_evals += self.num_hashes
        self.ops.sketch_cell_reads += self.num_hashes
        values = self._values
        return min(
            int(values[row, slot])
            for row, slot in enumerate(self.hash_columns(key))
        )

    def estimate_batch(self, keys) -> list[int]:
        """Vectorised point queries (per-row hash + gather + min)."""
        keys = np.asarray(list(keys))
        if keys.size == 0:
            return []
        encoded = encode_key_array(keys)
        self.ops.hash_evals += self.num_hashes * len(keys)
        self.ops.sketch_cell_reads += self.num_hashes * len(keys)
        estimates = np.full(len(keys), np.iinfo(np.int64).max, dtype=np.int64)
        for row, family in enumerate(self._hashes):
            columns = family.hash_array(encoded)
            np.minimum(estimates, self._values[row, columns], out=estimates)
        return [int(v) for v in estimates]

    def total_count(self) -> int:
        """Aggregate count ``N`` absorbed so far (row 0 segment sum)."""
        return self._span_sum(0, 0, self.num_slots)

    # -- merging ----------------------------------------------------------

    def is_mergeable_with(self, other: "SalsaCountMin") -> bool:
        """Same geometry, slot width and hash functions."""
        if not isinstance(other, SalsaCountMin):
            return False
        if (self.num_hashes, self.num_slots, self.slot_bytes) != (
            other.num_hashes,
            other.num_slots,
            other.slot_bytes,
        ):
            return False
        probe_keys = (0, 1, 2, 12345, 987654321)
        return all(
            self.hash_columns(key) == other.hash_columns(key)
            for key in probe_keys
        )

    def merge(self, other: "SalsaCountMin") -> None:
        """Absorb another SALSA sketch: buddy-lattice join per row.

        The merged partition of each row is the coarsest valid buddy
        partition refining neither input (pointwise max of the two
        ``seg_log`` labellings, closed under the alignment rule); each
        merged segment's value is the sum of both inputs' sub-segment
        values inside it, with a final overflow cascade.  Summing
        distinct sub-segments counts every increment from both streams
        exactly once, so the result is one-sided over the concatenated
        stream, and the construction is symmetric — merge order cannot
        change the outcome.
        """
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "sketches must share dimensions and hash seeds to merge"
            )
        for row in range(self.num_hashes):
            self._merge_row(row, other)
        self.counter_merges += other.counter_merges
        self.ops.sketch_cell_writes += self.num_hashes * self.num_slots

    def _merge_row(self, row: int, other: "SalsaCountMin") -> None:
        levels = np.maximum(
            self._seg_log[row], other._seg_log[row]
        ).astype(np.int64)
        levels = _coarsen(levels, self.num_slots)
        merged_values = np.zeros(self.num_slots, dtype=np.int64)
        merged_log = np.zeros(self.num_slots, dtype=np.uint8)
        head = 0
        while head < self.num_slots:
            level = int(levels[head])
            end = min(head + (1 << level), self.num_slots)
            value = self._span_sum(row, head, end) + other._span_sum(
                row, head, end
            )
            merged_values[head:end] = value
            merged_log[head:end] = level
            head = end
        self._values[row] = merged_values
        self._seg_log[row] = merged_log
        # Overflow cascade: summed segments may exceed their capacity.
        head = 0
        while head < self.num_slots:
            start_head, end, level = self._segment(row, head)
            value = int(self._values[row, start_head])
            if value > self._capacity(level):
                self._grow_until_fits(row, start_head, end, level, value)
                # The grown segment may cover earlier slots; rescan it.
                head = self._segment(row, start_head)[0]
            head = self._segment(row, head)[1]

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "salsa-cm"

    def state(self) -> SynopsisState:
        """Portable snapshot: values, segment layout and geometry."""
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "num_hashes": self.num_hashes,
                "num_slots": self.num_slots,
                "slot_bytes": self.slot_bytes,
                "seed": self.seed,
                "hash_family": self.hash_family_name,
            },
            arrays={
                "values": self._values.copy(),
                "seg_log": self._seg_log.copy(),
            },
            extra={"counter_merges": self.counter_merges},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "SalsaCountMin":
        sketch = cls(**state.params)
        sketch._values[:] = state.arrays["values"]
        sketch._seg_log[:] = state.arrays["seg_log"]
        sketch.counter_merges = int(state.extra["counter_merges"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SalsaCountMin(w={self.num_hashes}, slots={self.num_slots}, "
            f"slot_bytes={self.slot_bytes}, bytes={self.size_bytes})"
        )


def _coarsen(levels: np.ndarray, n: int) -> np.ndarray:
    """Close a per-slot level labelling under the buddy alignment rule.

    A labelling is a valid partition when, for every slot, the aligned
    ``2**level`` block containing it is labelled uniformly.  Raising any
    slot's level can force its whole block up, so iterate to fixpoint
    (bounded by ``log2(n)`` doublings per slot).
    """
    levels = levels.copy()
    changed = True
    while changed:
        changed = False
        slot = 0
        while slot < n:
            size = 1 << int(levels[slot])
            head = slot & ~(size - 1)
            end = min(head + size, n)
            block_max = int(levels[head:end].max())
            if (levels[head:end] != block_max).any():
                levels[head:end] = block_max
                changed = True
            slot = end
    return levels
