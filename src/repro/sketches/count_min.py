"""Count-Min sketch (Cormode & Muthukrishnan, reference [11] of the paper).

``w`` pairwise-independent hash functions each map a key onto ``[0, h)``;
an update adds the amount to one cell per row, a query returns the minimum
over the key's ``w`` cells.  For a stream of aggregate count ``N`` the
estimate exceeds the true count by at most ``(e/h) * N`` with probability
at least ``1 - e^-w`` — the bound restated in the paper's §3.

Also provides the *conservative update* variant (an optional accuracy
optimisation: only raise cells to ``min + amount``), used by the ablation
benches; the paper's baselines all use the classical update.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NegativeCountError
from repro.hardware.costs import OpCounters
from repro.hashing import make_hash_family
from repro.hashing.families import (
    CarterWegmanHash,
    encode_key_array,
    key_to_int,
)
from repro.kernels import active_backend
from repro.sketches.base import CELL_BYTES, FrequencySketch, row_width_for_bytes
from repro.synopses.protocol import SynopsisState

#: Encoded keys must stay below this for the fused int64 hash kernels
#: (see :func:`repro.hashing.families.cw_fold_columns`).
_KERNEL_KEY_LIMIT = 1 << 31


class CountMinSketch(FrequencySketch):
    """The classical Count-Min sketch.

    Parameters
    ----------
    num_hashes:
        ``w``, the number of hash functions / rows.  The paper fixes
        ``w = 8`` in most experiments.
    row_width:
        ``h``, the range of each hash function.  Mutually exclusive with
        ``total_bytes``.
    total_bytes:
        Byte budget; ``h`` is derived as ``bytes / (w * 4)``.
    seed:
        Seed for the hash family parameters.
    conservative:
        If true, use conservative update (cells only raised to
        ``estimate + amount``).  Slightly slower, strictly more accurate;
        exercised by ``benchmarks/bench_ablation_sizing.py``.
    hash_family:
        Name of the hash family (see :mod:`repro.hashing`).
    """

    def __init__(
        self,
        num_hashes: int = 8,
        row_width: int | None = None,
        *,
        total_bytes: int | None = None,
        seed: int = 0,
        conservative: bool = False,
        hash_family: str = "carter-wegman",
    ) -> None:
        if (row_width is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of row_width or total_bytes"
            )
        if total_bytes is not None:
            row_width = row_width_for_bytes(total_bytes, num_hashes)
        assert row_width is not None
        if num_hashes <= 0 or row_width <= 0:
            raise ConfigurationError(
                f"invalid Count-Min dimensions w={num_hashes}, h={row_width}"
            )
        self.num_hashes = int(num_hashes)
        self.row_width = int(row_width)
        self.conservative = bool(conservative)
        self.seed = int(seed)
        self.hash_family_name = hash_family
        self._table = np.zeros((self.num_hashes, self.row_width), dtype=np.int64)
        self._hashes = [
            make_hash_family(hash_family, self.row_width, seed * 1_000_003 + row)
            for row in range(self.num_hashes)
        ]
        # Pre-split Carter-Wegman parameters for the fused hash kernels:
        # per-row (a_hi, a_lo, b mod p) arrays, or None when another hash
        # family is in use (kernel dispatch then falls back to the
        # per-row hash_array path).
        self._cw_params: tuple[np.ndarray, np.ndarray, np.ndarray] | None
        if all(isinstance(h, CarterWegmanHash) for h in self._hashes):
            params = [h.kernel_params for h in self._hashes]
            self._cw_params = (
                np.array([p[0] for p in params], dtype=np.int64),
                np.array([p[1] for p in params], dtype=np.int64),
                np.array([p[2] for p in params], dtype=np.int64),
            )
        else:
            self._cw_params = None
        self.ops = OpCounters()

    # -- sizing -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_hashes * self.row_width * CELL_BYTES

    @property
    def table(self) -> np.ndarray:
        """Read-only view of the counter array (tests and introspection)."""
        view = self._table.view()
        view.setflags(write=False)
        return view

    # -- hashing ----------------------------------------------------------

    def hash_columns(self, key: int) -> list[int]:
        """The ``w`` column indices for a key (one per row)."""
        encoded = key_to_int(key)
        return [h(encoded) for h in self._hashes]

    def hash_columns_batch(self, keys: np.ndarray) -> np.ndarray:
        """Column indices for many keys, shape ``(num_hashes, len(keys))``.

        Used by the stream-processing fast path to hoist hashing out of the
        per-item Python loop.  Hash-evaluation costs are charged when the
        columns are *consumed* (see :meth:`update_at`), not here, so the
        cost model sees the same operation mix as a per-item execution.
        """
        encoded = encode_key_array(keys)
        columns = np.empty((self.num_hashes, len(keys)), dtype=np.int64)
        for row, family in enumerate(self._hashes):
            columns[row] = family.hash_array(encoded)
        return columns

    # -- updates ----------------------------------------------------------

    def update(self, key: int, amount: int = 1) -> int:
        """Classical (or conservative) point update; returns new estimate."""
        return self.update_at(self.hash_columns(key), amount)

    def update_at(self, columns: list[int] | np.ndarray, amount: int = 1) -> int:
        """Update using precomputed column indices; returns new estimate."""
        table = self._table
        ops = self.ops
        ops.hash_evals += self.num_hashes
        ops.sketch_cell_writes += self.num_hashes
        if self.conservative and amount > 0:
            current = min(int(table[row, col]) for row, col in enumerate(columns))
            target = current + amount
            estimate = target
            for row, col in enumerate(columns):
                if table[row, col] < target:
                    table[row, col] = target
            ops.sketch_cell_reads += self.num_hashes
            return estimate
        estimate = None
        for row, col in enumerate(columns):
            cell = int(table[row, col]) + amount
            if cell < 0:
                raise NegativeCountError(
                    "negative update drove a Count-Min cell below zero; "
                    "the strict turnstile assumption was violated"
                )
            table[row, col] = cell
            if estimate is None or cell < estimate:
                estimate = cell
        assert estimate is not None
        return estimate

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Vectorised updates (no estimates returned).

        Conservative mode cannot be vectorised exactly (each update depends
        on the previous state), so it falls back to the per-item loop.
        """
        keys = np.asarray(keys)
        if self.conservative:
            super().update_batch(keys, amount)
            return
        encoded = encode_key_array(keys)
        self.ops.hash_evals += self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        for row, family in enumerate(self._hashes):
            columns = family.hash_array(encoded)
            np.add.at(self._table[row], columns, amount)
        if amount < 0 and (self._table < 0).any():
            raise NegativeCountError(
                "batch negative update drove a Count-Min cell below zero"
            )

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Vectorised per-key weighted updates (one scatter-add per row).

        Conservative mode falls back to the per-item loop for the same
        reason :meth:`update_batch` does.
        """
        keys = np.asarray(keys)
        amounts = np.asarray(amounts, dtype=np.int64)
        if self.conservative:
            super().update_batch_weighted(keys, amounts)
            return
        encoded = encode_key_array(keys)
        self.ops.hash_evals += self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        if self._kernel_ready(encoded):
            assert self._cw_params is not None
            a_hi, a_lo, b_mod = self._cw_params
            active_backend().cm_update_weighted(
                self._table, a_hi, a_lo, b_mod, encoded, amounts
            )
        else:
            for row, family in enumerate(self._hashes):
                columns = family.hash_array(encoded)
                np.add.at(self._table[row], columns, amounts)
        if amounts.size and int(amounts.min()) < 0 and (self._table < 0).any():
            raise NegativeCountError(
                "batch negative update drove a Count-Min cell below zero"
            )

    # -- queries ----------------------------------------------------------

    def estimate(self, key: int) -> int:
        """Minimum over the key's cells — an overestimate of its count."""
        self.ops.hash_evals += self.num_hashes
        self.ops.sketch_cell_reads += self.num_hashes
        table = self._table
        return min(
            int(table[row, col]) for row, col in enumerate(self.hash_columns(key))
        )

    def estimate_batch(self, keys) -> list[int]:
        """Vectorised point queries."""
        keys = np.asarray(list(keys))
        if keys.size == 0:
            return []
        encoded = encode_key_array(keys)
        self.ops.hash_evals += self.num_hashes * len(keys)
        self.ops.sketch_cell_reads += self.num_hashes * len(keys)
        if self._kernel_ready(encoded):
            assert self._cw_params is not None
            a_hi, a_lo, b_mod = self._cw_params
            estimates = active_backend().cm_estimate(
                self._table, a_hi, a_lo, b_mod, encoded
            )
            return [int(v) for v in estimates]
        estimates = np.full(len(keys), np.iinfo(np.int64).max, dtype=np.int64)
        for row, family in enumerate(self._hashes):
            columns = family.hash_array(encoded)
            np.minimum(estimates, self._table[row, columns], out=estimates)
        return [int(v) for v in estimates]

    def _kernel_ready(self, encoded: np.ndarray) -> bool:
        """Whether the fused hash kernels can serve this encoded batch.

        Requires Carter-Wegman rows (pre-split parameters exist) and
        every encoded key below ``2**31`` — the overflow bound of the
        int64 Mersenne folding.  Anything else takes the per-row
        ``hash_array`` path, which handles huge keys exactly.
        """
        return (
            self._cw_params is not None
            and encoded.size > 0
            and int(encoded.max()) < _KERNEL_KEY_LIMIT
        )

    def total_count(self) -> int:
        """Aggregate count ``N`` absorbed by the sketch (row 0 sum)."""
        return int(self._table[0].sum())

    # -- merging ----------------------------------------------------------

    def is_mergeable_with(self, other: "CountMinSketch") -> bool:
        """Whether two sketches share dimensions and hash functions.

        Cell-wise addition is only meaningful when both sketches map
        every key to the same cells — i.e. equal ``(w, h, seeds)``.
        """
        if not isinstance(other, CountMinSketch):
            return False
        if (self.num_hashes, self.row_width) != (
            other.num_hashes,
            other.row_width,
        ):
            return False
        probe_keys = (0, 1, 2, 12345, 987654321)
        return all(
            self.hash_columns(key) == other.hash_columns(key)
            for key in probe_keys
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Cell-wise add another sketch into this one.

        Count-Min is a linear sketch: the merged table summarises the
        concatenation of both input streams, with the same one-sided
        guarantee.  This is the distributed-aggregation story behind
        SPMD deployments that want a *single* combined synopsis instead
        of query-time summation.
        """
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "sketches must share dimensions and hash seeds to merge"
            )
        self._table += other._table
        self.ops.sketch_cell_writes += self.num_hashes * self.row_width

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "count-min"

    def state(self) -> SynopsisState:
        """Full state: construction parameters plus the counter table."""
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "num_hashes": self.num_hashes,
                "row_width": self.row_width,
                "seed": self.seed,
                "conservative": self.conservative,
                "hash_family": self.hash_family_name,
            },
            arrays={"table": self._table.copy()},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "CountMinSketch":
        """Rebuild a sketch that continues exactly where ``state`` left off."""
        sketch = cls(**state.params)
        sketch._table[:] = state.arrays["table"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(w={self.num_hashes}, h={self.row_width}, "
            f"bytes={self.size_bytes}, conservative={self.conservative})"
        )
