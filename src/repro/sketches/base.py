"""Common interface and sizing helpers for sketch synopses.

Terminology follows the paper: a sketch has ``w`` hash functions
(``num_hashes`` here) each mapping onto ``[0, h)`` (``row_width`` here),
for ``w * h`` counter cells.  Space budgets are expressed in bytes with the
paper's 4-byte logical cells (``CELL_BYTES``), independent of the 8-byte
NumPy storage we use internally — all paper experiments size synopses as
``w * h * 4`` bytes, and we reproduce that accounting exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters

#: Logical bytes per counter cell, as in the paper's space accounting.
CELL_BYTES = 4


def row_width_for_bytes(total_bytes: int, num_hashes: int) -> int:
    """Row width ``h`` for a byte budget: ``h = bytes / (w * CELL_BYTES)``.

    Raises :class:`ConfigurationError` if the budget cannot hold at least
    one cell per row.
    """
    if num_hashes <= 0:
        raise ConfigurationError(f"num_hashes must be positive, got {num_hashes}")
    width = total_bytes // (num_hashes * CELL_BYTES)
    if width < 1:
        raise ConfigurationError(
            f"{total_bytes} bytes cannot hold {num_hashes} rows of "
            f"{CELL_BYTES}-byte cells"
        )
    return width


class FrequencySketch(ABC):
    """Interface every sketch synopsis implements.

    Updates are *point* operations returning the post-update estimate (the
    ASketch exchange test needs it without a second probe, mirroring the
    paper's Algorithm 1 line 9).  Batch forms exist for workloads that do
    not interleave updates with state-dependent decisions.
    """

    #: Operation record for the hardware cost model.
    ops: OpCounters

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """Logical size of the synopsis in bytes (paper accounting)."""

    @abstractmethod
    def update(self, key: int, amount: int = 1) -> int:
        """Add ``amount`` to ``key`` and return the new estimate for it.

        ``amount`` may be negative (strict turnstile model, Appendix A);
        implementations raise :class:`NegativeCountError` when a deletion
        is detectably invalid.
        """

    @abstractmethod
    def estimate(self, key: int) -> int:
        """Estimated frequency of ``key``."""

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Apply many single-``amount`` updates without returning estimates.

        The default implementation loops; array-backed sketches override
        with a vectorised version.
        """
        for key in keys.tolist():
            self.update(int(key), amount)

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Apply per-key weighted updates (no estimates returned).

        ``keys[i]`` receives ``amounts[i]``.  This is the miss path of
        the ASketch batched ingest: a chunk is pre-aggregated to one
        (key, total) pair per distinct key before it reaches the sketch.
        The default loops; array-backed sketches override with one
        vectorised scatter-add per row.
        """
        keys = np.asarray(keys)
        amounts = np.asarray(amounts)
        for key, amount in zip(keys.tolist(), amounts.tolist()):
            self.update(int(key), int(amount))

    def estimate_batch(self, keys: Iterable[int]) -> list[int]:
        """Point-query every key; default loops over :meth:`estimate`."""
        return [self.estimate(int(key)) for key in keys]

    def process_stream(self, keys: np.ndarray) -> None:
        """Ingest a unit-count key array as a stream (driver entry point).

        Charges one per-item loop iteration to the operation record on
        top of whatever :meth:`update_batch` charges, so modeled
        throughput matches a per-item execution.
        """
        self.update_batch(keys)
        self.ops.items += len(keys)
