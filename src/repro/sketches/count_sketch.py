"""Count Sketch (Charikar, Chen & Farach-Colton, reference [7]).

Each row pairs a bucket hash with a ±1 sign hash; updates add
``sign(key) * amount`` to one cell per row and a query returns the
*median* of ``sign(key) * cell`` across rows.  Unlike Count-Min the error
is two-sided (unbiased), so Count Sketch cannot misclassify items only
upward — but it can underestimate, which is why the paper builds ASketch's
guarantee discussion on Count-Min.  Included as the third backend listed
in the paper's Figure 1 and for the backend-generality tests.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.hashing import make_hash_family
from repro.hashing.families import SignHash, encode_key_array, key_to_int
from repro.sketches.base import CELL_BYTES, FrequencySketch, row_width_for_bytes


class CountSketch(FrequencySketch):
    """Median-estimator sketch with ±1 signs.

    Parameters mirror :class:`~repro.sketches.count_min.CountMinSketch`.
    """

    def __init__(
        self,
        num_hashes: int = 8,
        row_width: int | None = None,
        *,
        total_bytes: int | None = None,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if (row_width is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of row_width or total_bytes"
            )
        if total_bytes is not None:
            row_width = row_width_for_bytes(total_bytes, num_hashes)
        assert row_width is not None
        if num_hashes <= 0 or row_width <= 0:
            raise ConfigurationError(
                f"invalid Count Sketch dimensions w={num_hashes}, h={row_width}"
            )
        self.num_hashes = int(num_hashes)
        self.row_width = int(row_width)
        self._table = np.zeros((self.num_hashes, self.row_width), dtype=np.int64)
        self._hashes = [
            make_hash_family(hash_family, self.row_width, seed * 2_000_003 + row)
            for row in range(self.num_hashes)
        ]
        self._signs = [
            SignHash(seed * 3_000_017 + row) for row in range(self.num_hashes)
        ]
        self.ops = OpCounters()

    @property
    def size_bytes(self) -> int:
        return self.num_hashes * self.row_width * CELL_BYTES

    def _locate(self, key: int) -> list[tuple[int, int]]:
        encoded = key_to_int(key)
        return [
            (h(encoded), s(encoded))
            for h, s in zip(self._hashes, self._signs)
        ]

    def update(self, key: int, amount: int = 1) -> int:
        self.ops.hash_evals += 2 * self.num_hashes
        self.ops.sketch_cell_writes += self.num_hashes
        values = []
        for row, (col, sign) in enumerate(self._locate(key)):
            self._table[row, col] += sign * amount
            values.append(sign * int(self._table[row, col]))
        return int(statistics.median(values))

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        keys = np.asarray(keys)
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            np.add.at(self._table[row], columns, signs * amount)

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Vectorised per-key weighted updates (signed scatter-add)."""
        keys = np.asarray(keys)
        amounts = np.asarray(amounts, dtype=np.int64)
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            np.add.at(self._table[row], columns, signs * amounts)

    def estimate(self, key: int) -> int:
        """Median of signed cells; can under- as well as over-estimate."""
        self.ops.hash_evals += 2 * self.num_hashes
        self.ops.sketch_cell_reads += self.num_hashes
        values = [
            sign * int(self._table[row, col])
            for row, (col, sign) in enumerate(self._locate(key))
        ]
        return int(statistics.median(values))

    def estimate_batch(self, keys) -> list[int]:
        """Vectorised point queries (row-wise signed reads, median)."""
        keys = np.asarray(list(keys))
        if keys.size == 0:
            return []
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_reads += self.num_hashes * len(keys)
        signed = np.empty((self.num_hashes, len(keys)), dtype=np.int64)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            signed[row] = signs * self._table[row, columns]
        return [int(v) for v in np.median(signed, axis=0)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountSketch(w={self.num_hashes}, h={self.row_width}, "
            f"bytes={self.size_bytes})"
        )
