"""Count Sketch (Charikar, Chen & Farach-Colton, reference [7]).

Each row pairs a bucket hash with a ±1 sign hash; updates add
``sign(key) * amount`` to one cell per row and a query returns the
*median* of ``sign(key) * cell`` across rows.  Unlike Count-Min the error
is two-sided (unbiased), so Count Sketch cannot misclassify items only
upward — but it can underestimate, which is why the paper builds ASketch's
guarantee discussion on Count-Min.  Included as the third backend listed
in the paper's Figure 1 and for the backend-generality tests.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.hashing import make_hash_family
from repro.hashing.families import SignHash, encode_key_array, key_to_int
from repro.sketches.base import CELL_BYTES, FrequencySketch, row_width_for_bytes
from repro.synopses.protocol import SynopsisState


class CountSketch(FrequencySketch):
    """Median-estimator sketch with ±1 signs.

    Parameters mirror :class:`~repro.sketches.count_min.CountMinSketch`.
    """

    def __init__(
        self,
        num_hashes: int = 8,
        row_width: int | None = None,
        *,
        total_bytes: int | None = None,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if (row_width is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of row_width or total_bytes"
            )
        if total_bytes is not None:
            row_width = row_width_for_bytes(total_bytes, num_hashes)
        assert row_width is not None
        if num_hashes <= 0 or row_width <= 0:
            raise ConfigurationError(
                f"invalid Count Sketch dimensions w={num_hashes}, h={row_width}"
            )
        self.num_hashes = int(num_hashes)
        self.row_width = int(row_width)
        self.seed = int(seed)
        self.hash_family_name = hash_family
        self._table = np.zeros((self.num_hashes, self.row_width), dtype=np.int64)
        self._hashes = [
            make_hash_family(hash_family, self.row_width, seed * 2_000_003 + row)
            for row in range(self.num_hashes)
        ]
        self._signs = [
            SignHash(seed * 3_000_017 + row) for row in range(self.num_hashes)
        ]
        self.ops = OpCounters()

    @property
    def size_bytes(self) -> int:
        return self.num_hashes * self.row_width * CELL_BYTES

    def _locate(self, key: int) -> list[tuple[int, int]]:
        encoded = key_to_int(key)
        return [
            (h(encoded), s(encoded))
            for h, s in zip(self._hashes, self._signs)
        ]

    def update(self, key: int, amount: int = 1) -> int:
        self.ops.hash_evals += 2 * self.num_hashes
        self.ops.sketch_cell_writes += self.num_hashes
        values = []
        for row, (col, sign) in enumerate(self._locate(key)):
            self._table[row, col] += sign * amount
            values.append(sign * int(self._table[row, col]))
        return int(statistics.median(values))

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        keys = np.asarray(keys)
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            np.add.at(self._table[row], columns, signs * amount)

    def update_batch_weighted(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Vectorised per-key weighted updates (signed scatter-add)."""
        keys = np.asarray(keys)
        amounts = np.asarray(amounts, dtype=np.int64)
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_writes += self.num_hashes * len(keys)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            np.add.at(self._table[row], columns, signs * amounts)

    def estimate(self, key: int) -> int:
        """Median of signed cells; can under- as well as over-estimate."""
        self.ops.hash_evals += 2 * self.num_hashes
        self.ops.sketch_cell_reads += self.num_hashes
        values = [
            sign * int(self._table[row, col])
            for row, (col, sign) in enumerate(self._locate(key))
        ]
        return int(statistics.median(values))

    def estimate_batch(self, keys) -> list[int]:
        """Vectorised point queries (row-wise signed reads, median)."""
        keys = np.asarray(list(keys))
        if keys.size == 0:
            return []
        encoded = encode_key_array(keys)
        self.ops.hash_evals += 2 * self.num_hashes * len(keys)
        self.ops.sketch_cell_reads += self.num_hashes * len(keys)
        signed = np.empty((self.num_hashes, len(keys)), dtype=np.int64)
        for row in range(self.num_hashes):
            columns = self._hashes[row].hash_array(encoded)
            signs = self._signs[row].hash_array(encoded)
            signed[row] = signs * self._table[row, columns]
        return [int(v) for v in np.median(signed, axis=0)]

    def total_count(self) -> int:
        """Signed row-0 sum — equals ``N`` only in expectation, kept for
        parity with the Count-Min interface."""
        return int(np.abs(self._table[0]).sum())

    # -- merging ----------------------------------------------------------

    def is_mergeable_with(self, other: "CountSketch") -> bool:
        """Same dimensions and identical bucket *and* sign hashes."""
        if not isinstance(other, CountSketch):
            return False
        if (self.num_hashes, self.row_width) != (
            other.num_hashes,
            other.row_width,
        ):
            return False
        probe_keys = (0, 1, 2, 12345, 987654321)
        return all(
            self._locate(key) == other._locate(key) for key in probe_keys
        )

    def merge(self, other: "CountSketch") -> None:
        """Cell-wise add — Count Sketch is linear, like Count-Min."""
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "sketches must share dimensions and hash seeds to merge"
            )
        self._table += other._table
        self.ops.sketch_cell_writes += self.num_hashes * self.row_width

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "count-sketch"

    def state(self) -> SynopsisState:
        """Full state: construction parameters plus the signed table."""
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "num_hashes": self.num_hashes,
                "row_width": self.row_width,
                "seed": self.seed,
                "hash_family": self.hash_family_name,
            },
            arrays={"table": self._table.copy()},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "CountSketch":
        sketch = cls(**state.params)
        sketch._table[:] = state.arrays["table"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountSketch(w={self.num_hashes}, h={self.row_width}, "
            f"bytes={self.size_bytes})"
        )
