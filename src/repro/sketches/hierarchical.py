"""Hierarchical Count-Min over dyadic ranges (reference [8]'s structure).

The paper's related work notes that plain sketches can support top-k /
heavy-hitter queries only "with an additional heap [7] or a hierarchical
data structure [8]".  This module implements that hierarchical
alternative, which the ASketch filter-based top-k competes against:

one Count-Min sketch per level of a binary partition of the key domain.
Level 0 counts single keys; level ``l`` counts dyadic ranges of size
``2**l``.  An update touches one counter per level (O(log U) work); the
structure then answers:

* ``heavy_hitters(threshold)`` by descending the dyadic tree, pruning
  subtrees whose range estimate is below the threshold — O(k log U)
  sketch queries instead of a domain scan;
* ``range_count(lo, hi)`` as the sum of O(log U) dyadic range
  estimates — the classical range-query application;
* ``top_k`` via a threshold search over the tree.

The comparison bench (``bench_extension_topk.py``) shows the trade-off
the paper exploits: the hierarchy spends log U sketch updates per item
and splits its space budget across levels, while ASketch answers the
same top-k from its filter with *faster* updates and better heavy-hitter
accuracy at equal space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.sketches.count_min import CountMinSketch
from repro.synopses.protocol import SynopsisState


class HierarchicalCountMin:
    """Dyadic Count-Min hierarchy for heavy-hitter and range queries.

    Parameters
    ----------
    domain_bits:
        Keys live in ``[0, 2**domain_bits)``.
    total_bytes:
        Byte budget split evenly across the ``domain_bits + 1`` levels.
    num_hashes:
        Rows per level sketch (fewer than a standalone sketch is typical
        since the budget is split; default 4).
    seed:
        Base hash seed; levels derive distinct seeds.
    """

    def __init__(
        self,
        domain_bits: int,
        *,
        total_bytes: int,
        num_hashes: int = 4,
        seed: int = 0,
    ) -> None:
        if domain_bits < 1 or domain_bits > 40:
            raise ConfigurationError(
                f"domain_bits must be in [1, 40], got {domain_bits}"
            )
        self.domain_bits = int(domain_bits)
        self.domain_size = 1 << self.domain_bits
        levels = self.domain_bits + 1
        per_level = total_bytes // levels
        if per_level < num_hashes * 4:
            raise ConfigurationError(
                f"{total_bytes} bytes cannot fund {levels} level sketches"
            )
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.total_bytes = int(total_bytes)
        self.ops = OpCounters()
        self._levels = [
            CountMinSketch(
                num_hashes=num_hashes,
                total_bytes=per_level,
                seed=seed * 104_729 + level,
            )
            for level in range(levels)
        ]
        self._total = 0

    @property
    def size_bytes(self) -> int:
        """Total logical bytes across all level sketches."""
        return sum(level.size_bytes for level in self._levels)

    @property
    def levels(self) -> int:
        """Number of dyadic levels (``domain_bits + 1``)."""
        return len(self._levels)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.domain_size:
            raise ConfigurationError(
                f"key {key} outside the domain [0, {self.domain_size})"
            )

    # -- updates ----------------------------------------------------------

    def update(self, key: int, amount: int = 1) -> None:
        """Add ``amount`` to the key's counter at every dyadic level."""
        self._check_key(key)
        self.ops.items += 1
        for level, sketch in enumerate(self._levels):
            sketch.update(key >> level, amount)
        self._total += amount

    def update_batch(self, keys: np.ndarray, amount: int = 1) -> None:
        """Vectorised updates across all levels."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        if int(keys.min()) < 0 or int(keys.max()) >= self.domain_size:
            raise ConfigurationError("keys outside the dyadic domain")
        self.ops.items += len(keys)
        for level, sketch in enumerate(self._levels):
            sketch.update_batch(keys >> np.int64(level), amount)
        self._total += int(len(keys)) * amount

    def process_stream(self, keys: np.ndarray) -> None:
        """Driver entry point (unit counts)."""
        self.update_batch(keys)

    # -- point & range queries ----------------------------------------------

    def estimate(self, key: int) -> int:
        """Point estimate (level-0 sketch; one-sided)."""
        self._check_key(key)
        return self._levels[0].estimate(key)

    def estimate_batch(self, keys) -> list[int]:
        """Vectorised point estimates (level-0 sketch)."""
        return self._levels[0].estimate_batch(keys)

    def range_count(self, low: int, high: int) -> int:
        """One-sided estimate of the total count of keys in [low, high].

        Decomposes the range into O(log U) maximal dyadic intervals and
        sums their level estimates.
        """
        self._check_key(low)
        self._check_key(high)
        if low > high:
            raise ConfigurationError(f"empty range [{low}, {high}]")
        total = 0
        lo, hi = low, high + 1  # half-open
        while lo < hi:
            # Largest dyadic block aligned at lo that fits in [lo, hi).
            level = (lo & -lo).bit_length() - 1 if lo else self.domain_bits
            while level > 0 and lo + (1 << level) > hi:
                level -= 1
            level = min(level, self.domain_bits)
            total += self._levels[level].estimate(lo >> level)
            lo += 1 << level
        return total

    # -- heavy hitters / top-k ---------------------------------------------

    def heavy_hitters(self, threshold: int) -> list[tuple[int, int]]:
        """All keys whose estimate reaches ``threshold``, via tree descent.

        Sound (no key with a true count >= threshold is missed, by the
        one-sided range estimates) and complete up to sketch error.
        Returns (key, level-0 estimate) pairs sorted descending.
        """
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        found: list[tuple[int, int]] = []
        # Frontier of (level, prefix) nodes whose range may be heavy.
        frontier = [(self.domain_bits, 0)]
        while frontier:
            level, prefix = frontier.pop()
            estimate = self._levels[level].estimate(prefix)
            if estimate < threshold:
                continue
            if level == 0:
                found.append((prefix, estimate))
                continue
            frontier.append((level - 1, prefix << 1))
            frontier.append((level - 1, (prefix << 1) | 1))
        found.sort(key=lambda pair: pair[1], reverse=True)
        return found

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """Approximate top-k via a descending threshold search."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if self._total == 0:
            return []
        threshold = max(self._total // 2, 1)
        best: list[tuple[int, int]] = []
        while threshold >= 1:
            candidates = self.heavy_hitters(threshold)
            if len(candidates) >= k or threshold == 1:
                best = candidates
                break
            threshold //= 2
        return best[:k]

    @property
    def total(self) -> int:
        """Aggregate inserted count."""
        return self._total

    @property
    def level_sketches(self) -> tuple[CountMinSketch, ...]:
        """The per-level sketches, level 0 first (read-only tuple)."""
        return tuple(self._levels)

    # -- merging ----------------------------------------------------------

    def is_mergeable_with(self, other: "HierarchicalCountMin") -> bool:
        """Same domain and every level sketch pairwise mergeable."""
        if not isinstance(other, HierarchicalCountMin):
            return False
        if self.domain_bits != other.domain_bits:
            return False
        return all(
            mine.is_mergeable_with(theirs)
            for mine, theirs in zip(self._levels, other._levels)
        )

    def merge(self, other: "HierarchicalCountMin") -> None:
        """Level-wise cell addition — the hierarchy inherits Count-Min
        linearity, so every dyadic range estimate stays one-sided for
        the concatenated stream."""
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "hierarchies must share domain and hash seeds to merge"
            )
        for mine, theirs in zip(self._levels, other._levels):
            mine.merge(theirs)
        self._total += other._total

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "hierarchical-count-min"

    def state(self) -> SynopsisState:
        """Constructor parameters (including the *base* seed, verbatim)
        plus one table array per dyadic level."""
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "domain_bits": self.domain_bits,
                "total_bytes": self.total_bytes,
                "num_hashes": self.num_hashes,
                "seed": self.seed,
            },
            arrays={
                f"level{index}.table": sketch.table.copy()
                for index, sketch in enumerate(self._levels)
            },
            extra={"total": self._total},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "HierarchicalCountMin":
        hierarchy = cls(
            state.params["domain_bits"],
            total_bytes=state.params["total_bytes"],
            num_hashes=state.params["num_hashes"],
            seed=state.params["seed"],
        )
        for index, sketch in enumerate(hierarchy._levels):
            sketch._table[:] = state.arrays[f"level{index}.table"]
        hierarchy._total = int(state.extra["total"])
        return hierarchy
