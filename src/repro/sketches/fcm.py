"""Frequency-Aware Counting (Thomas et al., reference [34] of the paper).

FCM improves Count-Min accuracy by hashing each item into only a *subset*
of the ``w`` rows.  Two extra hash functions derive an ``offset`` and a
``gap`` per key; the key's row sequence is
``(offset + i * gap) mod w`` for ``i = 0, 1, ...``.  A Misra-Gries counter
classifies items: items it currently monitors are "high frequency" and use
``w/2`` rows; the rest use ``4w/5`` rows (the parameters the paper quotes
from [34]).  Fewer rows for heavy items means fewer heavy/light collisions,
which is where FCM's accuracy gain over Count-Min comes from.

Classification caveat (inherited from the original FCM): an item's class
can change over its lifetime, so at query time some of the probed rows may
have missed a few of its updates.  The gap is forced odd so the row
sequence is a permutation of all ``w`` rows (``w`` is a power of two in
all experiments), and both class sizes share the sequence's *prefix*, so
the first ``w/2`` rows receive every update of the item regardless of
class — querying a high-classified item is therefore always one-sided.

The paper's §7.3 notes that the MG-counter maintenance is a significant
overhead of original FCM and evaluates a "modified" MG-free variant for
the real-data throughput runs; ``use_mg_counter=False`` reproduces that
variant (all items treated as low-frequency).
"""

from __future__ import annotations

import numpy as np

from repro.counters.misra_gries import MisraGries
from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.hashing import make_hash_family
from repro.hashing.families import key_to_int
from repro.sketches.base import CELL_BYTES, FrequencySketch, row_width_for_bytes
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    unpack_nested,
)


class FrequencyAwareCountMin(FrequencySketch):
    """FCM: Count-Min with frequency-aware row selection.

    Parameters
    ----------
    num_hashes:
        ``w``, total rows (the high/low classes use prefixes of a per-key
        permutation of these rows).
    row_width / total_bytes:
        As for :class:`~repro.sketches.count_min.CountMinSketch`; when
        ``total_bytes`` is given and the MG counter is enabled, the MG
        table's space (``mg_capacity`` items at 12 bytes each, the array
        filter layout) is carved out of the sketch, mirroring how the
        paper allocates every method the same total space.
    mg_capacity:
        Size of the Misra-Gries classifier.  The paper sizes it to match
        the ASketch filter ("we have fixed the MG counter size in such a
        way that it stores the same number of high-frequency items as that
        in our filter").
    """

    #: Logical bytes per MG slot: id + count, padded to the filter layout.
    MG_BYTES_PER_ITEM = 12

    def __init__(
        self,
        num_hashes: int = 8,
        row_width: int | None = None,
        *,
        total_bytes: int | None = None,
        mg_capacity: int = 32,
        use_mg_counter: bool = True,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if (row_width is None) == (total_bytes is None):
            raise ConfigurationError(
                "specify exactly one of row_width or total_bytes"
            )
        self.ops = OpCounters()
        self.use_mg_counter = bool(use_mg_counter)
        self.seed = int(seed)
        self.hash_family_name = hash_family
        self.mg_capacity = int(mg_capacity) if use_mg_counter else 0
        if total_bytes is not None:
            sketch_bytes = total_bytes - self.mg_capacity * self.MG_BYTES_PER_ITEM
            if sketch_bytes <= 0:
                raise ConfigurationError(
                    "MG counter does not fit in the FCM byte budget"
                )
            row_width = row_width_for_bytes(sketch_bytes, num_hashes)
        assert row_width is not None
        self.num_hashes = int(num_hashes)
        self.row_width = int(row_width)
        #: Rows used for a high-frequency item (w/2) and the rest (4w/5).
        self.rows_high = max(1, self.num_hashes // 2)
        self.rows_low = max(self.rows_high, round(0.8 * self.num_hashes))
        self._table = np.zeros((self.num_hashes, self.row_width), dtype=np.int64)
        self._hashes = [
            make_hash_family(hash_family, self.row_width, seed * 4_000_037 + row)
            for row in range(self.num_hashes)
        ]
        self._offset_hash = make_hash_family(
            hash_family, self.num_hashes, seed * 5_000_011 + 1
        )
        # Gap is drawn odd (see module docstring); range w/2 then *2+1.
        self._gap_hash = make_hash_family(
            hash_family, max(1, self.num_hashes // 2), seed * 5_000_011 + 2
        )
        self._mg = (
            MisraGries(self.mg_capacity, ops=self.ops)
            if self.use_mg_counter
            else None
        )

    @property
    def size_bytes(self) -> int:
        sketch = self.num_hashes * self.row_width * CELL_BYTES
        return sketch + self.mg_capacity * self.MG_BYTES_PER_ITEM

    def _row_sequence(self, encoded: int, length: int) -> list[int]:
        """First ``length`` rows of the key's odd-gap row permutation."""
        self.ops.hash_evals += 2
        offset = self._offset_hash(encoded)
        gap = 2 * self._gap_hash(encoded) + 1
        w = self.num_hashes
        return [(offset + i * gap) % w for i in range(length)]

    def _classify_rows(self, encoded: int) -> int:
        """Row count for this key under its current classification."""
        if self._mg is not None and self._mg.is_frequent(encoded):
            return self.rows_high
        return self.rows_low

    def update(self, key: int, amount: int = 1) -> int:
        """Classify, update the selected rows, return the new estimate."""
        encoded = key_to_int(key)
        if self._mg is not None:
            self._mg.update(encoded, amount)
        n_rows = self._classify_rows(encoded)
        rows = self._row_sequence(encoded, n_rows)
        self.ops.hash_evals += n_rows
        self.ops.sketch_cell_writes += n_rows
        estimate = None
        for row in rows:
            col = self._hashes[row](encoded)
            self._table[row, col] += amount
            cell = int(self._table[row, col])
            if estimate is None or cell < estimate:
                estimate = cell
        assert estimate is not None
        return estimate

    def estimate(self, key: int) -> int:
        """Minimum over the key's *high-prefix* rows.

        Every update — whichever class the item was in at the time —
        writes at least the first ``rows_high`` rows of the key's row
        permutation, so the minimum over that prefix is always an
        over-estimate.  Probing the longer low-class prefix instead can
        *under*-estimate items whose classification ever flipped (rows
        beyond the shared prefix miss the updates made while the item was
        classified high), so the prefix query is the safe reading of
        [34]'s "smaller number of hash functions for answering frequency
        estimation queries".
        """
        encoded = key_to_int(key)
        rows = self._row_sequence(encoded, self.rows_high)
        self.ops.hash_evals += self.rows_high
        self.ops.sketch_cell_reads += self.rows_high
        return min(
            int(self._table[row, self._hashes[row](encoded)]) for row in rows
        )

    # -- merging ----------------------------------------------------------

    def is_mergeable_with(self, other: "FrequencyAwareCountMin") -> bool:
        """Same dimensions, row hashes and row-selection hashes."""
        if not isinstance(other, FrequencyAwareCountMin):
            return False
        if (self.num_hashes, self.row_width, self.use_mg_counter) != (
            other.num_hashes,
            other.row_width,
            other.use_mg_counter,
        ):
            return False
        probe_keys = (0, 1, 2, 12345, 987654321)
        for key in probe_keys:
            encoded = key_to_int(key)
            if self._row_sequence(encoded, self.num_hashes) != (
                other._row_sequence(encoded, other.num_hashes)
            ):
                return False
            if any(
                self._hashes[row](encoded) != other._hashes[row](encoded)
                for row in range(self.num_hashes)
            ):
                return False
        return True

    def merge(self, other: "FrequencyAwareCountMin") -> None:
        """Cell-wise add the tables and fold the MG classifiers.

        The counter table is linear, so the merged table sees the
        concatenation of both streams; since every update writes at
        least the shared ``rows_high`` prefix, the prefix-minimum query
        stays one-sided after the merge.  Classification is
        path-dependent, so merged estimates are not bit-identical to a
        single-sketch run — the one-sided guarantee is what merging
        preserves.
        """
        if not self.is_mergeable_with(other):
            raise ConfigurationError(
                "FCM sketches must share dimensions and hash seeds to merge"
            )
        self._table += other._table
        self.ops.sketch_cell_writes += self.num_hashes * self.row_width
        if self._mg is not None and other._mg is not None:
            self._mg.merge(other._mg)

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "fcm"

    def state(self) -> SynopsisState:
        """Construction parameters, the table, and the nested MG state."""
        arrays = {"table": self._table.copy()}
        extra: dict = {}
        if self._mg is not None:
            mg_state = self._mg.state()
            arrays.update(prefix_arrays("mg", mg_state.arrays))
            extra["mg"] = pack_nested(mg_state)
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "num_hashes": self.num_hashes,
                "row_width": self.row_width,
                "mg_capacity": self.mg_capacity,
                "use_mg_counter": self.use_mg_counter,
                "seed": self.seed,
                "hash_family": self.hash_family_name,
            },
            arrays=arrays,
            extra=extra,
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "FrequencyAwareCountMin":
        sketch = cls(**state.params)
        sketch._table[:] = state.arrays["table"]
        if sketch._mg is not None and "mg" in state.extra:
            mg_state = unpack_nested(state.extra["mg"], state.arrays, "mg")
            sketch._mg = MisraGries.from_state(mg_state)
            sketch._mg.ops = sketch.ops
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequencyAwareCountMin(w={self.num_hashes}, h={self.row_width}, "
            f"mg={self.mg_capacity}, bytes={self.size_bytes})"
        )
