"""Holistic UDAFs (Cormode et al., reference [10] of the paper).

The Holistic-UDAF architecture performs *run-length aggregation* in a
small low-level table in front of a sketch: an incoming tuple is
aggregated in the table if its key is present; when the table is full and
a new key arrives, the whole table is flushed into the sketch and cleared.
This raises update throughput on skewed data (one table hit replaces ``w``
hash updates) but — unlike ASketch — the table is transient: everything is
eventually flushed, so query accuracy equals the underlying sketch's
("Holistic UDAFs relies on the underlying sketch for answering the
queries, therefore the performance is almost the same as that of
Count-Min", §7.2.1).

Space accounting matches the paper's fairness protocol: the table's slots
(same 12-byte array layout as the ASketch filter) are carved out of the
sketch's byte budget, and the table lookup is priced as the same SIMD
linear scan ("For the lookup in the low-level table, we use the same code
that we use for the filter lookup").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.simd.engine import simd_probe_blocks
from repro.sketches.base import FrequencySketch
from repro.sketches.count_min import CountMinSketch
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    unpack_nested,
)

#: Logical bytes per table slot (id + count + padding; the array layout).
TABLE_BYTES_PER_ITEM = 12


class HolisticUDAF(FrequencySketch):
    """Run-length aggregation table in front of a Count-Min sketch.

    Parameters
    ----------
    table_items:
        Capacity of the low-level aggregate table (the paper sizes it to
        the ASketch filter's item count).
    total_bytes:
        Total synopsis budget; the sketch receives what the table leaves.
    num_hashes, seed, hash_family:
        Forwarded to the underlying Count-Min sketch.
    """

    def __init__(
        self,
        table_items: int = 32,
        *,
        total_bytes: int,
        num_hashes: int = 8,
        seed: int = 0,
        hash_family: str = "carter-wegman",
    ) -> None:
        if table_items < 1:
            raise ConfigurationError(
                f"table_items must be >= 1, got {table_items}"
            )
        table_bytes = table_items * TABLE_BYTES_PER_ITEM
        sketch_bytes = total_bytes - table_bytes
        if sketch_bytes <= 0:
            raise ConfigurationError(
                "aggregate table does not fit in the byte budget"
            )
        self.table_items = int(table_items)
        self.total_bytes = int(total_bytes)
        self.seed = int(seed)
        self.hash_family_name = hash_family
        self.sketch = CountMinSketch(
            num_hashes=num_hashes,
            total_bytes=sketch_bytes,
            seed=seed,
            hash_family=hash_family,
        )
        self.ops = OpCounters()
        self._table: dict[int, int] = {}
        #: Number of whole-table flushes performed (throughput analysis).
        self.flush_count = 0

    @property
    def size_bytes(self) -> int:
        return self.sketch.size_bytes + self.table_items * TABLE_BYTES_PER_ITEM

    def _charge_probe(self) -> None:
        self.ops.filter_probes += 1
        self.ops.filter_probe_blocks += simd_probe_blocks(self.table_items)

    def update(self, key: int, amount: int = 1) -> int:
        """Aggregate in the table, flushing to the sketch when it spills.

        Returns the current estimate (sketch plus pending table count),
        keeping the interface uniform with the other sketches.
        """
        self.ops.items += 1
        self._charge_probe()
        table = self._table
        if key in table:
            table[key] += amount
            self.ops.filter_hits += 1
        else:
            if len(table) >= self.table_items:
                self.flush()
            table[key] = amount
        return self.estimate(key)

    def process(self, key: int, amount: int = 1) -> None:
        """Update without computing an estimate (the streaming hot path)."""
        self.ops.items += 1
        self._charge_probe()
        table = self._table
        if key in table:
            table[key] += amount
            self.ops.filter_hits += 1
        else:
            if len(table) >= self.table_items:
                self.flush()
            table[key] = amount

    def process_stream(self, keys: np.ndarray) -> None:
        """Sequentially process a key array (flush points are order-exact)."""
        for key in keys.tolist():
            self.process(int(key))

    update_batch = process_stream

    def flush(self) -> None:
        """Flush every aggregated (key, count) pair into the sketch."""
        for key, count in self._table.items():
            self.sketch.update(key, count)
            self.ops.flush_items += 1
        self._table.clear()
        self.flush_count += 1

    def stage_ops(self) -> tuple["OpCounters", "OpCounters"]:
        """(table-core, sketch-core) split for the pipeline model (§6.2).

        The table core carries the per-item loop, the SIMD probes and the
        flush driver; the sketch core carries the hash/cell work of the
        flushed items.  The flush items are also the forwarded messages.
        """
        stage0 = self.ops.snapshot()
        stage1 = self.sketch.ops.snapshot()
        return stage0, stage1

    def estimate(self, key: int) -> int:
        """Sketch estimate plus any count still pending in the table.

        The table alone can never answer a query (its content is a partial
        run), so every query pays the sketch probe — the behaviour behind
        the paper's Figure 5(b).
        """
        self._charge_probe()
        pending = self._table.get(key, 0)
        return self.sketch.estimate(key) + pending

    # -- merging ----------------------------------------------------------

    def merge(self, other: "HolisticUDAF") -> None:
        """Flush both pending tables, then cell-wise merge the sketches.

        Post-merge estimates summarise the concatenation of both streams
        with the underlying Count-Min one-sided guarantee; they are not
        bit-identical to a single-instance run because flush boundaries
        differ (the table is transient by design, so only the sketch's
        guarantee is preserved — the same reason §7.2.1 ties Holistic
        UDAF accuracy to the backing sketch's).
        """
        if not isinstance(other, HolisticUDAF):
            raise ConfigurationError(
                f"cannot merge HolisticUDAF with {type(other).__name__}"
            )
        self.flush()
        other.flush()
        self.sketch.merge(other.sketch)

    # -- synopsis protocol --------------------------------------------------

    SYNOPSIS_KIND = "holistic-udaf"

    def state(self) -> SynopsisState:
        """Nested sketch state plus the pending table in insertion order.

        Insertion order matters: the next spill flushes the table dict in
        that order, so restoring it verbatim keeps flush traces identical.
        """
        sketch_state = self.sketch.state()
        arrays = {
            "table_keys": np.array(list(self._table.keys()), dtype=np.int64),
            "table_counts": np.array(
                list(self._table.values()), dtype=np.int64
            ),
        }
        arrays.update(prefix_arrays("sketch", sketch_state.arrays))
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "table_items": self.table_items,
                "total_bytes": self.total_bytes,
                "num_hashes": self.sketch.num_hashes,
                "seed": self.seed,
                "hash_family": self.hash_family_name,
            },
            arrays=arrays,
            extra={
                "flush_count": self.flush_count,
                "sketch": pack_nested(sketch_state),
            },
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "HolisticUDAF":
        udaf = cls(
            state.params["table_items"],
            total_bytes=state.params["total_bytes"],
            num_hashes=state.params["num_hashes"],
            seed=state.params["seed"],
            hash_family=state.params["hash_family"],
        )
        sketch_state = unpack_nested(
            state.extra["sketch"], state.arrays, "sketch"
        )
        udaf.sketch = CountMinSketch.from_state(sketch_state)
        udaf._table = {
            int(key): int(count)
            for key, count in zip(
                state.arrays["table_keys"].tolist(),
                state.arrays["table_counts"].tolist(),
            )
        }
        udaf.flush_count = int(state.extra["flush_count"])
        return udaf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HolisticUDAF(table={self.table_items}, "
            f"sketch_bytes={self.sketch.size_bytes})"
        )
