"""Sketch synopses: Count-Min, Count Sketch, FCM, Holistic UDAFs,
SF-sketch (slim/fat), SALSA (self-adjusting counters).

All sketches implement the :class:`~repro.sketches.base.FrequencySketch`
interface (point updates returning the post-update estimate, point queries,
batch forms, byte-accurate sizing, operation counting) so that
:class:`~repro.core.asketch.ASketch` can sit on top of any of them —
the paper demonstrates Count-Min (§7.2) and FCM ("ASketch-FCM", Figure 8)
backends, both of which are reproduced here.
"""

from repro.sketches.base import FrequencySketch, row_width_for_bytes
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.fcm import FrequencyAwareCountMin
from repro.sketches.hierarchical import HierarchicalCountMin
from repro.sketches.holistic_udaf import HolisticUDAF
from repro.sketches.salsa import SalsaCountMin
from repro.sketches.sf_sketch import SFSketch

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "FrequencyAwareCountMin",
    "FrequencySketch",
    "HierarchicalCountMin",
    "HolisticUDAF",
    "SFSketch",
    "SalsaCountMin",
    "row_width_for_bytes",
]
