"""Portable kernel bodies shared by the ``python`` and ``numba`` backends.

Every function here is written in the nopython subset numba can compile
(plain loops, int64 arithmetic, preallocated output arrays, no Python
objects), so one definition serves two backends: the ``python`` backend
calls these functions as-is, and the ``numba`` backend wraps *the same
functions* in ``numba.njit``.  Semantic identity between the interpreted
and the compiled legs therefore holds by construction; the equivalence
suite only has to pin these loops against the vectorised ``numpy``
reference.

The Carter-Wegman arithmetic mirrors
:meth:`repro.hashing.families.CarterWegmanHash.hash_array`: with encoded
keys below ``2**31`` and ``a = a_hi * 2**31 + a_lo`` (``a < p`` so
``a_hi < 2**30``), every product stays below ``2**62`` and every sum
below ``3 * 2**61``, so the whole reduction fits signed 64-bit — no
128-bit math required in compiled code.
"""

from __future__ import annotations

import numpy as np

#: Mersenne prime ``2**61 - 1`` (kept as a plain int so numba folds it).
_P = (1 << 61) - 1
_MASK_30 = (1 << 30) - 1
_INT64_MAX = (1 << 63) - 1


def membership_probe(
    ids: np.ndarray, keys: np.ndarray, out: np.ndarray
) -> None:
    """Slot index of each key in a filter id array (``-1`` = miss).

    ``ids`` uses the array filters' encoding: slot value ``key + 1``,
    ``0`` marks an empty slot.  The inner scan is the branch-free
    membership loop of Algorithm 3 — a compiler auto-vectorises it into
    exactly the SIMD probe the paper describes.  Non-positive targets
    (keys below 0) can never be stored under this encoding and report a
    miss without consulting the array.
    """
    m = ids.shape[0]
    n = keys.shape[0]
    for i in range(n):
        target = keys[i] + 1
        slot = -1
        if target > 0:
            for j in range(m):
                if ids[j] == target:
                    slot = j
        out[i] = slot


def cm_update_weighted(
    table: np.ndarray,
    a_hi: np.ndarray,
    a_lo: np.ndarray,
    b_mod: np.ndarray,
    encoded: np.ndarray,
    amounts: np.ndarray,
) -> None:
    """Fused Carter-Wegman hash + scatter-add over a Count-Min table.

    One pass per row: each key's column is computed in-register and its
    amount added immediately — no intermediate ``(rows, n)`` index array
    ever exists, which is the point of compiling this loop.
    """
    rows = table.shape[0]
    width = table.shape[1]
    n = encoded.shape[0]
    for r in range(rows):
        hi_a = a_hi[r]
        lo_a = a_lo[r]
        b = b_mod[r]
        for i in range(n):
            k = encoded[i]
            lo = (lo_a * k) % _P
            hi = (hi_a * k) % _P
            hi_term = ((hi >> 30) + ((hi & _MASK_30) << 31)) % _P
            col = ((lo + hi_term + b) % _P) % width
            table[r, col] += amounts[i]


def cm_estimate(
    table: np.ndarray,
    a_hi: np.ndarray,
    a_lo: np.ndarray,
    b_mod: np.ndarray,
    encoded: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fused hash + gather + row-minimum (the Count-Min point query)."""
    rows = table.shape[0]
    width = table.shape[1]
    n = encoded.shape[0]
    for i in range(n):
        k = encoded[i]
        best = _INT64_MAX
        for r in range(rows):
            lo = (a_lo[r] * k) % _P
            hi = (a_hi[r] * k) % _P
            hi_term = ((hi >> 30) + ((hi & _MASK_30) << 31)) % _P
            col = ((lo + hi_term + b_mod[r]) % _P) % width
            cell = table[r, col]
            if cell < best:
                best = cell
        out[i] = best


def exchange_candidates(
    estimates: np.ndarray, threshold: int, out: np.ndarray
) -> int:
    """Positions whose estimate beats ``threshold``; returns the count.

    The ASketch batched exchange pre-check (Algorithm 1 line 9 hoisted
    to chunk granularity): the filter minimum is non-decreasing across
    exchanges, so keys at or below the pre-loop minimum can be skipped
    without changing any exchange decision.
    """
    n = estimates.shape[0]
    count = 0
    for i in range(n):
        if estimates[i] > threshold:
            out[count] = i
            count += 1
    return count
