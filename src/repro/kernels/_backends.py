"""The three kernel backends: ``python``, ``numpy``, and ``numba``.

All backends implement the same four operations (see
:class:`KernelBackend`) with bit-identical results:

* ``python`` — the portable loop bodies of :mod:`repro.kernels._impl`,
  executed by the interpreter.  Slow; exists as the semantics reference
  for the compiled leg and for environments without NumPy vectorisation
  wins (it is also what makes the numba leg's logic testable without
  numba installed).
* ``numpy`` — vectorised reference implementation and the default.
  Shares the Carter-Wegman folding with
  :meth:`repro.hashing.families.CarterWegmanHash.hash_array` so kernel
  and non-kernel code paths hash identically.
* ``numba`` — ``numba.njit``-compiled versions of the *same* ``_impl``
  functions (semantic identity by construction).  Optional: constructing
  it raises ``ImportError`` when numba is absent; the registry in
  :mod:`repro.kernels` turns that into a graceful fallback.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hashing.families import cw_fold_columns
from repro.kernels import _impl

_INT64_MAX = (1 << 63) - 1


def _as_int64(array: np.ndarray) -> np.ndarray:
    """Contiguous int64 view/copy of ``array`` for kernel consumption."""
    return np.ascontiguousarray(array, dtype=np.int64)


class KernelBackend:
    """One compute backend for the three compiled hot loops.

    Subclasses supply the four raw operations; results are bit-identical
    across backends (enforced by ``tests/kernels`` and the hypothesis
    equivalence suite).  ``accelerated`` distinguishes genuinely
    compiled backends from interpreted ones for metrics/bench stamping.
    """

    #: Registry name (``"python"`` / ``"numpy"`` / ``"numba"``).
    name: str = "abstract"
    #: True when the backend runs machine-compiled loops.
    accelerated: bool = False

    def membership_probe(
        self, ids: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Slot of each key in a filter id array, ``-1`` on a miss."""
        raise NotImplementedError

    def cm_update_weighted(
        self,
        table: np.ndarray,
        a_hi: np.ndarray,
        a_lo: np.ndarray,
        b_mod: np.ndarray,
        encoded: np.ndarray,
        amounts: np.ndarray,
    ) -> None:
        """Fused hash + scatter-add of (encoded key, amount) pairs."""
        raise NotImplementedError

    def cm_estimate(
        self,
        table: np.ndarray,
        a_hi: np.ndarray,
        a_lo: np.ndarray,
        b_mod: np.ndarray,
        encoded: np.ndarray,
    ) -> np.ndarray:
        """Fused hash + gather + row-minimum per encoded key."""
        raise NotImplementedError

    def exchange_candidates(
        self, estimates: np.ndarray, threshold: int
    ) -> np.ndarray:
        """Positions whose estimate exceeds ``threshold``, ascending."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name!r} accelerated={self.accelerated}>"


class _LoopBackend(KernelBackend):
    """Backend driving the shared ``_impl`` loop bodies.

    ``python`` uses the functions directly; ``numba`` swaps in their
    njit-compiled twins.  Everything else (allocation, trimming) is
    identical, which is exactly the semantic-identity argument.
    """

    def __init__(self, compile_fn: Callable | None = None) -> None:
        wrap = compile_fn if compile_fn is not None else (lambda fn: fn)
        self._membership_probe = wrap(_impl.membership_probe)
        self._cm_update_weighted = wrap(_impl.cm_update_weighted)
        self._cm_estimate = wrap(_impl.cm_estimate)
        self._exchange_candidates = wrap(_impl.exchange_candidates)

    def membership_probe(
        self, ids: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Loop-kernel membership probe (see ``_impl.membership_probe``)."""
        keys = _as_int64(keys)
        out = np.empty(keys.shape[0], dtype=np.int64)
        self._membership_probe(_as_int64(ids), keys, out)
        return out

    def cm_update_weighted(
        self, table, a_hi, a_lo, b_mod, encoded, amounts
    ) -> None:
        """Loop-kernel fused update (see ``_impl.cm_update_weighted``)."""
        self._cm_update_weighted(
            table, a_hi, a_lo, b_mod, _as_int64(encoded), _as_int64(amounts)
        )

    def cm_estimate(self, table, a_hi, a_lo, b_mod, encoded) -> np.ndarray:
        """Loop-kernel fused estimate (see ``_impl.cm_estimate``)."""
        encoded = _as_int64(encoded)
        out = np.empty(encoded.shape[0], dtype=np.int64)
        self._cm_estimate(table, a_hi, a_lo, b_mod, encoded, out)
        return out

    def exchange_candidates(
        self, estimates: np.ndarray, threshold: int
    ) -> np.ndarray:
        """Loop-kernel candidate filter (see ``_impl.exchange_candidates``)."""
        estimates = _as_int64(estimates)
        out = np.empty(estimates.shape[0], dtype=np.int64)
        count = self._exchange_candidates(estimates, int(threshold), out)
        return out[: int(count)]


class PythonBackend(_LoopBackend):
    """Interpreted reference execution of the shared loop bodies."""

    name = "python"
    accelerated = False

    def __init__(self) -> None:
        super().__init__(compile_fn=None)


class NumpyBackend(KernelBackend):
    """Vectorised NumPy reference backend (the default)."""

    name = "numpy"
    accelerated = False

    def membership_probe(
        self, ids: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Sorted-view ``searchsorted`` membership over occupied slots."""
        keys = _as_int64(keys)
        out = np.full(keys.shape[0], -1, dtype=np.int64)
        if keys.shape[0] == 0:
            return out
        ids = np.asarray(ids)
        occupied = np.flatnonzero(ids)
        if occupied.shape[0] == 0:
            return out
        stored = ids[occupied] - 1
        order = np.argsort(stored)
        sorted_keys = stored[order]
        slots = occupied[order]
        positions = np.searchsorted(sorted_keys, keys)
        positions = np.minimum(positions, sorted_keys.shape[0] - 1)
        mask = sorted_keys[positions] == keys
        out[mask] = slots[positions[mask]]
        return out

    def cm_update_weighted(
        self, table, a_hi, a_lo, b_mod, encoded, amounts
    ) -> None:
        """Per-row ``cw_fold_columns`` + ``np.add.at`` scatter."""
        encoded = _as_int64(encoded)
        amounts = _as_int64(amounts)
        width = table.shape[1]
        for row in range(table.shape[0]):
            columns = cw_fold_columns(
                int(a_hi[row]), int(a_lo[row]), int(b_mod[row]),
                encoded, width,
            )
            np.add.at(table[row], columns, amounts)

    def cm_estimate(self, table, a_hi, a_lo, b_mod, encoded) -> np.ndarray:
        """Per-row ``cw_fold_columns`` gather folded with ``np.minimum``."""
        encoded = _as_int64(encoded)
        width = table.shape[1]
        out = np.full(encoded.shape[0], _INT64_MAX, dtype=np.int64)
        for row in range(table.shape[0]):
            columns = cw_fold_columns(
                int(a_hi[row]), int(a_lo[row]), int(b_mod[row]),
                encoded, width,
            )
            np.minimum(out, table[row, columns], out=out)
        return out

    def exchange_candidates(
        self, estimates: np.ndarray, threshold: int
    ) -> np.ndarray:
        """``np.flatnonzero`` over the threshold comparison."""
        return np.flatnonzero(_as_int64(estimates) > int(threshold))


class NumbaBackend(_LoopBackend):
    """``numba.njit``-compiled execution of the shared loop bodies.

    Constructing the backend imports numba, compiles the four kernels
    (``cache=True`` so later processes reuse the on-disk cache) and
    warms each with a tiny call, so selection cost is paid once up
    front rather than mid-stream.  Raises ``ImportError`` when numba is
    not installed — the registry converts that into a fallback to
    ``numpy`` plus a warning metric.
    """

    name = "numba"
    accelerated = True

    def __init__(self) -> None:
        import numba

        super().__init__(
            compile_fn=numba.njit(cache=True, nogil=True, fastmath=False)
        )
        self._warmup()

    def _warmup(self) -> None:
        """Trigger compilation of every kernel with minimal inputs."""
        ids = np.array([2], dtype=np.int64)
        keys = np.array([1, -1], dtype=np.int64)
        self.membership_probe(ids, keys)
        table = np.zeros((1, 4), dtype=np.int64)
        row_param = np.array([1], dtype=np.int64)
        encoded = np.array([3], dtype=np.int64)
        self.cm_update_weighted(
            table, row_param, row_param, row_param, encoded,
            np.array([1], dtype=np.int64),
        )
        self.cm_estimate(table, row_param, row_param, row_param, encoded)
        self.exchange_candidates(np.array([5], dtype=np.int64), 1)
