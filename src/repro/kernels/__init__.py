"""Pluggable compute backends for the batch-path hot loops.

The paper's throughput rests on three inner loops: the SIMD filter
membership probe (Algorithm 3, §6.1), the Count-Min hash+scatter/gather,
and the per-distinct-key exchange check of Algorithm 1.  This package
compiles all three behind the existing batch API — callers
(:class:`~repro.core.asketch.ASketch`, the filters, Count-Min) dispatch
through :func:`active_backend` and never change their signatures.

Three backends register here (see :mod:`repro.kernels._backends`):

* ``numpy`` — vectorised reference, the **default**;
* ``python`` — portable loop bodies, the semantics reference the numba
  leg compiles;
* ``numba`` — optional ``njit``-compiled kernels.  Requesting it
  without numba installed *falls back* to ``numpy``, emits a
  ``RuntimeWarning`` and raises the ``kernels_backend_fallback`` metric
  instead of crashing.

Selection, in precedence order: :func:`set_backend` (the CLI's
``--backend`` flag calls this), the ``REPRO_BACKEND`` environment
variable, else the default.  Selection is process-global;
:class:`~repro.runtime.parallel.ParallelIngestRuntime` forwards the
parent's active backend name to its spawn workers so the whole fleet
computes identically.  All backends produce bit-identical states and
estimates — enforced by ``tests/kernels`` and the hypothesis
equivalence suite.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.kernels._backends import (
    KernelBackend,
    NumbaBackend,
    NumpyBackend,
    PythonBackend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_fallback_reason",
    "reset_backend",
    "set_backend",
    "stamp_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit selection was made.
ENV_VAR = "REPRO_BACKEND"

#: The reference backend every estimate is defined against.
DEFAULT_BACKEND = "numpy"

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {
    "python": PythonBackend,
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
}

_active: KernelBackend | None = None
_fallback_reason: str | None = None
_cache: dict[str, KernelBackend] = {}


def available_backends() -> list[str]:
    """Backend names usable in this process, sorted.

    ``numba`` is listed only when the package is importable; ``python``
    and ``numpy`` are always available.
    """
    names = ["numpy", "python"]
    if importlib.util.find_spec("numba") is not None:
        names.append("numba")
    return sorted(names)


def _instantiate(name: str) -> KernelBackend:
    if name not in _cache:
        _cache[name] = _FACTORIES[name]()
    return _cache[name]


def set_backend(name: str) -> KernelBackend:
    """Select the process-global kernel backend by name.

    Unknown names raise :class:`~repro.errors.ConfigurationError`.
    Requesting ``numba`` in an environment without numba falls back to
    ``numpy`` with a ``RuntimeWarning`` (and
    :func:`backend_fallback_reason` set) so a pinned-config deployment
    degrades instead of dying.  Returns the backend actually activated.
    """
    global _active, _fallback_reason
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; choose from "
            f"{sorted(_FACTORIES)}"
        )
    try:
        backend = _instantiate(name)
        _fallback_reason = None
    except ImportError as exc:
        reason = (
            f"kernel backend {name!r} unavailable ({exc}); "
            f"falling back to {DEFAULT_BACKEND!r}"
        )
        warnings.warn(reason, RuntimeWarning, stacklevel=2)
        backend = _instantiate(DEFAULT_BACKEND)
        _fallback_reason = reason
    _active = backend
    return backend


def active_backend() -> KernelBackend:
    """The currently selected backend, resolving ``REPRO_BACKEND`` once.

    First call without a prior :func:`set_backend` reads the
    environment variable (empty/unset means :data:`DEFAULT_BACKEND`);
    the resolution then sticks until :func:`set_backend` or
    :func:`reset_backend`.
    """
    global _active
    if _active is None:
        set_backend(os.environ.get(ENV_VAR, "") or DEFAULT_BACKEND)
        assert _active is not None
    return _active


def reset_backend() -> None:
    """Forget the current selection; the next call re-reads the env."""
    global _active, _fallback_reason
    _active = None
    _fallback_reason = None


def backend_fallback_reason() -> str | None:
    """Why the last selection fell back (None when it did not)."""
    return _fallback_reason


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Context manager: run a block under a specific backend.

    Restores the previous selection (including "unresolved") on exit;
    used by the equivalence tests and the ablation benches.
    """
    global _active, _fallback_reason
    previous = _active
    previous_reason = _fallback_reason
    try:
        yield set_backend(name)
    finally:
        _active = previous
        _fallback_reason = previous_reason


def stamp_backend(registry) -> None:
    """Record the active backend into a metrics registry.

    Sets ``kernels_backend_info{backend=<name>} = 1`` and the
    ``kernels_backend_fallback`` gauge (1 when the selection fell back,
    e.g. numba requested without numba installed) — the warning metric
    deployments alert on when a fleet silently loses its compiled leg.
    """
    backend = active_backend()
    registry.gauge("kernels_backend_info", backend=backend.name).set(1.0)
    registry.gauge("kernels_backend_fallback").set(
        1.0 if _fallback_reason is not None else 0.0
    )
