"""Frequency-estimation query workloads.

The paper's query workload samples query keys *uniformly from the incoming
stream*, i.e. in a skewed stream high-frequency items are queried
proportionally more often (§7.1, §7.2.1).  That is
:func:`frequency_weighted_queries`.  A uniform-over-domain workload is
also provided for the low-frequency-item error analyses (Appendix B.1
queries every item equally regardless of frequency).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import Stream


def frequency_weighted_queries(
    stream: Stream, n_queries: int, seed: int = 0
) -> np.ndarray:
    """Sample query keys uniformly from the stream's tuples.

    Each query key is drawn with probability proportional to its stream
    frequency — the paper's query model for Figures 5(b)/7 and Table 1.
    """
    if n_queries < 1:
        raise ConfigurationError(f"n_queries must be >= 1, got {n_queries}")
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(stream), size=n_queries)
    return stream.keys[positions]


def uniform_domain_queries(
    stream: Stream, n_queries: int, seed: int = 0
) -> np.ndarray:
    """Sample query keys uniformly from the stream's *distinct* keys.

    Used by the low-frequency-item analyses (Figure 16, Table 7) where
    every item must be weighted equally.
    """
    if n_queries < 1:
        raise ConfigurationError(f"n_queries must be >= 1, got {n_queries}")
    distinct = np.fromiter(
        (key for key, _ in stream.exact.items()), dtype=np.int64
    )
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, distinct.shape[0], size=n_queries)
    return distinct[positions]
