"""Query workload generation (paper §7.1 "Query and Parameters Setting")."""

from repro.queries.workload import (
    frequency_weighted_queries,
    uniform_domain_queries,
)

__all__ = ["frequency_weighted_queries", "uniform_domain_queries"]
