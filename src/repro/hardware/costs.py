"""Operation counting and the calibrated cycle cost model.

Every synopsis structure in this library increments an :class:`OpCounters`
record while it processes a stream.  :class:`CostModel` is the single place
where abstract operations are priced in CPU cycles; modeled throughput is

    ``items/ms = clock_hz / (cycles / items) / 1000``.

Calibration: the paper reports ~6 481 updates/ms for a 128KB Count-Min with
``w = 8`` on a 2.27 GHz Xeon L5520 (Table 1).  A Count-Min update costs one
loop iteration plus ``w`` (hash + L2 cell read-modify-write) pairs; the
default constants below price that at ~346 cycles/item, i.e. ~6 560
items/ms — within 2% of the paper.  All relative comparisons in the
reproduced figures come from operation-mix arithmetic on top of these
constants, which is exactly the analysis of the paper's Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum


class CacheLevel(Enum):
    """Cache level a synopsis of a given size resides in (Xeon L5520)."""

    REGISTER = "register"
    L1 = "L1"
    L2 = "L2"
    L3 = "L3"
    DRAM = "DRAM"


#: Cache capacities of the paper's evaluation machine (per core / shared).
CACHE_CAPACITY_BYTES = {
    CacheLevel.L1: 32 * 1024,
    CacheLevel.L2: 256 * 1024,
    CacheLevel.L3: 8 * 1024 * 1024,
}


def residency(synopsis_bytes: int) -> CacheLevel:
    """Smallest cache level that holds a synopsis of the given size."""
    if synopsis_bytes <= 512:
        return CacheLevel.REGISTER
    if synopsis_bytes <= CACHE_CAPACITY_BYTES[CacheLevel.L1]:
        return CacheLevel.L1
    if synopsis_bytes <= CACHE_CAPACITY_BYTES[CacheLevel.L2]:
        return CacheLevel.L2
    if synopsis_bytes <= CACHE_CAPACITY_BYTES[CacheLevel.L3]:
        return CacheLevel.L3
    return CacheLevel.DRAM


@dataclass
class OpCounters:
    """Abstract operation counts accumulated by a synopsis structure.

    Fields are plain integers bumped on the hot path; ``merge`` and
    ``snapshot`` support aggregation across structures (e.g. ASketch sums
    its filter's and sketch's counters).
    """

    #: Stream tuples (or queries) processed end to end.
    items: int = 0
    #: Filter lookups issued (one per item reaching the filter).
    filter_probes: int = 0
    #: 16-id SIMD blocks scanned across all probes (``ceil(n/16)`` each).
    filter_probe_blocks: int = 0
    #: Probes that hit, ending in the cheap aggregate-in-place path.
    filter_hits: int = 0
    #: Scalar id comparisons (non-SIMD filters / scalar ablation path).
    scalar_comparisons: int = 0
    #: Full linear scans to locate the minimum count (Vector filter).
    min_scans: int = 0
    #: Heap sift steps (levels moved) across all fix-ups.
    heap_fixup_levels: int = 0
    #: Hash function evaluations (sketch rows, FCM offset/gap, hash tables).
    hash_evals: int = 0
    #: Sketch cells written (update path).
    sketch_cell_writes: int = 0
    #: Sketch cells read (query path, and read-back during updates).
    sketch_cell_reads: int = 0
    #: Filter<->sketch exchanges executed.
    exchanges: int = 0
    #: Pointer dereferences (Stream-Summary bucket list, SS linked list).
    pointer_derefs: int = 0
    #: Hash-table operations (Stream-Summary / Space-Saving lookup maps).
    hashtable_ops: int = 0
    #: Items flushed from an aggregation table into the sketch (H-UDAF).
    flush_items: int = 0
    #: Misra-Gries counter operations (FCM's classifier).
    mg_ops: int = 0
    #: Cross-core messages (pipeline parallelism).
    messages: int = 0

    def merge(self, other: "OpCounters") -> None:
        """Add another record's counts into this one, field by field."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self) -> "OpCounters":
        """Return an independent copy of the current counts."""
        return OpCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "OpCounters") -> "OpCounters":
        """Counts accumulated since an earlier :meth:`snapshot`."""
        return OpCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        """Zero all counters in place."""
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass(frozen=True)
class CostModel:
    """Cycle prices for abstract operations, calibrated to the paper's CPU.

    The defaults reproduce the paper's Count-Min baseline throughput within
    a few percent (see module docstring).  Instances are immutable; derive
    variants with :func:`dataclasses.replace` for sensitivity studies.
    """

    clock_hz: float = 2.27e9
    #: Per-item loop overhead: stream read, branch, bookkeeping.
    cycles_per_item: float = 10.0
    #: One pairwise-independent hash evaluation (Carter-Wegman, 64-bit).
    cycles_per_hash: float = 22.0
    #: One 16-id SIMD probe block (4 cmp + 3 pack + movemask + loop).
    cycles_per_probe_block: float = 8.0
    #: One scalar id comparison (compare + branch).
    cycles_per_scalar_comparison: float = 3.0
    #: Full min-scan per id (compare + conditional move), charged per item.
    cycles_per_min_scan_element: float = 2.0
    #: One heap sift level (two compares, a swap, likely branch miss).
    cycles_per_heap_level: float = 12.0
    #: Sketch cell read-modify-write by residency of the sketch array.
    cycles_per_cell: dict[CacheLevel, float] = field(
        default_factory=lambda: {
            CacheLevel.REGISTER: 2.0,
            CacheLevel.L1: 8.0,
            CacheLevel.L2: 20.0,
            CacheLevel.L3: 45.0,
            CacheLevel.DRAM: 120.0,
        }
    )
    #: Filter <-> sketch exchange (slot rewrite + min re-track).
    cycles_per_exchange: float = 60.0
    #: Pointer dereference in a linked structure (dependent load, L1/L2 mix).
    cycles_per_pointer_deref: float = 12.0
    #: Hash-table op in a pointer-based map (hash + bucket chase).
    cycles_per_hashtable_op: float = 45.0
    #: Per item flushed from an aggregation table (copy + reinsert driver).
    cycles_per_flush_item: float = 15.0
    #: Misra-Gries counter op (lookup + amortised decrement sweeps; the
    #: paper calls the MG structure "a significant performance overhead"
    #: of the original FCM, §7.3).
    cycles_per_mg_op: float = 55.0
    #: Cross-core message via a shared queue (§6.2).
    cycles_per_message: float = 24.0

    def cycles(self, ops: OpCounters, synopsis_bytes: int) -> float:
        """Total modeled cycles for an operation record.

        ``synopsis_bytes`` sizes the *sketch array* (the dominant random
        access target) for the cache-residency term; filters are small
        enough to be charged at their own fixed per-op prices.
        """
        cell_cost = self.cycles_per_cell[residency(synopsis_bytes)]
        total = ops.items * self.cycles_per_item
        total += ops.filter_probe_blocks * self.cycles_per_probe_block
        total += ops.scalar_comparisons * self.cycles_per_scalar_comparison
        total += ops.min_scans * self.cycles_per_min_scan_element
        total += ops.heap_fixup_levels * self.cycles_per_heap_level
        total += ops.hash_evals * self.cycles_per_hash
        total += (ops.sketch_cell_writes + ops.sketch_cell_reads) * cell_cost
        total += ops.exchanges * self.cycles_per_exchange
        total += ops.pointer_derefs * self.cycles_per_pointer_deref
        total += ops.hashtable_ops * self.cycles_per_hashtable_op
        total += ops.flush_items * self.cycles_per_flush_item
        total += ops.mg_ops * self.cycles_per_mg_op
        total += ops.messages * self.cycles_per_message
        return total

    def cycles_per_processed_item(
        self, ops: OpCounters, synopsis_bytes: int
    ) -> float:
        """Average modeled cycles per processed item."""
        if ops.items == 0:
            return 0.0
        return self.cycles(ops, synopsis_bytes) / ops.items

    def throughput_items_per_ms(
        self, ops: OpCounters, synopsis_bytes: int
    ) -> float:
        """Modeled throughput in items (or queries) per millisecond."""
        per_item = self.cycles_per_processed_item(ops, synopsis_bytes)
        if per_item == 0.0:
            return 0.0
        return self.clock_hz / per_item / 1000.0
