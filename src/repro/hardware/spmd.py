"""SPMD (multi-kernel) scaling model (paper §6.3, Figure 13).

The paper parallelises ASketch by running one independent counting kernel
per core, each consuming its own stream; frequency estimation is
commutative, so a point query sums the per-kernel answers.  Kernels share
no synopsis state, so scaling is linear up to memory-system contention.
The evaluation machine for Figure 13 is a 4-socket, 32-core Sandy Bridge
at 2.40 GHz, explicitly *not* NUMA-optimised; its measured curves are
near-linear with a mild droop at high core counts.

We model per-core efficiency as ``1 / (1 + contention * (n - 1))`` — a
standard shared-resource interference form.  The default contention of
0.5% per extra core yields 86% efficiency at 32 cores, matching the mild
droop visible in the paper's figure while preserving the headline result
(near-linear scaling; ASketch ≈ 4x Count-Min at every core count).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.costs import CostModel, OpCounters


@dataclass(frozen=True)
class SpmdResult:
    """Modeled aggregate throughput of an n-core SPMD run."""

    cores: int
    single_core_items_per_ms: float
    aggregate_items_per_ms: float

    @property
    def efficiency(self) -> float:
        """Fraction of ideal linear scaling achieved."""
        ideal = self.single_core_items_per_ms * self.cores
        if ideal == 0:
            return 0.0
        return self.aggregate_items_per_ms / ideal


class SpmdModel:
    """Scale a single-kernel operation record across n cores.

    Parameters
    ----------
    cost_model:
        Cycle prices for the single-kernel run.  Figure 13 was measured on
        a 2.40 GHz machine, so the default model's clock is overridden.
    contention_per_core:
        Fractional slowdown contributed by each additional active core
        (shared last-level cache and memory channels).
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        contention_per_core: float = 0.005,
        clock_hz: float = 2.40e9,
    ) -> None:
        if contention_per_core < 0:
            raise ConfigurationError("contention_per_core must be >= 0")
        base = cost_model or CostModel()
        self.cost_model = replace(base, clock_hz=clock_hz)
        self.contention_per_core = contention_per_core

    def run(
        self, ops: OpCounters, synopsis_bytes: int, cores: int
    ) -> SpmdResult:
        """Aggregate throughput of ``cores`` kernels with the given op mix."""
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        single = self.cost_model.throughput_items_per_ms(ops, synopsis_bytes)
        efficiency = 1.0 / (1.0 + self.contention_per_core * (cores - 1))
        return SpmdResult(
            cores=cores,
            single_core_items_per_ms=single,
            aggregate_items_per_ms=single * cores * efficiency,
        )

    def sweep(
        self, ops: OpCounters, synopsis_bytes: int, core_counts: list[int]
    ) -> list[SpmdResult]:
        """Evaluate a list of core counts (Figure 13's x-axis)."""
        return [self.run(ops, synopsis_bytes, n) for n in core_counts]
