"""Event-driven two-core pipeline simulation (§6.2, at trace fidelity).

:class:`~repro.hardware.pipeline.PipelineSimulator` prices the §6.2
pipeline analytically — steady-state throughput is the slowest stage's
rate.  That abstraction ignores two second-order effects the real
deployment has:

* the *arrival pattern* of misses: bursts of consecutive misses queue up
  on the sketch core even when the average rates would balance;
* the *queue bound*: a full message queue back-pressures the filter
  core (C0 stalls until C1 drains a slot).

This module replays a measured per-item hit/miss trace (recorded by
``ASketch.record_misses``) through a discrete-event simulation of the
two cores with a bounded queue, and reports the finishing time.  With a
generous queue the result converges to the analytic model (a validation
test pins this); with a tiny queue the backpressure penalty becomes
visible — the knob a deployment would actually tune.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.costs import CostModel


@dataclass(frozen=True)
class EventPipelineResult:
    """Outcome of an event-driven pipeline replay."""

    #: Total simulated cycles until the last miss finished on C1.
    total_cycles: float
    #: Throughput over the whole trace, items per millisecond.
    throughput_items_per_ms: float
    #: Cycles C0 spent stalled on a full queue.
    stall_cycles: float
    #: Largest queue occupancy observed.
    max_queue_depth: int

    @property
    def stall_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles


class EventDrivenPipeline:
    """Replay a hit/miss trace through two cores and a bounded queue.

    Parameters
    ----------
    cost_model:
        Supplies the clock frequency for cycle->time conversion.
    hit_cycles:
        C0 cycles for a filter hit (probe + aggregate).
    miss_cycles:
        C0 cycles for a miss (probe + message send).
    sketch_cycles:
        C1 cycles per forwarded item (receive + w hash updates).
    queue_capacity:
        Bounded message-queue slots between the cores.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        *,
        hit_cycles: float,
        miss_cycles: float,
        sketch_cycles: float,
        queue_capacity: int = 64,
    ) -> None:
        if min(hit_cycles, miss_cycles, sketch_cycles) <= 0:
            raise ConfigurationError("per-stage cycle costs must be > 0")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.cost_model = cost_model or CostModel()
        self.hit_cycles = float(hit_cycles)
        self.miss_cycles = float(miss_cycles)
        self.sketch_cycles = float(sketch_cycles)
        self.queue_capacity = int(queue_capacity)

    def run(self, miss_trace: np.ndarray) -> EventPipelineResult:
        """Simulate the trace; returns timing and backpressure stats.

        The simulation tracks, per miss, when it was enqueued and when
        C1 finished it; C0 may only enqueue when a slot is free, i.e.
        when C1 has finished the miss ``queue_capacity`` places earlier.
        """
        trace = np.asarray(miss_trace, dtype=bool)
        n_items = int(trace.shape[0])
        if n_items == 0:
            return EventPipelineResult(0.0, 0.0, 0.0, 0)

        c0_time = 0.0      # C0's clock after its current item
        c1_free = 0.0      # C1's clock when it can take the next miss
        stall = 0.0
        # Finish times of queued/processed misses (for slot accounting).
        finish_times: list[float] = []
        max_depth = 0
        for is_miss in trace.tolist():
            if not is_miss:
                c0_time += self.hit_cycles
                continue
            # Slot check: the miss queue_capacity places back must have
            # been consumed by C1 before C0 can enqueue this one.
            if len(finish_times) >= self.queue_capacity:
                gate = finish_times[len(finish_times) - self.queue_capacity]
                if gate > c0_time:
                    stall += gate - c0_time
                    c0_time = gate
            c0_time += self.miss_cycles
            start = max(c1_free, c0_time)
            c1_free = start + self.sketch_cycles
            finish_times.append(c1_free)
            # Occupancy: enqueued misses whose service hasn't finished.
            # Finish times are nondecreasing, so a bisect locates the
            # still-pending suffix in O(log n).
            pending = len(finish_times) - bisect_right(finish_times, c0_time)
            depth = min(pending, self.queue_capacity)
            max_depth = max(max_depth, depth)

        total = max(c0_time, c1_free)
        throughput = (
            self.cost_model.clock_hz / (total / n_items) / 1000.0
            if total > 0
            else 0.0
        )
        return EventPipelineResult(
            total_cycles=total,
            throughput_items_per_ms=throughput,
            stall_cycles=stall,
            max_queue_depth=max_depth,
        )
