"""Hardware substrate: cost model, pipeline and SPMD parallel simulators.

The paper's throughput results (Figures 5, 10, 12, 13, 14, 15a and Table 1)
were measured on a 2.27 GHz Xeon L5520 running hand-tuned C with SSE2
intrinsics.  Absolute items/ms are not reproducible from Python, so this
package provides the machinery for *modeled* throughput:

* every data structure in the library counts its abstract operations into an
  :class:`~repro.hardware.costs.OpCounters` record (hash evaluations, SIMD
  probe blocks, sketch cells touched, heap fix-ups, pointer dereferences,
  exchanges, ...);
* :class:`~repro.hardware.costs.CostModel` converts an operation record into
  cycles using per-operation costs with a cache-residency term, calibrated
  so that the Count-Min baseline lands near the paper's reported
  ~6 500 items/ms;
* :class:`~repro.hardware.pipeline.PipelineSimulator` models the two-core
  filter/sketch decomposition of §6.2 (Figure 12);
* :class:`~repro.hardware.spmd.SpmdModel` models the multi-kernel SPMD
  scaling of §6.3 (Figure 13).

Wall-clock Python throughput is additionally measured by the pytest-benchmark
suite; the experiments report both.
"""

from repro.hardware.cache import CacheStats, SetAssociativeCache, simulate_sketch_hit_ratios
from repro.hardware.costs import CacheLevel, CostModel, OpCounters
from repro.hardware.event_pipeline import EventDrivenPipeline, EventPipelineResult
from repro.hardware.pipeline import PipelineResult, PipelineSimulator
from repro.hardware.spmd import SpmdModel, SpmdResult

__all__ = [
    "CacheLevel",
    "CacheStats",
    "CostModel",
    "EventDrivenPipeline",
    "EventPipelineResult",
    "OpCounters",
    "PipelineResult",
    "PipelineSimulator",
    "SetAssociativeCache",
    "SpmdModel",
    "SpmdResult",
    "simulate_sketch_hit_ratios",
]
