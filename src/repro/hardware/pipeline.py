"""Two-core pipeline parallelism model (paper §6.2, Figure 12).

In the paper's pipelined ASketch, core C0 runs the filter and core C1 runs
the sketch; filter misses are forwarded to C1 over a message queue, and C1
occasionally sends an item back when the exchange condition triggers.  The
pipeline's steady-state throughput is governed by its slowest stage:

    ``throughput = 1 / max(cycles_per_item(C0), cycles_per_item(C1))``

where C1's per-*input-item* cost is its per-miss cost scaled by the filter
miss rate (the filter selectivity, ``N2/N``).  At high skew almost nothing
overflows the filter, C1 idles, and the pipeline degenerates to C0's cost —
reproducing the diminishing advantage above skew ~2.4 that Figure 12 shows.

The model consumes the exact operation counts of a sequential run (so the
selectivity and exchange counts are measured, not assumed) and re-prices
them onto two cores plus message costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.costs import CostModel, OpCounters


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of a pipeline model evaluation."""

    #: Modeled pipelined throughput, items per millisecond.
    throughput_items_per_ms: float
    #: Modeled sequential (single core) throughput for the same run.
    sequential_items_per_ms: float
    #: Cycles per input item on the filter core C0 (including messaging).
    stage0_cycles_per_item: float
    #: Cycles per input item on the sketch core C1 (miss-rate scaled).
    stage1_cycles_per_item: float
    #: Which stage bounds throughput: "filter" or "sketch".
    bottleneck: str

    @property
    def speedup(self) -> float:
        """Pipeline throughput relative to the sequential execution."""
        if self.sequential_items_per_ms == 0:
            return 0.0
        return self.throughput_items_per_ms / self.sequential_items_per_ms


class PipelineSimulator:
    """Price a measured two-stage operation split onto two cores.

    Parameters
    ----------
    cost_model:
        Cycle prices shared with the sequential model.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()

    def run(
        self,
        stage0_ops: OpCounters,
        stage1_ops: OpCounters,
        n_items: int,
        forwarded_items: int,
        returned_items: int,
        sketch_bytes: int,
        filter_bytes: int = 512,
    ) -> PipelineResult:
        """Evaluate the pipeline for one measured run.

        Parameters
        ----------
        stage0_ops:
            Operations executed by the filter stage (probes, hits, heap
            maintenance, per-item loop overhead).
        stage1_ops:
            Operations executed by the sketch stage (hashes, cell writes,
            exchange bookkeeping).
        n_items:
            Total stream tuples consumed by stage 0.
        forwarded_items:
            Filter misses forwarded C0 -> C1 (each costs one message on
            both sides).
        returned_items:
            Exchange-triggered items returned C1 -> C0.
        sketch_bytes:
            Size of the sketch array (cache-residency of stage 1).
        filter_bytes:
            Size of the filter state (cache-residency of stage 0); the
            paper notes the decoupled filter may even fit in registers.
        """
        model = self.cost_model
        messages = forwarded_items + returned_items
        stage0_cycles = model.cycles(stage0_ops, filter_bytes)
        stage0_cycles += messages * model.cycles_per_message
        stage1_cycles = model.cycles(stage1_ops, sketch_bytes)
        stage1_cycles += messages * model.cycles_per_message

        if n_items <= 0:
            return PipelineResult(0.0, 0.0, 0.0, 0.0, "filter")

        stage0_per_item = stage0_cycles / n_items
        stage1_per_item = stage1_cycles / n_items
        bound = max(stage0_per_item, stage1_per_item)
        bottleneck = "filter" if stage0_per_item >= stage1_per_item else "sketch"
        throughput = model.clock_hz / bound / 1000.0

        sequential_ops = stage0_ops.snapshot()
        sequential_ops.merge(stage1_ops)
        sequential = model.throughput_items_per_ms(sequential_ops, sketch_bytes)
        return PipelineResult(
            throughput_items_per_ms=throughput,
            sequential_items_per_ms=sequential,
            stage0_cycles_per_item=stage0_per_item,
            stage1_cycles_per_item=stage1_per_item,
            bottleneck=bottleneck,
        )
