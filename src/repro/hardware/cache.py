"""Set-associative cache simulation for sketch access patterns.

The cost model (:mod:`repro.hardware.costs`) charges sketch cell traffic
a *static* per-access cost chosen by which cache level the whole synopsis
fits into.  That is the paper's own framing ("Our main focus is to
operate from either the L1 or the L2 cache", §7.1) — but it is an
assumption, and this module lets the reproduction *check* it: an LRU
set-associative cache simulator is driven with the actual cell addresses
a synopsis touches, yielding measured hit ratios per level.

``bench_ablation_cache.py`` uses it to validate the static-residency
assumption: for a 128KB sketch the simulated L2 hit ratio is near 1 and
the L1 ratio is poor (compulsory + capacity misses over 4096-column
rows), while the ASketch filter's handful of hot lines are L1/register
resident — exactly the split the cost model's constants encode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheStats:
    """Access statistics of one simulated cache."""

    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity.
    line_bytes:
        Cache-line size (64 on the paper's Xeon).
    ways:
        Associativity (8 for the L5520's L1D and L2).
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache parameters must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways:
            raise ConfigurationError(
                "cache too small for the requested associativity"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.n_sets = n_lines // ways
        # Per set: tags ordered most-recent first (LRU at the end).
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._accesses = 0
        self._hits = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on a cache hit."""
        line = address // self.line_bytes
        set_index = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_index]
        self._accesses += 1
        try:
            position = ways.index(tag)
        except ValueError:
            ways.insert(0, tag)
            if len(ways) > self.ways:
                ways.pop()
            return False
        ways.pop(position)
        ways.insert(0, tag)
        self._hits += 1
        return True

    def access_many(self, addresses: np.ndarray) -> None:
        """Touch a sequence of byte addresses in order."""
        for address in addresses.tolist():
            self.access(int(address))

    @property
    def stats(self) -> CacheStats:
        return CacheStats(accesses=self._accesses, hits=self._hits)

    def reset_stats(self) -> None:
        self._accesses = 0
        self._hits = 0


def sketch_access_trace(
    sketch, keys: np.ndarray, cell_bytes: int = 4
) -> np.ndarray:
    """Byte addresses a Count-Min touches while ingesting ``keys``.

    One address per (row, column) cell access, in stream order; rows are
    laid out contiguously as in the 2-D array of the paper's Figure 2.
    """
    columns = sketch.hash_columns_batch(keys)  # (w, n)
    row_width = sketch.row_width
    n = columns.shape[1]
    addresses = np.empty(columns.shape[0] * n, dtype=np.int64)
    for row in range(columns.shape[0]):
        addresses[row::columns.shape[0]] = (
            (row * row_width + columns[row]) * cell_bytes
        )
    return addresses


def simulate_sketch_hit_ratios(
    sketch,
    keys: np.ndarray,
    cache_sizes: dict[str, int],
    line_bytes: int = 64,
    ways: int = 8,
) -> dict[str, CacheStats]:
    """Run a sketch's access trace through one cache per named size."""
    trace = sketch_access_trace(sketch, keys)
    results = {}
    for name, capacity in cache_sizes.items():
        cache = SetAssociativeCache(capacity, line_bytes, ways)
        cache.access_many(trace)
        results[name] = cache.stats
    return results
