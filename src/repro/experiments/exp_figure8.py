"""Figure 8: ASketch-FCM vs FCM observed error.

The generality claim: swapping Count-Min for an FCM-style sketch under
the same filter yields the same kind of improvement — the paper reads a
13x gap at skew 1.6.  FCM alone is already more accurate than Count-Min,
so this isolates the filter's contribution from the backend's.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    accuracy_on_queries,
    build_method,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.8, 1.81, 0.2)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        queries = query_set(stream, config)
        fcm = build_method("fcm", config)
        fcm.process_stream(stream.keys)
        fcm_error = accuracy_on_queries(fcm, stream, queries)
        asketch_fcm = build_method("asketch-fcm", config)
        asketch_fcm.process_stream(stream.keys)
        asketch_error = accuracy_on_queries(asketch_fcm, stream, queries)
        rows.append(
            {
                "skew": skew,
                "FCM err (%)": fcm_error,
                "ASketch-FCM err (%)": asketch_error,
            }
        )
    return ExperimentResult(
        experiment_id="figure8",
        title=(
            "Observed error: ASketch over an FCM backend vs plain FCM, "
            f"{config.synopsis_bytes // 1024}KB"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: ASketch-FCM below FCM at every skew, the gap "
            "widening with skew (paper: ~13x at skew 1.6).",
        ],
    )
