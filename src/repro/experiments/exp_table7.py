"""Table 7 (Appendix B.1): average accumulative error of the 10 worst items.

The complement of Figure 16: instead of the average tail error, look at
the ten items with the *highest absolute* error (true minus estimated)
under each synopsis and average those.  The paper finds Count-Min and
ASketch essentially tied at every skew (e.g. 8013 vs 8088 at skew 0.8 on
the 32M stream) — ASketch does not concentrate error in a few victims.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

TOP_ERRORS = 10


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.8, 1.81, 0.2)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        pairs = stream.exact.items()
        keys = np.fromiter((key for key, _ in pairs), dtype=np.int64)
        truths = np.fromiter((count for _, count in pairs), dtype=np.int64)

        count_min = build_method("count-min", config)
        count_min.process_stream(stream.keys)
        cms_top = _mean_top_error(count_min, keys, truths)

        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        asketch_top = _mean_top_error(asketch, keys, truths)
        rows.append(
            {
                "skew": skew,
                "Count-Min avg top-10 error": cms_top,
                "ASketch avg top-10 error": asketch_top,
            }
        )
    return ExperimentResult(
        experiment_id="table7",
        title=(
            f"Average accumulative error over the {TOP_ERRORS} "
            "highest-error items"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: the two columns are nearly equal at every "
            "skew, both shrinking as skew grows (paper: 8013 vs 8088 at "
            "0.8 down to 156 vs 122 at 1.8 on the 32M stream).",
        ],
    )


def _mean_top_error(method, keys: np.ndarray, truths: np.ndarray) -> float:
    estimates = np.asarray(method.estimate_batch(keys), dtype=np.int64)
    errors = np.abs(estimates - truths)
    worst = np.sort(errors)[-TOP_ERRORS:]
    return float(worst.mean())
