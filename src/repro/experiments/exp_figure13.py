"""Figure 13: SPMD counting-kernel scaling, 1-32 cores.

The paper runs one independent kernel per core (each consuming its own
stream) on a 32-core, 2.40 GHz Sandy Bridge: both ASketch and Count-Min
scale near-linearly, with ASketch ~4x Count-Min at every core count
(Zipf 1.5).  Here the single-kernel operation mix is measured once and
scaled by the SPMD contention model (DESIGN.md substitution 5).
"""

from __future__ import annotations

from repro.experiments.common import (
    build_method,
    measure_update_phase,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.hardware.spmd import SpmdModel

SKEW = 1.5
CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = sweep_stream(config, SKEW)
    model = SpmdModel()

    asketch = build_method("asketch", config)
    asketch_phase = measure_update_phase(asketch, stream.keys)
    count_min = build_method("count-min", config)
    cms_phase = measure_update_phase(count_min, stream.keys)

    rows = []
    for cores in CORE_COUNTS:
        asketch_result = model.run(
            asketch_phase.ops, asketch.sketch.size_bytes, cores
        )
        cms_result = model.run(cms_phase.ops, count_min.size_bytes, cores)
        rows.append(
            {
                "cores": cores,
                "ASketch items/ms": asketch_result.aggregate_items_per_ms,
                "Count-Min items/ms": cms_result.aggregate_items_per_ms,
                "ASketch/CMS ratio": (
                    asketch_result.aggregate_items_per_ms
                    / cms_result.aggregate_items_per_ms
                ),
                "scaling efficiency": asketch_result.efficiency,
            }
        )
    return ExperimentResult(
        experiment_id="figure13",
        title=(
            f"SPMD kernel scaling at Zipf {SKEW} "
            "(2.40 GHz clock, per-core streams)"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: near-linear scaling for both kernels; "
            "ASketch ~4x Count-Min at every core count (paper reads ~4x "
            "at 32 cores).",
        ],
    )
