"""Run experiments by id and render their results as text tables."""

from __future__ import annotations

from typing import Any

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import get_experiment
from repro.experiments.result import ExperimentResult


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Execute one registered experiment under a configuration."""
    run = get_experiment(experiment_id)
    return run(config or ExperimentConfig())


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """Render a result as an aligned text table with title and notes."""
    header = result.columns
    body = [[_format_cell(row[column]) for column in header]
            for row in result.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append(
        "  ".join(name.ljust(widths[i]) for i, name in enumerate(header))
    )
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line))
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
