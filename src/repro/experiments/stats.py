"""Multi-seed replication statistics for experiment results.

The paper averages each experimental result over 100 runs (§7.1).  This
module provides the replication machinery: run an experiment under ``n``
different seeds and aggregate any numeric column into mean / standard
deviation / min / max per row — the error bars a careful reproduction
reports alongside point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import run_experiment


@dataclass(frozen=True)
class ColumnSummary:
    """Replication statistics of one numeric cell across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    replicates: int


def run_replicates(
    experiment_id: str,
    config: ExperimentConfig,
    n_replicates: int,
) -> list[ExperimentResult]:
    """Run one experiment under ``n_replicates`` derived seeds."""
    if n_replicates < 1:
        raise ConfigurationError(
            f"n_replicates must be >= 1, got {n_replicates}"
        )
    results = []
    for replicate in range(n_replicates):
        seeded = replace(config, seed=config.seed + 1000 * (replicate + 1))
        results.append(run_experiment(experiment_id, seeded))
    return results


def summarize_column(
    results: list[ExperimentResult],
    key_column: str,
    value_column: str,
) -> dict[object, ColumnSummary]:
    """Aggregate one numeric column across replicate results.

    Rows are matched across replicates by their ``key_column`` value
    (e.g. ``"skew"`` or ``"method"``); every replicate must contain the
    same key set.
    """
    if not results:
        raise ConfigurationError("summarize_column needs >= 1 result")
    keys = [row[key_column] for row in results[0].rows]
    summaries: dict[object, ColumnSummary] = {}
    for key in keys:
        values = np.array(
            [
                float(result.row_for(key_column, key)[value_column])
                for result in results
            ]
        )
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            finite = values
        summaries[key] = ColumnSummary(
            mean=float(finite.mean()),
            std=float(finite.std(ddof=1)) if finite.size > 1 else 0.0,
            minimum=float(finite.min()),
            maximum=float(finite.max()),
            replicates=int(finite.size),
        )
    return summaries


def replication_table(
    experiment_id: str,
    config: ExperimentConfig,
    n_replicates: int,
    key_column: str,
    value_column: str,
) -> ExperimentResult:
    """One-call replication: run, aggregate, and wrap as a result table."""
    results = run_replicates(experiment_id, config, n_replicates)
    summaries = summarize_column(results, key_column, value_column)
    rows = [
        {
            key_column: key,
            f"{value_column} (mean)": summary.mean,
            f"{value_column} (std)": summary.std,
            f"{value_column} (min)": summary.minimum,
            f"{value_column} (max)": summary.maximum,
        }
        for key, summary in summaries.items()
    ]
    return ExperimentResult(
        experiment_id=f"{experiment_id}-replicated",
        title=(
            f"{experiment_id}: {value_column} over {n_replicates} seeds"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[f"replicates aggregate {value_column} by {key_column}"],
    )
