"""Shared machinery for the experiment modules.

Provides the method factory (one name per comparison point in the paper),
phase measurement (wall-clock and operation-record deltas for the update
and query phases), modeled-throughput evaluation, and a small stream
cache so sweep experiments do not regenerate identical streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.hardware.costs import CostModel, OpCounters
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.streams.base import Stream
from repro.synopses.spec import build_synopsis
from repro.streams.ip_trace import ip_trace_stream
from repro.streams.kosarak import kosarak_stream
from repro.streams.zipf import zipf_stream

#: Display names used in result rows, keyed by method id.
METHOD_LABELS = {
    "count-min": "Count-Min",
    "fcm": "FCM",
    "holistic-udaf": "Holistic UDAFs",
    "asketch": "ASketch",
    "asketch-fcm": "ASketch-FCM",
    "space-saving-min": "Space Saving(min)",
    "space-saving-zero": "Space Saving",
    "sf-sketch": "SF-sketch",
    "salsa-cm": "SALSA",
    "asketch-sf": "ASketch-SF",
    "asketch-salsa": "ASketch-SALSA",
}


def build_method(name: str, config: ExperimentConfig, seed: int = 0):
    """Instantiate a comparison method at the configured synopsis budget.

    A thin veneer over the spec path: the config names the parameters
    (:meth:`ExperimentConfig.spec_for`), the registry builds the object.
    """
    return build_synopsis(config.spec_for(name, seed=seed))


def total_ops(method) -> OpCounters:
    """Merged operation record of a method and its internal structures."""
    if isinstance(method, ASketch):
        return method.combined_ops()
    ops = method.ops.snapshot()
    internal_sketch = getattr(method, "sketch", None)
    if internal_sketch is not None:
        ops.merge(internal_sketch.ops)
    return ops


def sketch_bytes_of(method) -> int:
    """Byte size of the method's dominant random-access array.

    Drives the cache-residency term: for ASketch and Holistic UDAFs that
    is the inner sketch; for the others the structure itself.
    """
    internal_sketch = getattr(method, "sketch", None)
    if internal_sketch is not None:
        return internal_sketch.size_bytes
    return method.size_bytes


@dataclass(frozen=True)
class PhaseMeasurement:
    """Wall-clock and operation deltas for one processing phase."""

    ops: OpCounters
    wall_seconds: float
    n_items: int

    @property
    def wall_throughput_items_per_ms(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_items / self.wall_seconds / 1000.0


def measure_update_phase(method, keys: np.ndarray) -> PhaseMeasurement:
    """Ingest ``keys`` and capture the phase's operation delta."""
    before = total_ops(method)
    start = time.perf_counter()
    method.process_stream(keys)
    elapsed = time.perf_counter() - start
    phase = total_ops(method).diff(before)
    phase.items = len(keys)  # one driver loop iteration per tuple
    return PhaseMeasurement(ops=phase, wall_seconds=elapsed, n_items=len(keys))


def measure_query_phase(
    method, queries: np.ndarray
) -> tuple[PhaseMeasurement, list[int]]:
    """Answer ``queries`` and capture the phase's operation delta."""
    before = total_ops(method)
    start = time.perf_counter()
    estimates = method.estimate_batch(queries)
    elapsed = time.perf_counter() - start
    phase = total_ops(method).diff(before)
    phase.items = len(queries)
    return (
        PhaseMeasurement(
            ops=phase, wall_seconds=elapsed, n_items=len(queries)
        ),
        estimates,
    )


def modeled_throughput(
    measurement: PhaseMeasurement, method, model: CostModel | None = None
) -> float:
    """Modeled items/ms for a measured phase (see DESIGN.md sub. 1)."""
    model = model or CostModel()
    return model.throughput_items_per_ms(
        measurement.ops, sketch_bytes_of(method)
    )


def accuracy_on_queries(method, stream: Stream, queries: np.ndarray) -> float:
    """Observed error (%) of a processed method on a query set."""
    estimates = method.estimate_batch(queries)
    truths = [stream.exact.count_of(int(key)) for key in queries]
    return observed_error_percent(estimates, truths)


# -- stream cache ----------------------------------------------------------

@lru_cache(maxsize=48)
def _cached_zipf(
    stream_size: int, n_distinct: int, skew: float, seed: int
) -> Stream:
    return zipf_stream(stream_size, n_distinct, skew, seed=seed)


def sweep_stream(config: ExperimentConfig, skew: float, seed: int = 0) -> Stream:
    """Cached Zipf stream at the sweep size for a given skew."""
    return _cached_zipf(
        config.sweep_stream_size, config.sweep_distinct, float(skew),
        config.seed + seed,
    )


def full_stream(config: ExperimentConfig, skew: float, seed: int = 0) -> Stream:
    """Cached Zipf stream at the full configured size."""
    return _cached_zipf(
        config.stream_size, config.distinct, float(skew), config.seed + seed
    )


@lru_cache(maxsize=4)
def _cached_real(name: str, stream_size: int, seed: int) -> Stream:
    if name == "ip-trace":
        return ip_trace_stream(stream_size=stream_size, seed=seed)
    if name == "kosarak":
        return kosarak_stream(stream_size=stream_size, seed=seed)
    raise ConfigurationError(f"unknown real dataset {name!r}")


def real_stream(config: ExperimentConfig, name: str) -> Stream:
    """Cached real-data surrogate scaled by the config."""
    return _cached_real(name, config.stream_size, config.seed + 17)


def query_set(
    stream: Stream, config: ExperimentConfig, seed: int = 0
) -> np.ndarray:
    """The paper's frequency-weighted query workload for a stream."""
    return frequency_weighted_queries(
        stream, config.queries, seed=config.seed + 101 + seed
    )
