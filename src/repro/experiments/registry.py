"""Registry mapping paper artefact ids to experiment modules."""

from __future__ import annotations

import importlib
from typing import Callable

from repro.errors import UnknownExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

#: artefact id -> (module name under repro.experiments, short description)
_EXPERIMENTS: dict[str, tuple[str, str]] = {
    "table1": ("exp_table1", "Headline comparison: throughput & error, Zipf 1.5"),
    "table2": ("exp_table2", "Analytic Count-Min vs ASketch comparison"),
    "figure3": ("exp_figure3", "Filter selectivity vs skew for |F| in {8,32,64,128}"),
    "table3": ("exp_table3", "Misclassification counts vs Count-Min size"),
    "figure5": ("exp_figure5", "Stream & query throughput vs skew (4 methods)"),
    "figure6": ("exp_figure6", "Relative error of misclassified items"),
    "figure7": ("exp_figure7", "Observed error vs skew: ASketch/CMS/H-UDAF"),
    "table4": ("exp_table4", "Observed-error improvement factors (64KB/128KB)"),
    "figure8": ("exp_figure8", "ASketch-FCM vs FCM observed error"),
    "table5": ("exp_table5", "Precision-at-k of ASketch top-k"),
    "figure9": ("exp_figure9", "Exchange count vs skew"),
    "figure10": ("exp_figure10", "Real-data throughput & error (IP-trace, Kosarak)"),
    "figure11": ("exp_figure11", "Space Saving comparison on Kosarak"),
    "figure12": ("exp_figure12", "Pipeline parallelism throughput vs skew"),
    "figure13": ("exp_figure13", "SPMD scaling, 1-32 cores"),
    "figure14": ("exp_figure14", "Filter implementations: throughput vs skew"),
    "table6": ("exp_table6", "Filter implementations: accuracy"),
    "figure15": ("exp_figure15", "Filter-size sensitivity: throughput & error"),
    "figure16": ("exp_figure16", "Low-frequency-item relative error"),
    "table7": ("exp_table7", "Top-10 accumulative-error items"),
    "figure17": ("exp_figure17", "Predicted vs achieved filter selectivity"),
}


def experiment_ids() -> list[str]:
    """All registered artefact ids, tables first then figures."""
    return sorted(
        _EXPERIMENTS,
        key=lambda exp_id: (exp_id.rstrip("0123456789"),
                            int(exp_id.lstrip("tablefigure"))),
    )


def describe(experiment_id: str) -> str:
    """Short description of a registered experiment."""
    _, description = _require(experiment_id)
    return description


def get_experiment(
    experiment_id: str,
) -> Callable[[ExperimentConfig], ExperimentResult]:
    """Resolve an artefact id to its ``run`` callable (lazy import)."""
    module_name, _ = _require(experiment_id)
    module = importlib.import_module(f"repro.experiments.{module_name}")
    return module.run


def _require(experiment_id: str) -> tuple[str, str]:
    try:
        return _EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(experiment_ids())}"
        ) from None
