"""Figure 14: stream throughput of the four filter implementations.

Paper shape (128KB ASketch, 0.4KB filter): the heaps lead for skew < 2
(Relaxed above Strict — less maintenance); Vector wins above skew ~2
(no structure to maintain, and the expensive min-scan on the miss path
is rarely taken); Stream-Summary trails everywhere on pointer-chasing
costs, though its O(1) min keeps it above Vector at low skew.
"""

from __future__ import annotations

import numpy as np

from repro.core.asketch import ASketch
from repro.experiments.common import (
    measure_update_phase,
    modeled_throughput,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

FILTER_KINDS = ("relaxed-heap", "strict-heap", "stream-summary", "vector")
FILTER_BUDGET_BYTES = 32 * 12  # 0.4KB, as in the paper


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        row: dict[str, object] = {"skew": skew}
        for kind in FILTER_KINDS:
            capacity = _capacity_for(kind)
            asketch = ASketch(
                total_bytes=config.synopsis_bytes,
                filter_items=capacity,
                filter_kind=kind,
                num_hashes=config.num_hashes,
                seed=config.seed,
            )
            phase = measure_update_phase(asketch, stream.keys)
            row[f"{kind} items/ms"] = modeled_throughput(phase, asketch)
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure14",
        title=(
            "Stream throughput by filter implementation "
            f"(filter budget {FILTER_BUDGET_BYTES} bytes)"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Same byte budget per filter: the array filters hold 32 "
            "items, Stream-Summary only 4 (100 bytes/slot).",
            "Expected shape: Relaxed-Heap best for skew < 2, Vector best "
            "above ~2, Stream-Summary trailing throughout.",
        ],
    )


def _capacity_for(kind: str) -> int:
    from repro.core.filters.factory import FILTER_KINDS as REGISTRY

    return REGISTRY[kind].capacity_for_bytes(FILTER_BUDGET_BYTES)
