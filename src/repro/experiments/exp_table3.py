"""Table 3: misclassified low-frequency items vs Count-Min size.

Paper (Zipf 1.5, max over 100 runs): 16KB -> 27 misclassified items,
24KB -> 5, 32KB -> 8; ASketch -> none in any run.  The reproduced shape:
small Count-Min synopses misclassify a handful-to-hundreds of light
items as heavy hitters, the count falling steeply with synopsis size,
while ASketch stays at zero because heavy items never share sketch
cells with the light ones.

Size scaling: misclassification pressure is governed by the light-item
collision mass per cell relative to the heavy threshold, which shrinks
with the distinct-item count.  At this reproduction's default 100K-item
domain (vs the paper's 8M) the paper's 16-32KB band is collision-free,
so the sweep uses the scale-equivalent 3-4KB band — which reproduces
the paper's counts-falling-with-size shape and its ASketch-is-clean
contrast exactly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import build_method, full_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.misclassification import find_misclassified

SKEW = 1.5
SYNOPSIS_SIZES_KB = (3, 3.5, 4)
PAPER_SIZES_KB = (16, 24, 32)


def run(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for size_kb in SYNOPSIS_SIZES_KB:
        sized = replace(config, synopsis_bytes=int(size_kb * 1024))
        max_cms = 0
        max_asketch = 0
        for run_index in range(config.runs):
            stream = full_stream(sized, SKEW, seed=run_index)
            count_min = build_method("count-min", sized, seed=run_index)
            count_min.process_stream(stream.keys)
            cms_bad = find_misclassified(
                count_min, stream.exact, heavy_k=sized.filter_items
            )
            max_cms = max(max_cms, len(cms_bad))

            asketch = build_method("asketch", sized, seed=run_index)
            asketch.process_stream(stream.keys)
            as_bad = find_misclassified(
                asketch, stream.exact, heavy_k=sized.filter_items
            )
            max_asketch = max(max_asketch, len(as_bad))
        rows.append(
            {
                "synopsis size": f"{size_kb}KB",
                "max misclassifications (Count-Min)": max_cms,
                "max misclassifications (ASketch)": max_asketch,
            }
        )
    return ExperimentResult(
        experiment_id="table3",
        title=(
            f"Misclassification statistics, Zipf {SKEW}, "
            f"max over {config.runs} runs"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper (max over 100 runs, 8M-item domain, 16/24/32KB): "
            "27/5/8 for Count-Min; zero for ASketch in every run.",
            f"Sizes here are the scale-equivalent {SYNOPSIS_SIZES_KB} KB "
            f"band for this domain (see module docstring); the paper's "
            f"{PAPER_SIZES_KB} KB band is collision-free at reduced "
            "scale.",
        ],
    )
