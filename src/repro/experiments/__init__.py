"""Experiment harness regenerating every table and figure of the paper.

Each experiment is a module exposing ``run(config) -> ExperimentResult``
and registered in :mod:`repro.experiments.registry` under the paper's
artefact id (``table1`` ... ``table7``, ``figure3`` ... ``figure17``).
``repro-asketch run <id>`` (or ``python -m repro.cli run <id>``) prints
the reproduced rows; the pytest-benchmark suite under ``benchmarks/``
wraps the same modules.

Scaling: the paper's streams (32M-461M tuples) are scaled down through
:class:`~repro.experiments.config.ExperimentConfig` (see DESIGN.md,
substitution 6); absolute error magnitudes shrink with stream size but
every between-method comparison is scale-stable.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import format_result, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "experiment_ids",
    "format_result",
    "get_experiment",
    "run_experiment",
]
