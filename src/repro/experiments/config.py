"""Experiment configuration: sizes, scale factor, shared parameters.

The paper's settings (§7.1): synopsis 16KB-128KB (most experiments at
128KB), ``w = 8`` hash rows, Relaxed-Heap filter of 32 items (~0.4KB),
synthetic streams of 32M tuples over 8M distinct items (4:1 ratio).

The default configuration keeps every *structural* parameter (synopsis
bytes, ``w``, filter size) at the paper's values and scales only the
stream: 400K tuples over 100K distinct items, the same 4:1 ratio.  The
``scale`` knob multiplies stream lengths (and the distinct domain) for
heavier or lighter runs; sweep experiments additionally halve the stream
to keep the full suite tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment modules."""

    #: Multiplies every stream length (and the distinct domain with it).
    scale: float = 1.0
    #: Base synthetic stream length at scale 1.0.
    base_stream_size: int = 400_000
    #: Base distinct-domain size at scale 1.0 (the paper's 4:1 ratio).
    base_distinct: int = 100_000
    #: Total synopsis budget (paper default 128KB).
    synopsis_bytes: int = 128 * 1024
    #: Number of sketch rows ``w`` (paper fixes 8).
    num_hashes: int = 8
    #: ASketch filter capacity in items (paper default 32, ~0.4KB).
    filter_items: int = 32
    #: ASketch filter implementation (paper's default comparator).
    filter_kind: str = "relaxed-heap"
    #: Queries per accuracy/throughput measurement.
    n_queries: int = 20_000
    #: Independent repetitions for the max-over-runs statistics (the
    #: paper uses 100; scaled runs default lower).
    runs: int = 5
    #: Master seed; per-run seeds derive deterministically from it.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")

    @property
    def stream_size(self) -> int:
        """Scaled synthetic stream length."""
        return max(1, int(self.base_stream_size * self.scale))

    @property
    def distinct(self) -> int:
        """Scaled distinct-domain size."""
        return max(1, int(self.base_distinct * self.scale))

    @property
    def sweep_stream_size(self) -> int:
        """Stream length used by multi-point sweep experiments."""
        return max(1, self.stream_size // 2)

    @property
    def sweep_distinct(self) -> int:
        """Distinct-domain size used by sweep experiments."""
        return max(1, self.distinct // 2)

    @property
    def queries(self) -> int:
        """Scaled query-set size."""
        return max(1, min(self.n_queries, int(self.n_queries * self.scale)))

    def with_scale(self, scale: float) -> "ExperimentConfig":
        """A copy at a different scale (benchmarks use small scales)."""
        return replace(self, scale=scale)
