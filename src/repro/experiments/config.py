"""Experiment configuration: sizes, scale factor, shared parameters.

The paper's settings (§7.1): synopsis 16KB-128KB (most experiments at
128KB), ``w = 8`` hash rows, Relaxed-Heap filter of 32 items (~0.4KB),
synthetic streams of 32M tuples over 8M distinct items (4:1 ratio).

The default configuration keeps every *structural* parameter (synopsis
bytes, ``w``, filter size) at the paper's values and scales only the
stream: 400K tuples over 100K distinct items, the same 4:1 ratio.  The
``scale`` knob multiplies stream lengths (and the distinct domain) for
heavier or lighter runs; sweep experiments additionally halve the stream
to keep the full suite tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.synopses.spec import SynopsisSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment modules."""

    #: Multiplies every stream length (and the distinct domain with it).
    scale: float = 1.0
    #: Base synthetic stream length at scale 1.0.
    base_stream_size: int = 400_000
    #: Base distinct-domain size at scale 1.0 (the paper's 4:1 ratio).
    base_distinct: int = 100_000
    #: Total synopsis budget (paper default 128KB).
    synopsis_bytes: int = 128 * 1024
    #: Number of sketch rows ``w`` (paper fixes 8).
    num_hashes: int = 8
    #: ASketch filter capacity in items (paper default 32, ~0.4KB).
    filter_items: int = 32
    #: ASketch filter implementation (paper's default comparator).
    filter_kind: str = "relaxed-heap"
    #: Queries per accuracy/throughput measurement.
    n_queries: int = 20_000
    #: Independent repetitions for the max-over-runs statistics (the
    #: paper uses 100; scaled runs default lower).
    runs: int = 5
    #: Master seed; per-run seeds derive deterministically from it.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")

    @property
    def stream_size(self) -> int:
        """Scaled synthetic stream length."""
        return max(1, int(self.base_stream_size * self.scale))

    @property
    def distinct(self) -> int:
        """Scaled distinct-domain size."""
        return max(1, int(self.base_distinct * self.scale))

    @property
    def sweep_stream_size(self) -> int:
        """Stream length used by multi-point sweep experiments."""
        return max(1, self.stream_size // 2)

    @property
    def sweep_distinct(self) -> int:
        """Distinct-domain size used by sweep experiments."""
        return max(1, self.distinct // 2)

    @property
    def queries(self) -> int:
        """Scaled query-set size."""
        return max(1, min(self.n_queries, int(self.n_queries * self.scale)))

    def with_scale(self, scale: float) -> "ExperimentConfig":
        """A copy at a different scale (benchmarks use small scales)."""
        return replace(self, scale=scale)

    # -- spec-driven construction ------------------------------------------

    def spec_for(self, method: str, seed: int = 0) -> SynopsisSpec:
        """The synopsis spec for one of the paper's comparison methods.

        Method ids are the keys of
        :data:`repro.experiments.common.METHOD_LABELS`; the returned spec
        carries this config's structural parameters (synopsis budget,
        ``w``, filter sizing) so every construction site — experiments,
        CLI, benchmarks — builds the same object through
        :func:`repro.synopses.spec.build_synopsis`.
        """
        total_bytes = self.synopsis_bytes
        if method == "count-min":
            return SynopsisSpec(
                "count-min",
                {
                    "num_hashes": self.num_hashes,
                    "total_bytes": total_bytes,
                    "seed": seed,
                },
            )
        if method == "fcm":
            return SynopsisSpec(
                "fcm",
                {
                    "num_hashes": self.num_hashes,
                    "total_bytes": total_bytes,
                    "mg_capacity": self.filter_items,
                    "seed": seed,
                },
            )
        if method == "holistic-udaf":
            return SynopsisSpec(
                "holistic-udaf",
                {
                    "table_items": self.filter_items,
                    "total_bytes": total_bytes,
                    "num_hashes": self.num_hashes,
                    "seed": seed,
                },
            )
        if method in ("asketch", "asketch-fcm"):
            params = {
                "total_bytes": total_bytes,
                "filter_items": self.filter_items,
                "filter_kind": self.filter_kind,
                "num_hashes": self.num_hashes,
                "seed": seed,
            }
            if method == "asketch-fcm":
                params["sketch_backend"] = "fcm"
            return SynopsisSpec("asketch", params)
        if method == "sf-sketch":
            return SynopsisSpec(
                "sf-sketch",
                {
                    "num_hashes": self.num_hashes,
                    "total_bytes": total_bytes,
                    "seed": seed,
                },
            )
        if method == "salsa-cm":
            return SynopsisSpec(
                "salsa-cm",
                {
                    "num_hashes": self.num_hashes,
                    "total_bytes": total_bytes,
                    "seed": seed,
                },
            )
        if method in ("asketch-sf", "asketch-salsa"):
            return SynopsisSpec(
                "asketch",
                {
                    "total_bytes": total_bytes,
                    "filter_items": self.filter_items,
                    "filter_kind": self.filter_kind,
                    "num_hashes": self.num_hashes,
                    "seed": seed,
                    "sketch_backend": (
                        "sf-sketch" if method == "asketch-sf" else "salsa-cm"
                    ),
                },
            )
        if method in ("space-saving-min", "space-saving-zero"):
            return SynopsisSpec(
                "space-saving",
                {
                    "total_bytes": total_bytes,
                    "estimate_mode": method.rsplit("-", 1)[1],
                },
            )
        raise ConfigurationError(f"unknown method {method!r}")
