"""Figure 12: pipeline parallelism (filter core + sketch core) vs skew.

Paper shape: Parallel ASketch gains most in the 1.2-2.4 skew band —
almost 2x sequential ASketch at skew 1.8 — and the advantage fades above
~2.4 where nearly nothing overflows the filter and the sketch core
idles.  Parallel Holistic UDAFs also gains from pipelining but stays
about 2x below Parallel ASketch at skew 1.8.

Each point runs the sequential structure to *measure* its operation
split and selectivity, then prices the split onto two cores with the
pipeline model (DESIGN.md substitution 5).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.hardware.pipeline import PipelineSimulator


def run(config: ExperimentConfig) -> ExperimentResult:
    simulator = PipelineSimulator()
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)

        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        stage0, stage1 = asketch.stage_ops()
        stage0.items = len(stream)
        asketch_result = simulator.run(
            stage0,
            stage1,
            n_items=len(stream),
            forwarded_items=asketch.miss_events,
            returned_items=asketch.exchange_count,
            sketch_bytes=asketch.sketch.size_bytes,
            filter_bytes=asketch.filter.size_bytes,
        )

        hudaf = build_method("holistic-udaf", config)
        hudaf.process_stream(stream.keys)
        h_stage0, h_stage1 = hudaf.stage_ops()
        h_stage0.items = len(stream)
        hudaf_result = simulator.run(
            h_stage0,
            h_stage1,
            n_items=len(stream),
            forwarded_items=h_stage0.flush_items,
            returned_items=0,
            sketch_bytes=hudaf.sketch.size_bytes,
            filter_bytes=hudaf.table_items * 12,
        )

        rows.append(
            {
                "skew": skew,
                "ASketch seq items/ms": asketch_result.sequential_items_per_ms,
                "Parallel ASketch items/ms": (
                    asketch_result.throughput_items_per_ms
                ),
                "Parallel H-UDAF items/ms": (
                    hudaf_result.throughput_items_per_ms
                ),
                "ASketch pipeline speedup": asketch_result.speedup,
            }
        )
    return ExperimentResult(
        experiment_id="figure12",
        title="Pipeline parallelism: modeled throughput vs skew",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: pipeline speedup peaks (~2x) in the 1.2-2.4 "
            "skew band and fades above ~2.4; Parallel ASketch ~2x "
            "Parallel H-UDAF at skew 1.8.",
        ],
    )
