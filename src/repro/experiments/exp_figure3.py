"""Figure 3: filter selectivity vs skew for |F| in {8, 32, 64, 128}.

The closed-form curve of §4: the fraction ``N2/N`` of the stream mass
that overflows a perfect filter holding the true top-|F| items of a Zipf
distribution.  The paper's headline readings at skew 1.5: the top-32
items carry ~80% of all counts, so only ~20% reaches the sketch; and
growing the filter beyond ~32 items barely lowers the selectivity.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import predicted_filter_selectivity
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

FILTER_SIZES = (8, 32, 64, 128)


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    for skew in skews:
        row: dict[str, object] = {"skew": skew}
        for size in FILTER_SIZES:
            row[f"|F|={size}"] = predicted_filter_selectivity(
                skew, config.distinct, size
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure3",
        title=(
            "Filter selectivity (N2/N) vs Zipf skew, "
            f"domain {config.distinct:,} items"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper reading at skew 1.5: top-32 items carry ~80% of counts "
            "(selectivity ~0.2); beyond |F|~32 the curves nearly coincide.",
        ],
    )
