"""Structured experiment output shared by the CLI, benches and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures.

    Attributes
    ----------
    experiment_id:
        Registry id (``"table1"``, ``"figure5"``, ...).
    title:
        Human-readable caption, matching the paper's artefact.
    columns:
        Ordered column names; every row dict uses exactly these keys.
    rows:
        One dict per printed row (a table row or a figure data point).
    notes:
        Free-form remarks: substitutions in effect, scaling caveats, the
        paper's headline observation the rows should exhibit.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def row_for(self, column: str, value: Any) -> dict[str, Any]:
        """The first row whose ``column`` equals ``value``."""
        for row in self.rows:
            if row[column] == value:
                return row
        raise KeyError(f"no row with {column}={value!r}")
