"""Figure 7: observed error vs skew for ASketch, Count-Min, H-UDAF.

Paper shape (128KB, skews 0.8-1.8): H-UDAF tracks Count-Min almost
exactly (it answers from the same sketch); ASketch pulls away as skew
grows — e.g. at skew 1.4 the paper reads 4e-3 % for CMS/H-UDAF vs
9e-4 % for ASketch, reaching ~25x better by skew 1.8 (Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    METHOD_LABELS,
    accuracy_on_queries,
    build_method,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

METHODS = ("asketch", "count-min", "holistic-udaf")


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.8, 1.81, 0.2)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        queries = query_set(stream, config)
        row: dict[str, object] = {"skew": skew}
        for name in METHODS:
            method = build_method(name, config, seed=config.seed)
            method.process_stream(stream.keys)
            row[f"{METHOD_LABELS[name]} err (%)"] = accuracy_on_queries(
                method, stream, queries
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure7",
        title=(
            "Observed error vs skew, "
            f"{config.synopsis_bytes // 1024}KB synopsis"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: H-UDAF ~= Count-Min at every skew; ASketch "
            "increasingly better with skew (paper: ~4x at 1.4, ~25x at "
            "1.8).",
        ],
    )
