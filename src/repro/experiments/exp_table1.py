"""Table 1: ASketch vs Count-Min, FCM, Holistic UDAFs at Zipf 1.5, 128KB.

Paper numbers (32M stream / 8M distinct, filter 32 items):

    method          updates/ms   queries/ms   observed error (%)
    Count-Min            6 481        6 892        0.0024
    FCM                  6 165        7 551        0.0013
    Holistic UDAFs      17 508        6 319        0.0025
    ASketch             26 739       30 795        0.0004

The reproduced shape: ASketch fastest on both update and query by ~4x
over Count-Min; H-UDAF fast on updates but sketch-bound on queries; FCM
slightly slower than Count-Min on updates but more accurate; ASketch the
most accurate.
"""

from __future__ import annotations

from repro.experiments.common import (
    METHOD_LABELS,
    build_method,
    full_stream,
    measure_query_phase,
    measure_update_phase,
    modeled_throughput,
    query_set,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error import observed_error_percent

SKEW = 1.5
METHODS = ("count-min", "fcm", "holistic-udaf", "asketch")


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = full_stream(config, SKEW)
    queries = query_set(stream, config)
    truths = [stream.exact.count_of(int(key)) for key in queries]

    rows = []
    for name in METHODS:
        method = build_method(name, config, seed=config.seed)
        update = measure_update_phase(method, stream.keys)
        query, estimates = measure_query_phase(method, queries)
        rows.append(
            {
                "method": METHOD_LABELS[name],
                "updates/ms (modeled)": modeled_throughput(update, method),
                "queries/ms (modeled)": modeled_throughput(query, method),
                "updates/ms (wall)": update.wall_throughput_items_per_ms,
                "queries/ms (wall)": query.wall_throughput_items_per_ms,
                "observed error (%)": observed_error_percent(
                    estimates, truths
                ),
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            "ASketch vs other sketch-based methods "
            f"(Zipf {SKEW}, {config.synopsis_bytes // 1024}KB, "
            f"stream {len(stream):,})"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper: CMS 6481/6892/0.0024, FCM 6165/7551/0.0013, "
            "H-UDAF 17508/6319/0.0025, ASketch 26739/30795/0.0004.",
            "Modeled throughput uses the calibrated cost model "
            "(DESIGN.md substitution 1); wall throughput is Python-scaled "
            "and shape-only.",
        ],
    )
