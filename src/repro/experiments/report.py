"""Generate a single markdown report covering every reproduced artefact.

``repro-asketch report out.md`` runs all registered experiments under
one configuration and writes their tables (plus environment and
configuration provenance) into one markdown document — the artifact a
reproduction reviewer wants to archive next to EXPERIMENTS.md.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import describe, experiment_ids
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import run_experiment


def _markdown_table(result: ExperimentResult) -> str:
    header = "| " + " | ".join(result.columns) + " |"
    divider = "| " + " | ".join("---" for _ in result.columns) + " |"
    lines = [header, divider]
    for row in result.rows:
        cells = []
        for column in result.columns:
            value = row[column]
            if isinstance(value, float):
                cells.append(f"{value:.6g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_report(
    config: ExperimentConfig,
    experiment_subset: list[str] | None = None,
) -> str:
    """Run experiments and render one markdown document."""
    targets = experiment_subset or experiment_ids()
    sections = [
        "# ASketch reproduction report",
        "",
        f"*Python {platform.python_version()} on {platform.machine()};* "
        f"*scale {config.scale}, seed {config.seed}, synopsis "
        f"{config.synopsis_bytes // 1024}KB, filter "
        f"{config.filter_items} items.*",
        "",
    ]
    for experiment_id in targets:
        start = time.perf_counter()
        result = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - start
        sections.append(f"## {experiment_id}: {result.title}")
        sections.append("")
        sections.append(_markdown_table(result))
        sections.append("")
        for note in result.notes:
            sections.append(f"> {note}")
        sections.append("")
        sections.append(f"*({describe(experiment_id)}; {elapsed:.1f}s)*")
        sections.append("")
    return "\n".join(sections)


def write_report(
    path: str | Path,
    config: ExperimentConfig,
    experiment_subset: list[str] | None = None,
) -> Path:
    """Generate and write the report; returns the output path."""
    path = Path(path)
    path.write_text(
        generate_report(config, experiment_subset), encoding="utf-8"
    )
    return path
