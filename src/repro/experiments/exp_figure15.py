"""Figure 15: sensitivity to the filter size (throughput and error).

Paper (128KB ASketch, Zipf 1.5, Relaxed-Heap): throughput peaks at a
small filter (~0.4KB / 32 items) and decays for larger filters — probe
cost grows while the selectivity barely improves (Figure 3's plateau);
observed error improves up to ~3KB and then flattens/worsens as the
shrinking sketch hurts the tail.  Plain Count-Min is the 0-filter
reference point (throughput 6 481 items/ms, error 0.0024%).
"""

from __future__ import annotations

from repro.core.asketch import ASketch
from repro.experiments.common import (
    accuracy_on_queries,
    build_method,
    measure_update_phase,
    modeled_throughput,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

SKEW = 1.5
#: Filter sizes from the paper's x-axis: 0.1KB to 12KB at 12 bytes/item.
FILTER_ITEMS = (8, 16, 32, 64, 128, 256, 512, 1024)


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = sweep_stream(config, SKEW)
    queries = query_set(stream, config)

    count_min = build_method("count-min", config)
    cms_phase = measure_update_phase(count_min, stream.keys)
    rows = [
        {
            "filter size": "0 (Count-Min)",
            "items/ms (modeled)": modeled_throughput(cms_phase, count_min),
            "observed error (%)": accuracy_on_queries(
                count_min, stream, queries
            ),
        }
    ]
    for items in FILTER_ITEMS:
        asketch = ASketch(
            total_bytes=config.synopsis_bytes,
            filter_items=items,
            filter_kind="relaxed-heap",
            num_hashes=config.num_hashes,
            seed=config.seed,
        )
        phase = measure_update_phase(asketch, stream.keys)
        rows.append(
            {
                "filter size": f"{items * 12 / 1024:.1f}KB ({items} items)",
                "items/ms (modeled)": modeled_throughput(phase, asketch),
                "observed error (%)": accuracy_on_queries(
                    asketch, stream, queries
                ),
            }
        )
    return ExperimentResult(
        experiment_id="figure15",
        title=(
            f"Filter-size sensitivity (Zipf {SKEW}, "
            f"{config.synopsis_bytes // 1024}KB ASketch, Relaxed-Heap)"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: throughput peaks near 32 items (0.4KB) and "
            "decays with filter size; error improves up to ~3KB then "
            "stops improving.",
        ],
    )
