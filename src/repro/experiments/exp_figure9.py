"""Figure 9: number of filter/sketch exchanges vs skew.

Paper (32M stream, 128KB, Relaxed-Heap filter of 32): ~40K exchanges at
the uniform end, dropping steeply with skew to under 100 by skew 3 — the
evidence that the exchange mechanism is not a throughput concern.  The
reproduced run scales the absolute counts with the stream but keeps the
steep monotone decline; Appendix C.2's average-case estimate
``N * |F| / h`` is printed alongside for the uniform point.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import expected_exchanges_uniform
from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    row_width = None
    for skew in skews:
        stream = sweep_stream(config, skew)
        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        if row_width is None:
            row_width = asketch.sketch.row_width
        rows.append(
            {
                "skew": skew,
                "exchanges": asketch.exchange_count,
                "selectivity": asketch.achieved_selectivity,
            }
        )
    assert row_width is not None
    stream_size = rows and sweep_stream(config, 0.0).total_count
    average_case = expected_exchanges_uniform(
        int(stream_size), config.filter_items, row_width
    )
    return ExperimentResult(
        experiment_id="figure9",
        title="Average number of exchanges vs skew (Relaxed-Heap filter)",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: exchanges drop steeply and monotonically "
            "with skew (paper: ~40K at uniform for a 32M stream, <100 at "
            "skew 3).",
            f"Appendix C.2 average-case estimate at uniform: N*|F|/h = "
            f"{average_case:,.0f} (measured uniform count sits well "
            "below it, as in the paper).",
        ],
    )
