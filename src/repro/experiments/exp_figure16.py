"""Figure 16 (Appendix B.1): relative error over the low-frequency items.

The worry Theorem 1 addresses: paying for the filter with sketch width
could hurt the tail.  The paper plots average relative error over *all*
low-frequency items (a metric biased exactly toward that tail) for
skews 0.8-1.8 and finds Count-Min and ASketch indistinguishable.  Here
"low-frequency" means: not among the true top-``filter_items`` items;
the metric is computed over a uniform sample of those items.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error import average_relative_error


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.8, 1.81, 0.2)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        top_keys = {key for key, _ in stream.true_top_k(config.filter_items)}
        tail = np.fromiter(
            (
                key
                for key, _ in stream.exact.items()
                if key not in top_keys
            ),
            dtype=np.int64,
        )
        rng = np.random.default_rng(config.seed + 31)
        sample_size = min(config.queries, tail.shape[0])
        sample = tail[rng.choice(tail.shape[0], sample_size, replace=False)]
        truths = [stream.exact.count_of(int(key)) for key in sample]

        count_min = build_method("count-min", config)
        count_min.process_stream(stream.keys)
        cms_are = average_relative_error(
            count_min.estimate_batch(sample), truths
        )
        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        asketch_are = average_relative_error(
            asketch.estimate_batch(sample), truths
        )
        rows.append(
            {
                "skew": skew,
                "Count-Min ARE": cms_are,
                "ASketch ARE": asketch_are,
            }
        )
    return ExperimentResult(
        experiment_id="figure16",
        title="Average relative error over low-frequency items",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: the two curves are indistinguishable at "
            "every skew — the filter's space cost does not hurt the tail "
            "(Theorem 1).",
        ],
    )
