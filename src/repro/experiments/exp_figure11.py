"""Figure 11: Space Saving as a frequency estimator vs ASketch (Kosarak).

Space Saving monitors only ~synopsis/100 items; queries for unmonitored
items return either the minimum count (convention of [27], massive
overestimation for the tail) or zero (convention of [9], total loss of
the tail).  The paper finds both far worse than same-budget ASketch and
ASketch-FCM on the Kosarak stream — the zero convention less bad than
the min convention.
"""

from __future__ import annotations

from repro.experiments.common import (
    METHOD_LABELS,
    build_method,
    query_set,
    real_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error import observed_error_percent

METHODS = ("asketch", "asketch-fcm", "space-saving-min", "space-saving-zero")


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = real_stream(config, "kosarak")
    queries = query_set(stream, config)
    truths = [stream.exact.count_of(int(key)) for key in queries]
    rows = []
    for name in METHODS:
        method = build_method(name, config, seed=config.seed)
        method.process_stream(stream.keys)
        estimates = method.estimate_batch(queries)
        rows.append(
            {
                "method": METHOD_LABELS[name],
                "observed error (%)": observed_error_percent(
                    estimates, truths
                ),
            }
        )
    return ExperimentResult(
        experiment_id="figure11",
        title=(
            "Observed error on Kosarak: ASketch vs Space Saving "
            f"({config.synopsis_bytes // 1024}KB each)"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected ordering: both ASketch variants far below both "
            "Space Saving conventions; Space Saving(zero) below "
            "Space Saving(min).",
        ],
    )
