"""Figure 17 (Appendix B.2): predicted vs achieved filter selectivity.

The §4 closed form assumes the filter holds exactly the true top-|F|
items; Figure 17 checks how close a real ASketch run gets.  The paper
reads near-coincident curves (e.g. predicted 0.75 vs achieved 0.76 at
skew 1.0): after a warm-up the heavy items are exchanged into the filter
and stay there.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import predicted_filter_selectivity
from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        predicted = predicted_filter_selectivity(
            skew, config.sweep_distinct, config.filter_items
        )
        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        rows.append(
            {
                "skew": skew,
                "predicted N2/N": predicted,
                "achieved N2/N": asketch.achieved_selectivity,
            }
        )
    return ExperimentResult(
        experiment_id="figure17",
        title="Predicted vs achieved filter selectivity (|F| = "
        f"{config.filter_items})",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: the two curves almost coincide at every "
            "skew, the achieved value sitting slightly above the "
            "prediction (paper: 0.76 vs 0.75 at skew 1.0).",
        ],
    )
