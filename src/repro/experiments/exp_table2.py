"""Table 2: the analytic Count-Min vs ASketch comparison, evaluated.

The paper's Table 2 is symbolic; this experiment instantiates it with a
measured run: ``t_s``/``t_f`` come from the cost model's per-item cycle
counts, and the selectivity ``N2/N`` is measured from an actual ASketch
pass, then the closed forms of §4 are evaluated and printed next to the
measured counterparts.
"""

from __future__ import annotations

from repro.core.analysis import (
    asketch_error_bound,
    count_min_error_bound,
    predicted_update_time,
    table2_comparison,
)
from repro.experiments.common import (
    build_method,
    full_stream,
    measure_update_phase,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.hardware.costs import CostModel

SKEW = 1.5


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = full_stream(config, SKEW)
    model = CostModel()

    # Measure the two per-item times from the calibrated model.
    count_min = build_method("count-min", config)
    cm_phase = measure_update_phase(count_min, stream.keys)
    sketch_cycles = model.cycles_per_processed_item(
        cm_phase.ops, count_min.size_bytes
    )
    sketch_item_time = sketch_cycles / model.clock_hz

    asketch = build_method("asketch", config)
    as_phase = measure_update_phase(asketch, stream.keys)
    selectivity = asketch.achieved_selectivity
    as_cycles = model.cycles_per_processed_item(
        as_phase.ops, asketch.sketch.size_bytes
    )
    asketch_item_time = as_cycles / model.clock_hz
    # t_f is what remains after removing the sketch share of ASketch time.
    filter_item_time = max(
        asketch_item_time - selectivity * sketch_item_time, 1e-12
    )

    filter_bytes = asketch.filter.size_bytes
    analytic = table2_comparison(
        num_hashes=config.num_hashes,
        row_width=count_min.row_width,
        filter_bytes=filter_bytes,
        total_count=asketch.total_mass,
        sketch_count=asketch.overflow_mass,
        sketch_item_time=sketch_item_time,
        filter_item_time=filter_item_time,
    )

    rows = []
    for entry in analytic:
        rows.append(
            {
                "method": entry.method,
                "freq-estimation time (ns)": entry.frequency_estimation_time
                * 1e9,
                "throughput (items/ms)": entry.stream_processing_throughput
                / 1000.0,
                "expected error bound": entry.frequency_estimation_error,
                "error probability": entry.error_probability,
                "supported queries": ", ".join(entry.supported_queries),
            }
        )
    predicted_as_time = predicted_update_time(
        filter_item_time, sketch_item_time, selectivity
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Analytic comparison between Count-Min and ASketch (§4)",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            f"measured filter selectivity N2/N = {selectivity:.3f} "
            f"at Zipf {SKEW}",
            f"t_s = {sketch_item_time * 1e9:.1f} ns, "
            f"t_f = {filter_item_time * 1e9:.1f} ns, "
            f"t_f + sel*t_s = {predicted_as_time * 1e9:.1f} ns vs measured "
            f"ASketch {asketch_item_time * 1e9:.1f} ns/item",
            "error bounds: CMS (e/h)N = "
            f"{count_min_error_bound(count_min.row_width, asketch.total_mass):.0f}; "
            "ASketch (e/(h-s_f/w))N2(N2/N) = "
            f"{asketch_error_bound(count_min.row_width, config.num_hashes, filter_bytes, asketch.total_mass, asketch.overflow_mass):.0f}",
        ],
    )
