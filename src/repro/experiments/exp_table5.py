"""Table 5: precision-at-k of ASketch's top-k query.

Paper (128KB, filter 0.4KB = 32 items): precision 0.74 at skew 0.4,
0.96 at 0.6, 0.99 at 0.8 and 1.0 from skew 1.0 upwards.  The filter's
contents *are* the top-k answer, so precision measures how well the
exchange policy concentrates the true heavy hitters in the filter.
"""

from __future__ import annotations

from repro.experiments.common import build_method, sweep_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.precision import precision_at_k

SKEWS = (0.4, 0.6, 0.8, 1.0, 1.5, 2.0)


def run(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for skew in SKEWS:
        stream = sweep_stream(config, skew)
        asketch = build_method("asketch", config)
        asketch.process_stream(stream.keys)
        k = config.filter_items
        reported = asketch.top_k(k)
        truth = stream.true_top_k(k)
        rows.append(
            {
                "skew": skew,
                "precision-at-k": precision_at_k(reported, truth, k=k),
            }
        )
    return ExperimentResult(
        experiment_id="table5",
        title=(
            f"Precision-at-k of ASketch top-k (k = {config.filter_items})"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper: 0.74 at skew 0.4, 0.96 at 0.6, 0.99 at 0.8, 1.0 from "
            "skew 1.0 on.",
        ],
    )
