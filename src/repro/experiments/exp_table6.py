"""Table 6: accuracy of ASketch under the four filter implementations.

Paper (128KB ASketch, 0.4KB filter, Zipf 1.5): Vector, Strict-Heap and
Relaxed-Heap all read 0.0002% observed error (identical space per slot,
so identical 32-item capacity); Stream-Summary reads 0.0005% because its
100-byte slots fit only 4 items in the same budget.
"""

from __future__ import annotations

from repro.core.asketch import ASketch
from repro.experiments.common import (
    accuracy_on_queries,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.experiments.exp_figure14 import FILTER_BUDGET_BYTES, _capacity_for

SKEW = 1.5
FILTER_KINDS = ("stream-summary", "vector", "relaxed-heap", "strict-heap")


def run(config: ExperimentConfig) -> ExperimentResult:
    stream = sweep_stream(config, SKEW)
    queries = query_set(stream, config)
    rows = []
    for kind in FILTER_KINDS:
        capacity = _capacity_for(kind)
        asketch = ASketch(
            total_bytes=config.synopsis_bytes,
            filter_items=capacity,
            filter_kind=kind,
            num_hashes=config.num_hashes,
            seed=config.seed,
        )
        asketch.process_stream(stream.keys)
        rows.append(
            {
                "filter type": kind,
                "items monitored": capacity,
                "observed error (%)": accuracy_on_queries(
                    asketch, stream, queries
                ),
            }
        )
    return ExperimentResult(
        experiment_id="table6",
        title=(
            "Accuracy by filter implementation "
            f"(Zipf {SKEW}, filter budget {FILTER_BUDGET_BYTES} bytes)"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper: the three 32-item filters tie at 0.0002%; "
            "Stream-Summary (4 items in the same bytes) reads 0.0005%.",
        ],
    )
