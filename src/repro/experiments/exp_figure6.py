"""Figure 6: average relative error over misclassified light items.

Paper: for 16-32KB Count-Min synopses on Zipf 1.5, items misclassified as
heavy hitters carry an average relative error around 1e5 (they are items
of count ~1-10 estimated at heavy-hitter level); ASketch's error on the
same items is up to three orders of magnitude lower (no misclassification
occurs, so the ASketch bar is its ordinary estimate error on those keys).

Sizes follow Table 3's scale-equivalent band (3-4KB for this domain; see
``exp_table3``'s docstring for the scaling argument).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.common import build_method, full_stream
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error import average_relative_error
from repro.metrics.misclassification import find_misclassified

SKEW = 1.5
SYNOPSIS_SIZES_KB = (3, 3.5, 4)


def run(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for size_kb in SYNOPSIS_SIZES_KB:
        sized = replace(config, synopsis_bytes=int(size_kb * 1024))
        stream = full_stream(sized, SKEW)
        count_min = build_method("count-min", sized)
        count_min.process_stream(stream.keys)
        misclassified = find_misclassified(
            count_min, stream.exact, heavy_k=sized.filter_items
        )
        if misclassified:
            bad_keys = np.array([m.key for m in misclassified])
            truths = [m.true_count for m in misclassified]
            cms_are = average_relative_error(
                [m.estimated_count for m in misclassified], truths
            )
            asketch = build_method("asketch", sized)
            asketch.process_stream(stream.keys)
            asketch_are = average_relative_error(
                asketch.estimate_batch(bad_keys), truths
            )
        else:
            cms_are = 0.0
            asketch_are = 0.0
        rows.append(
            {
                "synopsis size": f"{size_kb}KB",
                "misclassified items": len(misclassified),
                "avg rel. error (Count-Min)": cms_are,
                "avg rel. error (ASketch)": asketch_are,
            }
        )
    return ExperimentResult(
        experiment_id="figure6",
        title=(
            "Average relative error over items Count-Min misclassifies "
            f"(Zipf {SKEW})"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper: Count-Min's error on these items is ~1e5 and up to 3 "
            "orders of magnitude above ASketch's.",
            "Rows with zero misclassified items report 0 for both bars.",
        ],
    )
