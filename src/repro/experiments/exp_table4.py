"""Table 4: observed-error improvement of ASketch over Count-Min.

Paper (64KB and 128KB synopses): improvement factors grow with skew —
1.0x at 0.8, 1.3x at 1.0, ~2.2x at 1.2, ~5.2x at 1.4, ~11x at 1.6,
~24-28x at 1.8.  The reproduced factors should be ~1 at skew 0.8 and
grow monotonically (noise aside) into the tens by skew 1.8.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.common import (
    accuracy_on_queries,
    build_method,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

SYNOPSIS_SIZES_KB = (64, 128)


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.8, 1.81, 0.2)]
    rows = []
    for skew in skews:
        row: dict[str, object] = {"skew": skew}
        for size_kb in SYNOPSIS_SIZES_KB:
            sized = replace(config, synopsis_bytes=size_kb * 1024)
            stream = sweep_stream(sized, skew)
            queries = query_set(stream, sized)
            count_min = build_method("count-min", sized)
            count_min.process_stream(stream.keys)
            cms_error = accuracy_on_queries(count_min, stream, queries)
            asketch = build_method("asketch", sized)
            asketch.process_stream(stream.keys)
            asketch_error = accuracy_on_queries(asketch, stream, queries)
            if asketch_error == 0:
                improvement = float("inf") if cms_error > 0 else 1.0
            else:
                improvement = cms_error / asketch_error
            row[f"x improvement ({size_kb}KB)"] = improvement
        rows.append(row)
    return ExperimentResult(
        experiment_id="table4",
        title="Observed-error improvement of ASketch over Count-Min",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Paper: 1.0/1.3/2.2-2.3/5.2-5.3/10.8-11.0/23.9-28.0 for skews "
            "0.8-1.8.",
            "'inf' means ASketch achieved zero observed error on the "
            "query sample (common at high skew).",
        ],
    )
