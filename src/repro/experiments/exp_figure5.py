"""Figure 5: stream and query throughput vs skew for four methods.

Paper shape (128KB synopsis, filter 32): Count-Min is flat across skew;
FCM starts below Count-Min and catches up at high skew; Holistic UDAFs
dips below Count-Min at low/mid skew and rises steeply above ~2.5;
ASketch tracks Count-Min at skew 0, overtakes it around skew 0.8, and
ends up roughly an order of magnitude faster.  Query throughput (5b):
ASketch answers most frequency-weighted queries from the filter and is
~10x the others for skew > 1.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    METHOD_LABELS,
    build_method,
    measure_query_phase,
    measure_update_phase,
    modeled_throughput,
    query_set,
    sweep_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult

METHODS = ("count-min", "fcm", "holistic-udaf", "asketch")


def run(config: ExperimentConfig) -> ExperimentResult:
    skews = [round(s, 2) for s in np.arange(0.0, 3.01, 0.25)]
    rows = []
    for skew in skews:
        stream = sweep_stream(config, skew)
        queries = query_set(stream, config)
        row: dict[str, object] = {"skew": skew}
        for name in METHODS:
            method = build_method(name, config, seed=config.seed)
            update = measure_update_phase(method, stream.keys)
            query, _ = measure_query_phase(method, queries)
            label = METHOD_LABELS[name]
            row[f"{label} upd/ms"] = modeled_throughput(update, method)
            row[f"{label} qry/ms"] = modeled_throughput(query, method)
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure5",
        title=(
            "Stream (5a) and query (5b) throughput vs skew, "
            f"{config.synopsis_bytes // 1024}KB synopsis"
        ),
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Expected shape: CMS flat; FCM below CMS at low skew, "
            "converging at high skew; H-UDAF below CMS until ~mid skew "
            "then steeply up; ASketch overtakes CMS near skew 0.8 and "
            "gains ~10x by skew 3.",
        ],
    )
