"""Figure 10: throughput and observed error on the real-data surrogates.

Paper readings (128KB synopsis, filter 32):

* IP-trace (skew ~0.9): ASketch ~5% faster than Count-Min; ASketch-FCM
  ~30% faster than Count-Min and ~40% over H-UDAF/FCM; errors: ASketch
  ~20% below CMS/H-UDAF; ASketch-FCM >22% below FCM.
* Kosarak (skew ~1.0): ASketch ~20% over Count-Min, ~10% over H-UDAF;
  ASketch-FCM ~70% over FCM; errors: ASketch ~32% below CMS/H-UDAF;
  ASketch-FCM ~48% below FCM.

Both datasets are matched-statistics surrogates (DESIGN.md subs. 3-4).
"""

from __future__ import annotations

from repro.experiments.common import (
    METHOD_LABELS,
    build_method,
    measure_query_phase,
    measure_update_phase,
    modeled_throughput,
    query_set,
    real_stream,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error import observed_error_percent

METHODS = ("count-min", "asketch", "holistic-udaf", "fcm", "asketch-fcm")
DATASETS = ("ip-trace", "kosarak")


def run(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for dataset in DATASETS:
        stream = real_stream(config, dataset)
        queries = query_set(stream, config)
        truths = [stream.exact.count_of(int(key)) for key in queries]
        for name in METHODS:
            method = build_method(name, config, seed=config.seed)
            update = measure_update_phase(method, stream.keys)
            _, estimates = measure_query_phase(method, queries)
            rows.append(
                {
                    "dataset": dataset,
                    "method": METHOD_LABELS[name],
                    "updates/ms (modeled)": modeled_throughput(
                        update, method
                    ),
                    "observed error (%)": observed_error_percent(
                        estimates, truths
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="figure10",
        title="Real-world datasets: stream throughput and observed error",
        columns=list(rows[0].keys()),
        rows=rows,
        notes=[
            "Datasets are matched-statistics surrogates of the paper's "
            "proprietary IP-trace and the Kosarak click stream.",
            "Expected ordering: ASketch-FCM fastest and most accurate; "
            "ASketch modestly above Count-Min at these low skews; H-UDAF "
            "error ~= Count-Min error.",
        ],
    )
