"""The staged-synopsis core: a front stage, a back stage, and a policy.

The paper's entire contribution is a *composition*: a small exact filter
(the front stage) in front of a lossy frequency sketch (the back stage),
glued together by the exchange protocol of Algorithms 1 and 2.  This
module extracts that composition out of :class:`~repro.core.asketch.
ASketch` so second-generation variants (SF-sketch's fat/slim split,
SALSA's self-adjusting counters, an adaptively re-tuned filter) reuse
one implementation of ingest, batching, kernels dispatch, merging,
persistence plumbing, and observability instead of re-growing their own:

* :class:`StagedSynopsis` — the composition.  Owns the two stages, the
  operation record, the mass/selectivity bookkeeping, scalar and
  vectorised ingest (Algorithm 1), queries (Algorithm 2), top-k and
  heavy hitters, deletions (Appendix A), merging with the pristine
  identity fast paths, and the :meth:`~StagedSynopsis.resize_filter`
  re-tuning hook the adaptive controller drives.
* :class:`ExchangePolicy` — the strategy interface owning the exchange
  decision: when a missed key's sketch estimate earns it a filter slot,
  and which batched keys are even worth checking.
* :class:`ClassicExchange` — the paper's policy: at most
  ``max_exchanges_per_update`` exchanges per miss (the paper fixes one),
  eviction hashes the victim's resident mass back into the sketch.

:class:`~repro.core.asketch.ASketch` is now a thin
:class:`StagedSynopsis` subclass that only builds the paper's default
stages from a space budget — its behaviour is bit-identical to the
pre-refactor monolith (``tests/staged/test_equivalence.py`` enforces
estimates, op counts and state digests against a committed golden file).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.filters import Filter, make_filter
from repro.errors import ConfigurationError, NegativeCountError
from repro.hardware.costs import OpCounters
from repro.kernels import active_backend
from repro.obs.registry import MetricsRegistry, current_registry
from repro.obs.trace import current_tracer, trace_point
from repro.sketches.base import FrequencySketch
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    synopsis_state_of,
    unpack_nested,
)


class ExchangePolicy:
    """Strategy interface owning Algorithm 1's exchange step.

    The policy decides when a missed key trades places with the filter
    minimum and performs the swap.  It is deliberately stateless beyond
    its own tuning knobs: all synopsis state (filter, sketch, op record)
    stays on the :class:`StagedSynopsis` it is handed, so one policy
    object can be shared or swapped without touching stage state.
    """

    #: Exchange budget per missed tuple (the paper fixes this to 1).
    max_exchanges_per_update: int = 1

    def run_exchanges(
        self, staged: "StagedSynopsis", key: int, current_estimate: int
    ) -> int:
        """Run the policy for one missed ``key`` whose post-update back
        stage estimate is ``current_estimate``; returns the key's
        resulting estimate (its filter ``new_count`` if exchanged in).
        """
        raise NotImplementedError

    def batch_candidates(
        self,
        staged: "StagedSynopsis",
        estimates: np.ndarray,
        threshold: int,
    ) -> np.ndarray:
        """Positions (into the missed-key arrays) worth running
        :meth:`run_exchanges` for, given post-chunk ``estimates`` and the
        filter minimum ``threshold`` at batch-exchange entry.
        """
        raise NotImplementedError


class ClassicExchange(ExchangePolicy):
    """The paper's exchange policy (Algorithm 1 lines 9-17).

    At most ``max_exchanges_per_update`` exchanges run per missed tuple
    (the paper always restricts itself to one; larger values enable the
    cascading-exchange ablation and add error).  An exchanged key enters
    the filter carrying ``new_count = old_count = estimate`` — nothing
    is removed from the sketch, preserving the one-sided guarantee — and
    the evicted minimum's resident mass ``new_count - old_count`` is
    hashed back into the sketch.
    """

    def __init__(self, max_exchanges_per_update: int = 1) -> None:
        if max_exchanges_per_update < 1:
            raise ConfigurationError(
                "max_exchanges_per_update must be >= 1, got "
                f"{max_exchanges_per_update}"
            )
        self.max_exchanges_per_update = int(max_exchanges_per_update)

    def run_exchanges(
        self, staged: "StagedSynopsis", key: int, current_estimate: int
    ) -> int:
        filter_ = staged._filter
        current_key = key
        result = current_estimate
        exchanges_done = 0
        while (
            exchanges_done < self.max_exchanges_per_update
            and current_estimate > filter_.min_new_count()
        ):
            evicted = filter_.replace_min(
                current_key, current_estimate, current_estimate
            )
            staged.ops.exchanges += 1
            exchanges_done += 1
            if current_tracer() is not None:
                trace_point(
                    "exchange",
                    key=int(current_key),
                    evicted=int(evicted.key),
                    estimate=int(current_estimate),
                    items_seen=int(staged.ops.items),
                )
            if current_key == key:
                # The incoming item now lives in the filter; its estimate
                # is its new_count there.
                result = current_estimate
            delta = evicted.resident_count
            if delta > 0:
                # Only the exactly-known resident mass is hashed back
                # (line 12); the old_count part is already in the sketch.
                current_estimate = staged._sketch.update(evicted.key, delta)
            elif exchanges_done < self.max_exchanges_per_update:
                current_estimate = staged._sketch.estimate(evicted.key)
            else:
                break
            current_key = evicted.key
        return result

    def batch_candidates(
        self,
        staged: "StagedSynopsis",
        estimates: np.ndarray,
        threshold: int,
    ) -> np.ndarray:
        # The filter minimum is non-decreasing across exchanges (evicted
        # entries are the minimum, inserted ones carry estimates above
        # it), so keys whose estimate does not beat the minimum at step
        # entry can never exchange — the kernel pre-check drops them
        # before the Python loop.
        return active_backend().exchange_candidates(estimates, threshold)


class StagedSynopsis:
    """A two-stage synopsis: exact front stage + lossy back stage.

    Parameters
    ----------
    front:
        The exact front stage — any :class:`~repro.core.filters.Filter`.
    back:
        The lossy back stage — any
        :class:`~repro.sketches.base.FrequencySketch`.
    policy:
        The :class:`ExchangePolicy` gluing the stages together; defaults
        to the paper's :class:`ClassicExchange` with one exchange per
        miss.
    filter_kind:
        The registry name of ``front``'s kind.  Recorded in
        :meth:`state` and used by :meth:`resize_filter` to rebuild the
        stage; inferred from ``front``'s class when omitted.
    """

    def __init__(
        self,
        front: Filter,
        back: FrequencySketch,
        policy: ExchangePolicy | None = None,
        *,
        filter_kind: str | None = None,
    ) -> None:
        self.ops = OpCounters()
        self._filter: Filter = front
        self.filter_kind = (
            filter_kind if filter_kind is not None else _kind_of(front)
        )
        self._sketch = back
        self.exchange_policy: ExchangePolicy = (
            policy if policy is not None else ClassicExchange()
        )
        #: Aggregate count mass processed so far (``N`` in the paper).
        self.total_mass = 0
        #: Count mass that overflowed to the sketch (``N2``); the achieved
        #: filter selectivity is ``overflow_mass / total_mass`` (Fig. 17).
        self.overflow_mass = 0
        #: Number of tuples forwarded to the sketch (pipeline messaging).
        self.miss_events = 0
        #: Optional per-item hit/miss trace (see :meth:`record_misses`).
        self._miss_log: list[bool] | None = None

    # -- introspection ----------------------------------------------------

    @property
    def filter(self) -> Filter:
        """The filter stage (read access for tests and metrics)."""
        return self._filter

    @property
    def sketch(self) -> FrequencySketch:
        """The underlying sketch stage."""
        return self._sketch

    @property
    def size_bytes(self) -> int:
        """Total logical synopsis size (filter + sketch)."""
        return self._filter.size_bytes + self._sketch.size_bytes

    @property
    def exchange_count(self) -> int:
        """Exchanges executed so far (Figure 9's metric)."""
        return self.ops.exchanges

    @property
    def max_exchanges_per_update(self) -> int:
        """The policy's exchange budget (kept as a property so the
        pre-refactor attribute — and the ``state()`` payload recording
        it — survives the strategy extraction unchanged)."""
        return self.exchange_policy.max_exchanges_per_update

    @max_exchanges_per_update.setter
    def max_exchanges_per_update(self, value: int) -> None:
        self.exchange_policy.max_exchanges_per_update = int(value)

    @property
    def achieved_selectivity(self) -> float:
        """Measured ``N2 / N`` (Figure 17's "achieved" series)."""
        if self.total_mass == 0:
            return 0.0
        return self.overflow_mass / self.total_mass

    # -- Algorithm 1: stream processing -----------------------------------

    def update(self, key: int, amount: int = 1) -> int:
        """Insert ``(key, amount)``; returns the post-update estimate."""
        estimate = self._process(key, amount)
        if estimate is not None:
            return estimate
        counts = self._filter.get_counts(key)
        assert counts is not None
        return counts[0]

    def process(self, key: int, amount: int = 1) -> None:
        """Insert ``(key, amount)`` without computing a return estimate.

        The streaming hot path: identical state transitions to
        :meth:`update`, minus the extra filter probe a hit-path return
        value would need.
        """
        self._process(key, amount)

    def _process(self, key: int, amount: int) -> int | None:
        """Shared Algorithm 1 body.

        Returns the sketch estimate when the item went to the sketch (or
        entered the filter through an exchange), or None when the item
        lives in the filter and the caller can read its ``new_count``.
        """
        if amount < 0:
            raise NegativeCountError(
                "use remove() for deletions (negative updates)"
            )
        self.ops.items += 1
        self.total_mass += amount
        filter_ = self._filter
        miss_log = self._miss_log
        if filter_.add_if_present(key, amount):  # lines 2-3
            if miss_log is not None:
                miss_log.append(False)
            return None
        if not filter_.is_full:  # lines 4-6
            if self.overflow_mass:
                # A free slot coexisting with sketch mass (the filter
                # grew, or a merge rebuilt it under capacity): the key
                # may already have history in the back stage, so it
                # enters exchange-style — new = old = estimate — plus
                # the exactly-known arrival, keeping one-sidedness.
                prior = max(0, self._sketch.estimate(key))
                filter_.insert(key, prior + amount, prior)
            else:
                filter_.insert(key, amount, 0)
            if miss_log is not None:
                miss_log.append(False)
            return None
        # Lines 7-17: overflow to the sketch, then the exchange policy
        # (the paper's: at most one exchange; more under the cascading
        # ablation).
        if miss_log is not None:
            miss_log.append(True)
        self.miss_events += 1
        self.overflow_mass += amount
        estimate = self._sketch.update(key, amount)
        return self._run_exchanges(key, estimate)

    def _run_exchanges(self, key: int, current_estimate: int) -> int:
        """Delegate the exchange step to the policy (kept as a method so
        pre-refactor callers and subclasses see the same hook)."""
        return self.exchange_policy.run_exchanges(self, key, current_estimate)

    def process_stream(self, keys: np.ndarray) -> None:
        """Process an array of unit-count keys in order.

        With a metrics registry installed (:mod:`repro.obs`), the
        call's filter hit/miss/exchange deltas and latency are recorded
        once per call — state transitions and estimates are identical
        either way.
        """
        registry = current_registry()
        if registry is None:
            process = self._process
            for key in keys.tolist():
                process(key, 1)
            return
        before = (self.ops.items, self.miss_events, self.ops.exchanges)
        start = time.perf_counter()
        process = self._process
        for key in keys.tolist():
            process(key, 1)
        self._record_ingest_metrics(
            registry, before, time.perf_counter() - start
        )

    def _record_ingest_metrics(
        self,
        registry: MetricsRegistry,
        before: tuple[int, int, int],
        elapsed: float,
    ) -> None:
        """Record one ingest call's deltas into the installed registry.

        ``before`` is the (items, miss_events, exchanges) snapshot taken
        at call entry.  Hits and misses partition the ingested items
        (``hits + misses == items``), mirroring Algorithm 1: a tuple is
        either absorbed by the filter or overflows to the sketch.
        """
        items = self.ops.items - before[0]
        misses = self.miss_events - before[1]
        exchanges = self.ops.exchanges - before[2]
        registry.counter("asketch_items_total").inc(items)
        registry.counter("asketch_filter_hits_total").inc(items - misses)
        registry.counter("asketch_filter_misses_total").inc(misses)
        registry.counter("asketch_exchanges_total").inc(exchanges)
        registry.histogram("asketch_chunk_seconds").observe(elapsed)

    def process_batch(
        self, keys: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Vectorised Algorithm 1 over a chunk of (key, count) tuples.

        Semantically a chunk-granularity reordering of the scalar path:

        1. the chunk is pre-aggregated to one (key, total) pair per
           distinct key (first-appearance order);
        2. the filter absorbs every monitored key's chunk total in one
           bulk probe (:meth:`Filter.add_many_if_present`), and free
           slots are filled with new keys in first-appearance order —
           identical to the scalar path, which inserts a key's first
           occurrence and aggregates the rest as hits;
        3. every remaining missed key's total goes to the sketch in a
           single weighted batch update;
        4. the exchange check runs once per distinct missed key, in
           first-appearance order, against the key's post-chunk sketch
           estimate (the scalar loop shared by both paths).

        With single-tuple chunks this is *exactly* the scalar path.  For
        larger chunks the only deviation is exchange timing: a key the
        scalar path would exchange into the filter mid-chunk keeps
        overflowing to the sketch until the chunk ends, and exchange
        decisions see post-chunk estimates and post-chunk filter minima.
        Every decision still compares a one-sided over-estimate against
        the filter minimum, so the one-sided error guarantee and the
        ``new_count``/``old_count`` bookkeeping are preserved (exchanged
        keys enter with ``new_count = old_count = estimate``, evicted
        resident mass is hashed back) — estimates may simply differ from
        the scalar path's by the mass a chunk reorders, bounded by the
        chunk size.

        ``counts`` defaults to all-ones (a unit-count stream chunk);
        negative counts must go through :meth:`remove`.

        With a metrics registry installed (:mod:`repro.obs`), each
        chunk records its filter hit/miss/exchange deltas and one
        latency observation; counters and estimates are bit-identical
        with or without a registry.
        """
        registry = current_registry()
        if registry is None:
            self._process_batch(keys, counts)
            return
        before = (self.ops.items, self.miss_events, self.ops.exchanges)
        start = time.perf_counter()
        try:
            self._process_batch(keys, counts)
        finally:
            self._record_ingest_metrics(
                registry, before, time.perf_counter() - start
            )

    def _process_batch(
        self, keys: np.ndarray, counts: np.ndarray | None
    ) -> None:
        """The uninstrumented :meth:`process_batch` body."""
        keys = np.asarray(keys, dtype=np.int64)
        n_items = keys.shape[0]
        if counts is None:
            counts = np.ones(n_items, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != keys.shape:
                raise ConfigurationError(
                    "keys and counts must have matching shapes, got "
                    f"{keys.shape} and {counts.shape}"
                )
            if n_items and int(counts.min()) < 0:
                raise NegativeCountError(
                    "use remove() for deletions (negative updates)"
                )
        if n_items == 0:
            return
        self.ops.items += n_items
        self.total_mass += int(counts.sum())

        # (1) pre-aggregate: one (key, chunk total) pair per distinct key.
        uniq, first_pos, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        totals = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(totals, inverse, counts)
        order = np.argsort(first_pos)  # first-appearance order
        uniq = uniq[order]
        totals = totals[order]

        # (2) one bulk probe; monitored keys aggregate in place.
        filter_ = self._filter
        hit_mask = filter_.add_many_if_present(uniq, totals)
        miss_positions = np.flatnonzero(~hit_mask)

        # (2b) free slots take new keys in first-appearance order.
        filled = 0
        while filled < miss_positions.shape[0] and not filter_.is_full:
            position = int(miss_positions[filled])
            key = int(uniq[position])
            total = int(totals[position])
            if self.overflow_mass:
                # Same rule as the scalar path: after a resize/merge the
                # back stage may hold mass for this key, so free-slot
                # entry carries its estimate as exchange-style history.
                prior = max(0, int(self._sketch.estimate(key)))
                filter_.insert(key, prior + total, prior)
            else:
                filter_.insert(key, total, 0)
            filled += 1
        sketch_positions = miss_positions[filled:]

        # Per-tuple overflow bookkeeping (True = the tuple's key
        # overflowed to the sketch), indexed like the sorted uniques so
        # ``inverse`` scatters it back to chunk order.
        overflowed = np.zeros(uniq.shape[0], dtype=bool)
        overflowed[order[sketch_positions]] = True
        per_tuple_miss = overflowed[inverse]
        self.miss_events += int(np.count_nonzero(per_tuple_miss))
        if self._miss_log is not None:
            self._miss_log.extend(per_tuple_miss.tolist())
        if sketch_positions.shape[0] == 0:
            return

        # (3) all missed mass enters the sketch in one weighted batch.
        sketch_keys = uniq[sketch_positions]
        sketch_totals = totals[sketch_positions]
        self.overflow_mass += int(sketch_totals.sum())
        self._sketch.update_batch_weighted(sketch_keys, sketch_totals)

        # (4) the policy picks the exchange candidates (one check per
        # distinct missed key, in first-appearance order — order-stable
        # at chunk granularity), driven by post-chunk estimates; the
        # elided per-key min reads are charged in bulk to keep the
        # operation record identical to the scalar loop.
        estimates = np.asarray(
            self._sketch.estimate_batch(sketch_keys), dtype=np.int64
        )
        threshold = filter_.peek_min_new_count()
        candidates = self.exchange_policy.batch_candidates(
            self, estimates, threshold
        )
        filter_.charge_min_queries(sketch_keys.shape[0] - candidates.shape[0])
        for position in candidates.tolist():
            self._run_exchanges(
                int(sketch_keys[position]), int(estimates[position])
            )

    def record_misses(self, enabled: bool = True) -> None:
        """Toggle the per-item hit/miss trace.

        When enabled, every processed tuple appends True (overflowed to
        the sketch) or False (absorbed by the filter) to the trace —
        the per-item schedule the event-driven pipeline simulator
        replays (:mod:`repro.hardware.event_pipeline`).
        """
        self._miss_log = [] if enabled else None

    def miss_trace(self) -> np.ndarray:
        """The recorded hit/miss trace as a boolean array."""
        if self._miss_log is None:
            raise ConfigurationError(
                "call record_misses() before processing the stream"
            )
        return np.array(self._miss_log, dtype=bool)

    # -- Algorithm 2: query processing ----------------------------------

    def query(self, key: int) -> int:
        """Frequency estimate: filter ``new_count``, else sketch estimate."""
        self.ops.items += 1
        new_count = self._filter.get_new_count(key)
        if new_count is not None:
            return new_count
        return self._sketch.estimate(key)

    #: Sketch-interface alias so metrics treat the synopsis uniformly.
    estimate = query

    def query_batch(self, keys) -> list[int]:
        """Point-query every key in order (vectorised Algorithm 2).

        One bulk filter probe answers the monitored keys; the misses go
        to the sketch in a single :meth:`FrequencySketch.estimate_batch`
        call.  Answers are identical to per-key :meth:`query`, and the
        operation record is charged once for the whole batch (``n``
        items, ``n`` filter probes, one batched sketch read per miss)
        instead of re-entering :meth:`query` per key.
        """
        if not isinstance(keys, np.ndarray):
            keys = list(keys)
        keys = np.asarray(keys, dtype=np.int64)
        n_items = keys.shape[0]
        if n_items == 0:
            return []
        self.ops.items += n_items
        hit_mask, answers = self._filter.lookup_many(keys)
        miss_mask = ~hit_mask
        if miss_mask.any():
            answers[miss_mask] = np.asarray(
                self._sketch.estimate_batch(keys[miss_mask]), dtype=np.int64
            )
        return [int(v) for v in answers]

    estimate_batch = query_batch

    # -- top-k (§7.2.2) --------------------------------------------------

    def top_k(self, k: int | None = None) -> list[tuple[int, int]]:
        """Top-k frequent items, directly from the filter.

        ``k`` defaults to the filter capacity — the paper's top-k query
        supports ``k`` up to ``|F|`` for strict (insert-only) streams.
        """
        if k is None:
            k = self._filter.capacity
        if k > self._filter.capacity:
            raise ConfigurationError(
                f"top-k limited to the filter capacity "
                f"{self._filter.capacity}, got k={k}"
            )
        return self._filter.top_k(k)

    # -- online re-tuning --------------------------------------------------

    def resize_filter(self, new_items: int) -> int:
        """Re-tune the front stage to ``new_items`` slots, online.

        The hook the :class:`~repro.runtime.adaptive.AdaptiveController`
        drives.  Growing keeps every monitored entry and adds free
        slots; shrinking keeps the ``new_items`` entries with the
        largest ``new_count`` and spills each evicted entry's exactly
        known resident mass (``new_count - old_count``) into the back
        stage — the same one-sided-safe flush an exchange eviction
        performs, so estimates stay over-estimates through any resize.
        The new filter shares the old one's operation record, keeping
        :meth:`combined_ops` continuous across resizes.

        Returns the number of entries spilled to the back stage (0 when
        growing or when the survivors all fit).
        """
        if new_items < 1:
            raise ConfigurationError(
                f"filter must keep at least 1 slot, got {new_items}"
            )
        new_items = int(new_items)
        old_filter = self._filter
        if new_items == old_filter.capacity:
            return 0
        entries = sorted(
            old_filter.entries(),
            key=lambda entry: entry.new_count,
            reverse=True,
        )
        kept, spilled = entries[:new_items], entries[new_items:]
        for entry in spilled:
            if entry.resident_count > 0:
                self._sketch.update(entry.key, entry.resident_count)
                self.overflow_mass += entry.resident_count
        new_filter = make_filter(
            self.filter_kind, new_items, ops=old_filter.ops
        )
        for entry in kept:
            new_filter.insert(entry.key, entry.new_count, entry.old_count)
        self._filter = new_filter
        if current_tracer() is not None:
            trace_point(
                "filter_resize",
                old_items=int(old_filter.capacity),
                new_items=new_items,
                spilled=len(spilled),
                items_seen=int(self.ops.items),
            )
        return len(spilled)

    # -- merging -----------------------------------------------------------

    def _is_pristine(self) -> bool:
        """True when this synopsis is indistinguishable from freshly built.

        No mass, no misses, no op counts, an empty filter, and an
        all-zero sketch table — the precondition for :meth:`merge`'s
        bit-exact identity fast paths.
        """
        if (
            self.total_mass != 0
            or self.overflow_mass != 0
            or self.miss_events != 0
            or self.ops != OpCounters()
        ):
            return False
        if next(iter(self._filter.entries()), None) is not None:
            return False
        return all(
            not array.any()
            for array in self._sketch.state().arrays.values()
        )

    def _adopt(self, other: "StagedSynopsis") -> None:
        """Take over ``other``'s state wholesale (pristine-self merge).

        ``other`` is consumed, per the :meth:`merge` contract — its
        filter, sketch and policy become this instance's by reference.
        """
        self._filter = other._filter
        self.filter_kind = other.filter_kind
        self._sketch = other._sketch
        self.exchange_policy = other.exchange_policy
        self.total_mass = other.total_mass
        self.overflow_mass = other.overflow_mass
        self.miss_events = other.miss_events
        self.ops = other.ops
        self._miss_log = other._miss_log

    def merge(self, other: "StagedSynopsis") -> None:
        """Absorb another staged synopsis over the same sketch geometry.

        Merging is two linear steps, each preserving the one-sided
        guarantee:

        1. the underlying sketches are added cell-wise (they must share
           dimensions and hash seeds — the natural setup for SPMD
           kernels that want one combined synopsis);
        2. every item monitored by the other filter re-enters this
           synopsis through the ordinary update path carrying exactly
           its *resident* mass (``new_count - old_count``) — the only
           part of its count not already inside the merged sketch.

        A filter answer is ``new_count``, which only covers the stream
        its own synopsis saw — after a sketch merge, the merged sketch
        can hold additional mass for a filter-resident key (its
        occurrences on the *other* stream), which a stale ``new_count``
        would miss.  Merging therefore flushes and rebuilds:

        1. both filters hash their exact resident masses
           (``new_count - old_count``) into their own sketches, making
           each sketch a complete one-sided summary of its stream;
        2. the sketches are added cell-wise, so the merged estimate is
           one-sided for *every* key over both streams;
        3. the filter is rebuilt over the union of both filters' keys
           with ``new_count = old_count = merged estimate`` — exactly
           the state an exchange would produce — keeping the highest
           estimates when the union exceeds the capacity.

        Heavy hitters re-absorb one round of sketch noise (as they do on
        any exchange); subsequent hits are again counted exactly.  The
        other synopsis's sketch is mutated by step 1 and the instance
        should be discarded.

        **Identity fast paths.**  Merging with a *pristine* synopsis (one
        whose state is indistinguishable from freshly constructed: no
        filter entries, zero masses, all-zero sketch cells) is an
        identity: a pristine ``other`` leaves ``self`` untouched, and a
        pristine ``self`` adopts ``other``'s state wholesale.  Both
        directions are bit-exact — no flush, no filter rebuild — which
        is what lets a disjoint decomposition (each key owned by exactly
        one side, as in shard-per-worker parallel ingest) recombine into
        a result bit-identical to a single sequential ingest.
        """
        self_sketch = self._sketch
        merge_op = getattr(self_sketch, "merge", None)
        if merge_op is None:
            raise ConfigurationError(
                f"{type(self_sketch).__name__} does not support merging"
            )
        if not self_sketch.is_mergeable_with(other.sketch):
            raise ConfigurationError(
                "sketches must share dimensions and hash seeds to merge"
            )
        if other._is_pristine():
            return
        if self._is_pristine():
            self._adopt(other)
            return
        for side in (self, other):
            for entry in side.filter.entries():
                if entry.resident_count > 0:
                    side.sketch.update(entry.key, entry.resident_count)
                    side.overflow_mass += entry.resident_count
        merge_op(other.sketch)

        filter_ = self._filter
        candidates = {entry.key for entry in filter_.entries()}
        candidates.update(entry.key for entry in other.filter.entries())
        estimates = {key: self_sketch.estimate(key) for key in candidates}
        for entry in filter_.entries():
            filter_.set_counts(
                entry.key, estimates[entry.key], estimates[entry.key]
            )
        for key, estimate in sorted(
            estimates.items(), key=lambda pair: pair[1], reverse=True
        ):
            if filter_.get_counts(key) is not None:
                continue
            if not filter_.is_full:
                filter_.insert(key, estimate, estimate)
            elif estimate > filter_.min_new_count():
                filter_.replace_min(key, estimate, estimate)
                self.ops.exchanges += 1
        self.total_mass += other.total_mass
        self.overflow_mass += other.overflow_mass

    def heavy_hitters(self, threshold: int) -> list[tuple[int, int]]:
        """Filter residents whose estimate reaches ``threshold``.

        The heavy-hitter query the paper's applications (load balancing,
        DDoS detection) run on top of frequency estimation: items with
        frequency at least ``threshold``.  Any item that frequent is in
        the filter once the stream is warm (it overtakes the minimum),
        so the filter contents are the candidate set; answers are
        (key, estimate) pairs sorted by estimate, descending.
        """
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        found = [
            (entry.key, entry.new_count)
            for entry in self._filter.entries()
            if entry.new_count >= threshold
        ]
        found.sort(key=lambda pair: pair[1], reverse=True)
        return found

    # -- deletions (Appendix A) -------------------------------------------

    def remove(self, key: int, amount: int = 1) -> None:
        """Negative-count update of magnitude ``amount`` (strict model).

        Follows Appendix A: a filter-resident item first consumes its
        exactly-known resident mass (``new_count - old_count``); only the
        spill beyond it touches the sketch.  No exchange is initiated on
        the deletion path.
        """
        if amount < 0:
            raise NegativeCountError("remove() expects a positive amount")
        self.ops.items += 1
        self.total_mass -= amount
        counts = self._filter.get_counts(key)
        if counts is None:
            self._sketch.update(key, -amount)
            return
        new_count, old_count = counts
        if new_count - amount < 0:
            raise NegativeCountError(
                f"removing {amount} from key {key} whose estimate is "
                f"{new_count}"
            )
        resident = new_count - old_count
        if resident >= amount:
            self._filter.set_counts(key, new_count - amount, old_count)
            return
        spill = amount - resident
        self._sketch.update(key, -spill)
        self._filter.set_counts(key, new_count - amount, old_count - spill)

    # -- synopsis protocol -------------------------------------------------

    SYNOPSIS_KIND = "staged"

    def state(self) -> SynopsisState:
        """Filter entries, aggregate masses, and the nested backend state.

        Works for *any* filter kind (the filter contributes its entries)
        and any backend that implements the synopsis state protocol —
        backends without it raise a typed
        :class:`~repro.errors.StreamFormatError`.
        """
        sketch_state = synopsis_state_of(self._sketch)
        keys, new_counts, old_counts = self._filter.state_entries()
        arrays = {
            "filter_keys": keys,
            "filter_new": new_counts,
            "filter_old": old_counts,
        }
        arrays.update(prefix_arrays("sketch", sketch_state.arrays))
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "filter_items": self._filter.capacity,
                "filter_kind": self.filter_kind,
                "max_exchanges_per_update": self.max_exchanges_per_update,
            },
            arrays=arrays,
            extra={
                "total_mass": self.total_mass,
                "overflow_mass": self.overflow_mass,
                "miss_events": self.miss_events,
                "exchanges": self.ops.exchanges,
                "sketch": pack_nested(sketch_state),
            },
        )

    def _restore_state(self, state: SynopsisState) -> None:
        """Shared :meth:`from_state` tail: filter entries and tallies."""
        self._filter.restore_entries(
            state.arrays["filter_keys"],
            state.arrays["filter_new"],
            state.arrays["filter_old"],
        )
        self.total_mass = int(state.extra["total_mass"])
        self.overflow_mass = int(state.extra["overflow_mass"])
        self.miss_events = int(state.extra["miss_events"])
        self.ops.exchanges = int(state.extra["exchanges"])

    @staticmethod
    def _sketch_from_state(state: SynopsisState) -> FrequencySketch:
        """Rebuild the nested back stage recorded by :meth:`state`."""
        from repro.synopses.spec import resolve_kind

        sketch_state = unpack_nested(
            state.extra["sketch"], state.arrays, "sketch"
        )
        return resolve_kind(sketch_state.kind).from_state(sketch_state)

    # -- operation accounting ---------------------------------------------

    def combined_ops(self) -> OpCounters:
        """Driver + filter + sketch operations, merged."""
        merged = self.ops.snapshot()
        merged.merge(self._filter.ops)
        merged.merge(self._sketch.ops)
        return merged

    def stage_ops(self) -> tuple[OpCounters, OpCounters]:
        """(filter-core, sketch-core) operation split for the pipeline model.

        The filter core carries the per-item loop and all filter work; the
        sketch core carries hashing, cell traffic and exchange bookkeeping.
        """
        stage0 = self._filter.ops.snapshot()
        stage0.items = self.ops.items
        stage1 = self._sketch.ops.snapshot()
        stage1.exchanges = self.ops.exchanges
        return stage0, stage1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}"
            f"(filter={self.filter_kind}x{self._filter.capacity}, "
            f"sketch={self._sketch!r}, bytes={self.size_bytes})"
        )


def _kind_of(front: Filter) -> str:
    """Reverse-map a filter instance to its registry kind name."""
    from repro.core.filters.factory import FILTER_KINDS

    for kind, filter_cls in FILTER_KINDS.items():
        if type(front) is filter_cls:
            return kind
    return "custom"
