"""ASketch: the augmented sketch of the paper (Algorithms 1 and 2).

An :class:`ASketch` is a small filter in front of a sketch.  Each incoming
tuple ``(k, u)`` first probes the filter:

1. hit — ``u`` is aggregated into the item's ``new_count`` (exact, cheap);
2. miss with a free slot — the item starts being monitored with
   ``new_count = u``, ``old_count = 0``;
3. miss on a full filter — the sketch is updated with ``(k, u)``; if the
   resulting estimate exceeds the smallest ``new_count`` in the filter, at
   most one *exchange* runs: ``k`` enters the filter carrying
   ``new_count = old_count = estimate`` (nothing is removed from the
   sketch — removing an over-estimate would break the one-sided
   guarantee, Example 1 of the paper), and the evicted minimum item's
   resident mass ``new_count - old_count`` is hashed into the sketch.

Queries (Algorithm 2) return the filter's ``new_count`` on a hit and the
sketch estimate otherwise; for insert-only streams the result is always an
over-estimate of the true count, with *exact* counts for items that never
left the filter.

Space accounting follows §4 exactly: for a total budget ``S`` and a filter
of ``s_f`` bytes, the underlying sketch keeps its ``w`` rows but its row
width shrinks to ``h' = h - s_f / w`` (equivalently, the sketch gets
``S - s_f`` bytes), so ASketch and the baselines always compare at equal
total space.

Deletions (negative updates, Appendix A) are supported under the strict
turnstile model via :meth:`~repro.core.staged.StagedSynopsis.remove`.

Since the staged-synopsis refactor, the whole mechanism — ingest,
batching, exchanges, queries, merging, persistence, re-tuning — lives in
:class:`~repro.core.staged.StagedSynopsis`; this class only assembles
the paper's default stages from a space budget (and keeps the paper's
constructor and kind name), so it stays bit-identical to the
pre-refactor monolith while any other front/back pairing reuses the
same core.
"""

from __future__ import annotations

from repro.core.filters import make_filter
from repro.core.staged import ClassicExchange, StagedSynopsis
from repro.errors import ConfigurationError
from repro.sketches.base import FrequencySketch
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.fcm import FrequencyAwareCountMin
from repro.synopses.protocol import SynopsisState


def _default_sketch(
    backend: str,
    sketch_bytes: int,
    num_hashes: int,
    seed: int,
) -> FrequencySketch:
    """Build the sketch for the part of the budget the filter leaves."""
    if backend == "count-min":
        return CountMinSketch(
            num_hashes=num_hashes, total_bytes=sketch_bytes, seed=seed
        )
    if backend == "fcm":
        # ASketch-FCM (paper §7.2.1): the filter already separates the
        # heavy items, so the backend runs the paper's "modified" FCM
        # without the (redundant) MG classifier.
        return FrequencyAwareCountMin(
            num_hashes=num_hashes,
            total_bytes=sketch_bytes,
            use_mg_counter=False,
            seed=seed,
        )
    if backend == "count-sketch":
        return CountSketch(
            num_hashes=num_hashes, total_bytes=sketch_bytes, seed=seed
        )
    if backend == "sf-sketch":
        from repro.sketches.sf_sketch import SFSketch

        return SFSketch(
            num_hashes=num_hashes, total_bytes=sketch_bytes, seed=seed
        )
    if backend == "salsa-cm":
        from repro.sketches.salsa import SalsaCountMin

        return SalsaCountMin(
            num_hashes=num_hashes, total_bytes=sketch_bytes, seed=seed
        )
    raise ConfigurationError(
        f"unknown sketch backend {backend!r}; choose from "
        "'count-min', 'fcm', 'count-sketch', 'sf-sketch', 'salsa-cm'"
    )


class ASketch(StagedSynopsis):
    """Augmented sketch: filter + sketch with the exchange protocol.

    Parameters
    ----------
    total_bytes:
        Total synopsis budget shared by filter and sketch (ignored when an
        explicit ``sketch`` is supplied).
    filter_items:
        Filter capacity in items (``|F|``; the paper's default is 32).
    filter_kind:
        One of ``"vector"``, ``"strict-heap"``, ``"relaxed-heap"``
        (default, as in all of §7), ``"stream-summary"``.
    sketch:
        An already-built sketch to augment; mutually exclusive with
        ``total_bytes``.
    sketch_backend:
        ``"count-min"`` (default), ``"fcm"`` (ASketch-FCM),
        ``"count-sketch"``, ``"sf-sketch"`` (slim stage answers within
        the byte budget; its fat helper is working memory), or
        ``"salsa-cm"`` (byte-sized counters with on-demand merging).
    num_hashes:
        ``w`` for the underlying sketch (kept equal to the plain sketch's
        so the ``e^-w`` error probability matches, §4).
    max_exchanges_per_update:
        The paper fixes this to 1 ("we always restrict ourselves to at
        most one exchange"); larger values enable the cascading-exchange
        ablation and are *not* recommended (they add error).
    seed:
        Hash seeding for the underlying sketch.
    """

    SYNOPSIS_KIND = "asketch"

    def __init__(
        self,
        total_bytes: int | None = None,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        *,
        sketch: FrequencySketch | None = None,
        sketch_backend: str = "count-min",
        num_hashes: int = 8,
        max_exchanges_per_update: int = 1,
        seed: int = 0,
    ) -> None:
        if (total_bytes is None) == (sketch is None):
            raise ConfigurationError(
                "specify exactly one of total_bytes or sketch"
            )
        policy = ClassicExchange(max_exchanges_per_update)
        front = make_filter(filter_kind, filter_items)
        if sketch is None:
            assert total_bytes is not None
            sketch_bytes = total_bytes - front.size_bytes
            if sketch_bytes <= 0:
                raise ConfigurationError(
                    f"filter of {front.size_bytes} bytes exceeds the "
                    f"total budget of {total_bytes} bytes"
                )
            sketch = _default_sketch(
                sketch_backend, sketch_bytes, num_hashes, seed
            )
        super().__init__(front, sketch, policy, filter_kind=filter_kind)

    @classmethod
    def from_state(cls, state: SynopsisState) -> "ASketch":
        asketch = cls(
            sketch=cls._sketch_from_state(state),
            filter_items=state.params["filter_items"],
            filter_kind=state.params["filter_kind"],
            max_exchanges_per_update=state.params["max_exchanges_per_update"],
        )
        asketch._restore_state(state)
        return asketch
