"""The paper's primary contribution: ASketch and its filter stage.

* :class:`~repro.core.asketch.ASketch` — Algorithms 1 & 2 of the paper
  (stream processing with filter/sketch exchange, query processing) plus
  the Appendix A deletion support and top-k queries.
* :mod:`repro.core.filters` — the four filter implementations compared in
  §6.1/§7.5: Vector, Strict-Heap, Relaxed-Heap, Stream-Summary.
* :mod:`repro.core.staged` — the staged-synopsis core the ASketch (and
  every second-generation variant) is built on: a pluggable front
  stage, back stage, and exchange-policy strategy.
* :mod:`repro.core.analysis` — the closed-form model of §4 (Table 2,
  Theorem 1, Zipf filter selectivity) and Appendix C.2's exchange bounds.
"""

from repro.core.asketch import ASketch
from repro.core.kernel_group import KernelGroup
from repro.core.staged import ClassicExchange, ExchangePolicy, StagedSynopsis
from repro.core.window import SlidingWindowASketch
from repro.core.filters import (
    Filter,
    RelaxedHeapFilter,
    StreamSummaryFilter,
    StrictHeapFilter,
    VectorFilter,
    make_filter,
)

__all__ = [
    "ASketch",
    "ClassicExchange",
    "ExchangePolicy",
    "Filter",
    "KernelGroup",
    "SlidingWindowASketch",
    "StagedSynopsis",
    "RelaxedHeapFilter",
    "StreamSummaryFilter",
    "StrictHeapFilter",
    "VectorFilter",
    "make_filter",
]
