"""SPMD kernel group: one ASketch per core, merged at query time (§6.3).

The paper's SPMD deployment runs ASketch as a sequential counting kernel
on every core, each consuming its *own* stream (the multi-stream
scenario); because frequency estimation is commutative, a point query
asks every kernel and sums the responses, "quite inexpensive" for point
queries.  This module implements that deployment functionally — the
actual core-level speedup is modeled by :class:`repro.hardware.spmd.
SpmdModel`; here the semantics (partitioning, query merging, combined
top-k) are real and tested.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters


class KernelGroup:
    """A fixed set of independent ASketch kernels with merged queries.

    Parameters
    ----------
    kernels:
        Number of kernels (cores).  Each kernel gets its own hash seeds,
        so per-kernel collisions are independent.
    total_bytes, filter_items, filter_kind, num_hashes, seed:
        Forwarded to each :class:`~repro.core.asketch.ASketch`; every
        kernel receives the full ``total_bytes`` budget, as in the
        paper's Figure 13 setup ("each synopsis size is 128KB").
    """

    def __init__(
        self,
        kernels: int,
        total_bytes: int,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        num_hashes: int = 8,
        seed: int = 0,
    ) -> None:
        if kernels < 1:
            raise ConfigurationError(f"kernels must be >= 1, got {kernels}")
        self._kernels = [
            ASketch(
                total_bytes=total_bytes,
                filter_items=filter_items,
                filter_kind=filter_kind,
                num_hashes=num_hashes,
                seed=seed * 7919 + index,
            )
            for index in range(kernels)
        ]

    def __len__(self) -> int:
        return len(self._kernels)

    @property
    def kernels(self) -> list[ASketch]:
        """The per-core kernels (read access)."""
        return list(self._kernels)

    # -- ingestion --------------------------------------------------------

    def process_stream_on(self, kernel_index: int, keys: np.ndarray) -> None:
        """Feed one core's stream to its kernel (the multi-stream model)."""
        self._kernels[kernel_index].process_stream(keys)

    def scatter_stream(self, keys: np.ndarray) -> None:
        """Round-robin one stream across the kernels.

        A convenience for single-source deployments; the paper's setup
        has genuinely separate streams, which ``process_stream_on``
        models directly.
        """
        for index, kernel in enumerate(self._kernels):
            kernel.process_stream(keys[index :: len(self._kernels)])

    # -- queries ----------------------------------------------------------

    def query(self, key: int) -> int:
        """Merged point query: the sum of every kernel's estimate.

        Sums of one-sided over-estimates are one-sided over-estimates of
        the summed true counts, so the combined answer keeps the
        guarantee.
        """
        return sum(kernel.query(key) for kernel in self._kernels)

    def query_batch(self, keys: Iterable[int]) -> list[int]:
        """Merged point queries for many keys."""
        return [self.query(int(key)) for key in keys]

    estimate = query
    estimate_batch = query_batch

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """Merged top-k: union the per-kernel filters, re-query, rank.

        Every globally heavy item is heavy on at least one kernel (its
        counts are split across kernels but the filters adapt per
        kernel), so the union of filter contents is a sound candidate
        set.
        """
        candidates = set()
        for kernel in self._kernels:
            candidates.update(
                key for key, _ in kernel.top_k(kernel.filter.capacity)
            )
        ranked = sorted(
            ((key, self.query(key)) for key in candidates),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return ranked[:k]

    # -- accounting -------------------------------------------------------

    def combined_ops(self) -> OpCounters:
        """Sum of all kernels' operation records (drives the SPMD model)."""
        merged = OpCounters()
        for kernel in self._kernels:
            merged.merge(kernel.combined_ops())
        return merged

    @property
    def total_mass(self) -> int:
        """Aggregate stream mass across all kernels."""
        return sum(kernel.total_mass for kernel in self._kernels)
