"""Closed-form analysis from the paper: §4, Theorem 1, Appendix C.

Everything in Table 2 (the analytic Count-Min vs ASketch comparison), the
Zipf filter-selectivity curve of Figure 3 / Figure 17 ("predicted"), the
Theorem 1 error-increase bound, and the Appendix C.2 exchange-count
estimates, as plain functions over the paper's symbols:

``w``  number of hash functions, ``h`` range of each hash function,
``s_f`` filter size in bytes, ``N`` aggregate stream count,
``N1`` mass absorbed by the filter, ``N2 = N - N1`` mass reaching the
sketch, ``t_s``/``t_f`` sketch/filter per-item times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


# -- Zipf machinery --------------------------------------------------------

def zipf_weights(skew: float, n_distinct: int) -> np.ndarray:
    """Unnormalised Zipf weights ``rank^-skew`` for ranks 1..n_distinct."""
    if n_distinct < 1:
        raise ConfigurationError(f"n_distinct must be >= 1, got {n_distinct}")
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    return ranks ** (-float(skew))


def zipf_probabilities(skew: float, n_distinct: int) -> np.ndarray:
    """Normalised Zipf(skew) probabilities over n_distinct ranks."""
    weights = zipf_weights(skew, n_distinct)
    return weights / weights.sum()


def zipf_top_k_mass(skew: float, n_distinct: int, k: int) -> float:
    """Fraction of the stream mass carried by the k most frequent items."""
    weights = zipf_weights(skew, n_distinct)
    k = min(max(k, 0), n_distinct)
    if k == 0:
        return 0.0
    return float(weights[:k].sum() / weights.sum())


def predicted_filter_selectivity(
    skew: float, n_distinct: int, filter_items: int
) -> float:
    """Predicted ``N2/N`` for a perfect filter holding the true top items.

    This is the closed form behind Figure 3 (and the "predicted" series of
    Figure 17): filter selectivity is one minus the mass of the top
    ``|F|`` ranks of the Zipf distribution.
    """
    return 1.0 - zipf_top_k_mass(skew, n_distinct, filter_items)


# -- Count-Min and ASketch error/latency forms (Table 2) ------------------

def count_min_error_bound(row_width: int, total_count: int) -> float:
    """Count-Min expected-error bound ``(e/h) * N`` (holds w.p. 1-e^-w)."""
    if row_width < 1:
        raise ConfigurationError(f"row_width must be >= 1, got {row_width}")
    return (math.e / row_width) * total_count


def asketch_error_bound(
    row_width: int,
    num_hashes: int,
    filter_bytes: int,
    total_count: int,
    sketch_count: int,
) -> float:
    """ASketch expected error ``(e / (h - s_f/w)) * N2 * (N2/N)``.

    The frequency-weighted expected error of Table 2: only the ``N2/N``
    fraction of (frequency-sampled) queries misses the filter, and those
    hits read a sketch holding only ``N2`` mass in ``h - s_f/w`` columns.
    """
    reduced_width = row_width - filter_bytes / num_hashes
    if reduced_width <= 0:
        raise ConfigurationError(
            "filter consumes the entire sketch width"
        )
    if total_count == 0:
        return 0.0
    return (
        (math.e / reduced_width) * sketch_count * (sketch_count / total_count)
    )


def theorem1_error_increase_bound(
    row_width: int, num_hashes: int, filter_bytes: int, total_count: int
) -> float:
    """Theorem 1: bound on the error increase for sketch-resident items.

    ``dE <= (e * s_f / (w * h * (h - s_f/w))) * N`` with probability at
    least ``1 - e^-w`` — the price low-frequency items pay for the
    filter's space.
    """
    reduced_width = row_width - filter_bytes / num_hashes
    if reduced_width <= 0:
        raise ConfigurationError("filter consumes the entire sketch width")
    return (
        math.e * filter_bytes / (num_hashes * row_width * reduced_width)
    ) * total_count


@dataclass(frozen=True)
class Table2Row:
    """One column of the paper's Table 2, evaluated numerically."""

    method: str
    frequency_estimation_time: float
    stream_processing_throughput: float
    frequency_estimation_error: float
    error_probability: float
    supported_queries: tuple[str, ...]


def table2_comparison(
    num_hashes: int,
    row_width: int,
    filter_bytes: int,
    total_count: int,
    sketch_count: int,
    sketch_item_time: float,
    filter_item_time: float,
) -> list[Table2Row]:
    """Evaluate Table 2's analytic comparison for concrete parameters.

    ``sketch_item_time`` (``t_s``) and ``filter_item_time`` (``t_f``) are
    in seconds per item; selectivity is ``sketch_count / total_count``.
    """
    selectivity = sketch_count / total_count if total_count else 0.0
    error_probability = math.exp(-num_hashes)
    cm_time = sketch_item_time
    asketch_time = filter_item_time + selectivity * sketch_item_time
    return [
        Table2Row(
            method="Count-Min",
            frequency_estimation_time=cm_time,
            stream_processing_throughput=1.0 / cm_time,
            frequency_estimation_error=count_min_error_bound(
                row_width, total_count
            ),
            error_probability=error_probability,
            supported_queries=("frequency-estimation",),
        ),
        Table2Row(
            method="ASketch",
            frequency_estimation_time=asketch_time,
            stream_processing_throughput=1.0 / asketch_time,
            frequency_estimation_error=asketch_error_bound(
                row_width, num_hashes, filter_bytes, total_count, sketch_count
            ),
            error_probability=error_probability,
            supported_queries=("frequency-estimation", "top-k"),
        ),
    ]


# -- Exchange-count estimates (Appendix C.2) --------------------------------

def expected_exchanges_uniform(
    stream_size: int, filter_items: int, row_width: int
) -> float:
    """Average-case exchange count on a uniform stream: ``N * |F| / h``.

    Appendix C.2's average-case construction: with no filter hits, each
    batch of ``|F|`` exchanges requires every one of the ``h`` cells of a
    row to gain one count.
    """
    if row_width < 1:
        raise ConfigurationError(f"row_width must be >= 1, got {row_width}")
    return stream_size * filter_items / row_width


def best_case_exchanges_uniform(stream_size: int, row_width: int) -> float:
    """Best-case exchange count on a uniform stream: ``N / h``."""
    if row_width < 1:
        raise ConfigurationError(f"row_width must be >= 1, got {row_width}")
    return stream_size / row_width


def worst_case_exchanges_no_collisions(stream_size: int) -> int:
    """Lemma 2: without sketch collisions, at most ``N/2`` exchanges."""
    return stream_size // 2


def worst_case_exchanges_with_collisions(stream_size: int) -> int:
    """Lemma 3: with collisions, exchanges are bounded by ``N``."""
    return stream_size


# -- Filter sizing (the §4 trade-off summary, made actionable) -------------

def modeled_asketch_cycles_per_item(
    filter_items: int,
    skew: float,
    n_distinct: int,
    total_bytes: int,
    num_hashes: int = 8,
    cost_model=None,
) -> float:
    """Modeled per-item cycles of an ASketch with a given filter size.

    Combines the closed-form Zipf selectivity with the cost model's
    prices: every item pays the per-item loop and the SIMD probe over
    ``filter_items`` ids; the overflowing fraction additionally pays the
    ``w``-row sketch update.  This is the analytic form of Figure 15(a).
    """
    from repro.hardware.costs import CostModel, residency
    from repro.simd.engine import simd_probe_blocks

    model = cost_model or CostModel()
    if filter_items < 0:
        raise ConfigurationError(
            f"filter_items must be >= 0, got {filter_items}"
        )
    filter_bytes = filter_items * 12
    sketch_bytes = total_bytes - filter_bytes
    if sketch_bytes < num_hashes * 4:
        raise ConfigurationError(
            "filter consumes the entire synopsis budget"
        )
    if filter_items == 0:
        selectivity = 1.0
        probe_cycles = 0.0
    else:
        selectivity = predicted_filter_selectivity(
            skew, n_distinct, filter_items
        )
        probe_cycles = (
            simd_probe_blocks(filter_items) * model.cycles_per_probe_block
        )
    cell_cost = model.cycles_per_cell[residency(sketch_bytes)]
    sketch_cycles = num_hashes * (model.cycles_per_hash + cell_cost)
    return model.cycles_per_item + probe_cycles + selectivity * sketch_cycles


def optimal_filter_size(
    skew: float,
    n_distinct: int,
    total_bytes: int,
    num_hashes: int = 8,
    candidates: tuple[int, ...] = (0, 8, 16, 32, 64, 128, 256, 512, 1024),
    cost_model=None,
) -> int:
    """Throughput-optimal filter size under the §4 model.

    Evaluates :func:`modeled_asketch_cycles_per_item` over candidate
    sizes and returns the cheapest — the analytic answer to the paper's
    "the filter must consume a small space in order to achieve the
    maximum throughput gain".  At Zipf 1.5 over large domains this lands
    on the 16-64 item band the paper (and Figure 15) uses.
    """
    viable = [
        size
        for size in candidates
        if total_bytes - size * 12 >= num_hashes * 4
    ]
    if not viable:
        raise ConfigurationError("no candidate filter size fits the budget")
    return min(
        viable,
        key=lambda size: modeled_asketch_cycles_per_item(
            size, skew, n_distinct, total_bytes, num_hashes, cost_model
        ),
    )


# -- Throughput model (the t_f + selectivity * t_s identity of §4) ---------

def predicted_update_time(
    filter_item_time: float, sketch_item_time: float, selectivity: float
) -> float:
    """ASketch per-item time ``t_f + selectivity * t_s`` (ignoring the
    exchange term, which §5/Figure 9 measure to be negligible)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ConfigurationError(
            f"selectivity must be in [0, 1], got {selectivity}"
        )
    return filter_item_time + selectivity * sketch_item_time
