"""Sliding-window frequency estimation via turnstile deletions.

An extension enabled by the paper's Appendix A: because ASketch supports
strict-turnstile negative updates, an *exact* count-based sliding window
follows directly — when tuple ``t`` arrives, the tuple that fell out of
the window is removed with ``remove()``.  Estimates then cover exactly
the last ``window_size`` tuples with the usual one-sided guarantee, and
top-k over the window comes straight from the filter.

The window buffer itself (a ring of the last ``window_size`` keys) costs
O(window) memory — the synopsis does not replace the buffer (no
small-space sliding-window sketch can be exact); what it buys is O(1)
queries, filter-resident heavy hitters, and constant-time maintenance
per arrival, versus recounting the buffer on every query.
"""

from __future__ import annotations

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    unpack_nested,
)


class SlidingWindowASketch:
    """ASketch over the most recent ``window_size`` tuples.

    Parameters
    ----------
    window_size:
        Number of most-recent tuples the synopsis covers.
    total_bytes, filter_items, filter_kind, num_hashes, seed:
        Forwarded to the inner :class:`~repro.core.asketch.ASketch`.
    """

    def __init__(
        self,
        window_size: int,
        total_bytes: int,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        num_hashes: int = 8,
        seed: int = 0,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {window_size}"
            )
        self.window_size = int(window_size)
        self._asketch = ASketch(
            total_bytes=total_bytes,
            filter_items=filter_items,
            filter_kind=filter_kind,
            num_hashes=num_hashes,
            seed=seed,
        )
        self._ring = np.zeros(self.window_size, dtype=np.int64)
        self._position = 0
        self._count = 0

    @property
    def asketch(self) -> ASketch:
        """The inner synopsis (read access)."""
        return self._asketch

    def __len__(self) -> int:
        """Number of tuples currently inside the window."""
        return min(self._count, self.window_size)

    @property
    def is_saturated(self) -> bool:
        """Whether the window has filled (arrivals now evict)."""
        return self._count >= self.window_size

    # -- ingestion --------------------------------------------------------

    def process(self, key: int) -> None:
        """Admit one tuple, evicting the tuple that left the window."""
        if self.is_saturated:
            expired = int(self._ring[self._position])
            self._asketch.remove(expired, 1)
        self._ring[self._position] = key
        self._position = (self._position + 1) % self.window_size
        self._count += 1
        self._asketch.update(key, 1)

    def process_stream(self, keys: np.ndarray) -> None:
        """Admit a key array in order."""
        process = self.process
        for key in keys.tolist():
            process(key)

    def update(self, key: int, amount: int = 1) -> int:
        """Admit ``amount`` arrivals of ``key`` (synopsis protocol entry).

        A sliding window counts *arrivals*, so a weighted update is
        ``amount`` consecutive admissions — each may evict an expired
        tuple.  Returns the post-update window estimate.
        """
        if amount < 1:
            raise ConfigurationError(
                f"a sliding window admits arrivals one at a time; "
                f"amount must be >= 1, got {amount}"
            )
        for _ in range(int(amount)):
            self.process(key)
        return self.query(key)

    # -- queries ----------------------------------------------------------

    def query(self, key: int) -> int:
        """One-sided estimate of the key's count inside the window."""
        return self._asketch.query(key)

    estimate = query

    def query_batch(self, keys) -> list[int]:
        """Window-scoped point queries for many keys."""
        return self._asketch.query_batch(keys)

    estimate_batch = query_batch

    def top_k(self, k: int | None = None) -> list[tuple[int, int]]:
        """Top-k frequent items of the current window (from the filter)."""
        return self._asketch.top_k(k)

    def window_contents(self) -> np.ndarray:
        """The keys currently inside the window, oldest first."""
        if not self.is_saturated:
            return self._ring[: self._count].copy()
        return np.concatenate(
            [self._ring[self._position :], self._ring[: self._position]]
        )

    # -- synopsis protocol -------------------------------------------------

    SYNOPSIS_KIND = "sliding-window-asketch"

    @property
    def size_bytes(self) -> int:
        """Synopsis + window buffer footprint (the ring is O(window))."""
        return self._asketch.size_bytes + self._ring.nbytes

    def state(self) -> SynopsisState:
        """Ring buffer, cursor, and the nested inner-ASketch state."""
        inner = self._asketch.state()
        arrays = {"ring": self._ring.copy()}
        arrays.update(prefix_arrays("asketch", inner.arrays))
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={"window_size": self.window_size},
            arrays=arrays,
            extra={
                "position": self._position,
                "count": self._count,
                "asketch": pack_nested(inner),
            },
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "SlidingWindowASketch":
        inner = unpack_nested(
            state.extra["asketch"], state.arrays, "asketch"
        )
        window = cls.__new__(cls)
        window.window_size = int(state.params["window_size"])
        window._asketch = ASketch.from_state(inner)
        window._ring = np.asarray(
            state.arrays["ring"], dtype=np.int64
        ).copy()
        window._position = int(state.extra["position"])
        window._count = int(state.extra["count"])
        return window

    def is_mergeable_with(self, other: object) -> bool:
        """Sliding windows never merge — arrival order is lost."""
        return False

    def merge(self, other: object) -> None:
        """Always raises: two windows cannot be combined losslessly.

        The synopsis covers *the most recent* ``window_size`` tuples;
        merging two windows would need the global interleaving of both
        streams' arrival times, which neither ring records.
        """
        raise ConfigurationError(
            "sliding-window synopses cannot be merged: the window is "
            "defined by global arrival order, which a merge cannot "
            "reconstruct"
        )
