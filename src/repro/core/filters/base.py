"""The filter interface ASketch programs against.

A filter monitors up to ``capacity`` items.  Each monitored item carries
two counts (paper §5):

* ``new_count`` — the item's estimated total frequency (an over-estimate
  once the item has ever been through the sketch, exact otherwise);
* ``old_count`` — the estimate the item carried when it last *entered*
  the filter; ``new_count - old_count`` is therefore the exact mass
  accumulated while resident, and is the only part hashed back into the
  sketch on eviction.

Space accounting: each implementation declares ``BYTES_PER_SLOT`` — 12
bytes for the three-array layouts (id, new_count, old_count as 32-bit
values) and 100 bytes for Stream-Summary (pointers + hash entry).  For a
fixed filter byte budget this reproduces Table 6's observation that
Stream-Summary monitors 4 items where the arrays monitor 32.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.costs import OpCounters
from repro.kernels import active_backend
from repro.simd.engine import simd_probe_blocks


@dataclass(frozen=True)
class FilterEntry:
    """One monitored item as seen through :meth:`Filter.entries`."""

    key: int
    new_count: int
    old_count: int

    @property
    def resident_count(self) -> int:
        """Mass accumulated while in the filter (exact)."""
        return self.new_count - self.old_count


class Filter(ABC):
    """Bounded monitor of high-frequency items with two counts per item."""

    #: Logical bytes consumed per monitored slot (space accounting).
    BYTES_PER_SLOT: int = 12

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"filter capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self.ops = ops if ops is not None else OpCounters()
        #: SIMD probe blocks one lookup over this capacity costs — the
        #: unit the bulk membership path charges per probed key.
        self._probe_blocks = simd_probe_blocks(self.capacity)

    # -- size -------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Logical filter size: ``capacity * BYTES_PER_SLOT``."""
        return self.capacity * self.BYTES_PER_SLOT

    @classmethod
    def capacity_for_bytes(cls, budget_bytes: int) -> int:
        """Monitored items affordable within a byte budget."""
        capacity = budget_bytes // cls.BYTES_PER_SLOT
        if capacity < 1:
            raise ConfigurationError(
                f"{budget_bytes} bytes cannot hold one "
                f"{cls.BYTES_PER_SLOT}-byte slot"
            )
        return capacity

    # -- required operations ----------------------------------------------

    @abstractmethod
    def __len__(self) -> int:
        """Number of currently monitored items."""

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity

    @abstractmethod
    def add_if_present(self, key: int, amount: int) -> bool:
        """If ``key`` is monitored, add ``amount`` to its new_count.

        Returns True on a hit.  This is Algorithm 1 lines 1-3 and the
        filter's hot path; implementations charge their lookup cost
        (SIMD probe blocks or hash-table ops) here.
        """

    @abstractmethod
    def insert(self, key: int, new_count: int, old_count: int) -> None:
        """Start monitoring a new key (the filter must not be full).

        Raises :class:`CapacityError` if full or the key is already
        present — the ASketch update path guards both.
        """

    @abstractmethod
    def get_counts(self, key: int) -> tuple[int, int] | None:
        """(new_count, old_count) of a monitored key, else None."""

    @abstractmethod
    def min_new_count(self) -> int:
        """new_count of the minimum item (Algorithm 1 line 9).

        All four implementations track the exact minimum; they differ
        only in what the tracking costs (a cached scan for Vector, the
        heap root for the heaps, the first bucket for Stream-Summary).
        """

    @abstractmethod
    def replace_min(
        self, key: int, new_count: int, old_count: int
    ) -> FilterEntry:
        """Evict the tracked minimum item and monitor ``key`` instead.

        Returns the evicted entry (whose ``resident_count`` the caller
        hashes into the sketch).  This is the exchange of Algorithm 1
        lines 10-16.
        """

    @abstractmethod
    def set_counts(self, key: int, new_count: int, old_count: int) -> None:
        """Overwrite both counts of a monitored key (deletion support).

        Counts may *decrease* here; heap implementations restore their
        invariants accordingly.
        """

    @abstractmethod
    def entries(self) -> list[FilterEntry]:
        """All monitored entries (order unspecified)."""

    # -- shared conveniences ------------------------------------------------

    def get_new_count(self, key: int) -> int | None:
        """new_count of a monitored key, else None (Algorithm 2 path)."""
        counts = self.get_counts(key)
        return None if counts is None else counts[0]

    def peek_min_new_count(self) -> int:
        """:meth:`min_new_count` without charging its operation cost.

        The batched exchange pre-check reads the minimum once to skip
        keys that cannot trigger an exchange, then charges the skipped
        per-key min queries in bulk via :meth:`charge_min_queries` —
        keeping the operation record identical to the scalar loop.  The
        default delegates to :meth:`min_new_count`, which is correct
        for implementations whose min read is free in the op record;
        implementations that charge per query override this.
        """
        return self.min_new_count()

    def charge_min_queries(self, queries: int) -> None:
        """Charge the op cost of ``queries`` skipped min-count reads.

        Companion of :meth:`peek_min_new_count`: the bulk exchange
        pre-check calls this once with the number of per-key
        :meth:`min_new_count` calls it elided, so op totals match the
        scalar path exactly.  Default: no cost (heap root reads and
        Stream-Summary bucket reads are free in the op record).
        """

    # -- state capture (synopsis protocol) ----------------------------------
    #
    # Every filter kind persists through the same two methods, built on
    # ``entries()``: the monitored set plus both counts is the complete
    # logical state, and re-inserting in entries() order rebuilds each
    # implementation's internal layout (array slots, heap shape, bucket
    # order) the same way a restart-time replay would.

    def state_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, new_counts, old_counts) arrays in :meth:`entries` order."""
        entries = self.entries()
        keys = np.array([e.key for e in entries], dtype=np.int64)
        new_counts = np.array([e.new_count for e in entries], dtype=np.int64)
        old_counts = np.array([e.old_count for e in entries], dtype=np.int64)
        return keys, new_counts, old_counts

    def restore_entries(
        self,
        keys: np.ndarray,
        new_counts: np.ndarray,
        old_counts: np.ndarray,
    ) -> None:
        """Re-monitor saved entries in order (the filter must be empty)."""
        if len(self):
            raise CapacityError("restore_entries on a non-empty filter")
        for key, new_count, old_count in zip(
            np.asarray(keys).tolist(),
            np.asarray(new_counts).tolist(),
            np.asarray(old_counts).tolist(),
        ):
            self.insert(int(key), int(new_count), int(old_count))

    # -- bulk operations (batched ingest/query path) -----------------------
    #
    # Filters that expose an id array (:meth:`probe_ids_array`) get their
    # membership test from the active compute backend
    # (:mod:`repro.kernels`) — one compiled/vectorised probe over the
    # whole key batch — and apply the few hits through the ordinary
    # scalar operations, so per-implementation bookkeeping (heap sifts,
    # cached minima) and op charges are untouched.  Filters without an id
    # array fall back to looping the scalar operations.  Either way the
    # semantics and the operation record match the scalar loop exactly.

    def probe_ids_array(self) -> np.ndarray | None:
        """Id array for the bulk membership kernel, or None.

        The array filters store slot value ``key + 1`` with ``0``
        marking an empty slot (the layout Algorithm 3's SIMD scan
        probes); returning it here routes :meth:`add_many_if_present`
        and :meth:`lookup_many` through the active kernel backend.
        Implementations returning an array must keep it consistent with
        the scalar operations at every call boundary.
        """
        return None

    def keys_array(self) -> np.ndarray:
        """Currently monitored keys as an int64 array (order unspecified)."""
        ids = self.probe_ids_array()
        if ids is not None:
            occupied = np.flatnonzero(ids)
            return ids[occupied] - 1
        return np.fromiter(
            (entry.key for entry in self.entries()),
            dtype=np.int64,
            count=len(self),
        )

    def add_many_if_present(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> np.ndarray:
        """Bulk :meth:`add_if_present`; returns the boolean hit mask.

        ``keys[i]`` receives ``amounts[i]`` if monitored.  Callers pass
        pre-aggregated (distinct key, chunk total) pairs, so one entry
        here stands for a whole chunk's worth of scalar hits.  With an
        id array available, membership is resolved by one backend
        kernel probe and only the hits re-enter
        :meth:`add_if_present` (misses — the overwhelming majority on a
        skewed stream — never touch the interpreter loop); the op
        record is charged identically either way.
        """
        keys = np.asarray(keys, dtype=np.int64)
        amounts = np.asarray(amounts, dtype=np.int64)
        n = keys.shape[0]
        ids = self.probe_ids_array()
        if ids is None or n == 0:
            hits = np.empty(n, dtype=bool)
            for position, (key, amount) in enumerate(
                zip(keys.tolist(), amounts.tolist())
            ):
                hits[position] = self.add_if_present(key, amount)
            return hits
        slots = active_backend().membership_probe(ids, keys)
        mask = slots >= 0
        hit_positions = np.flatnonzero(mask)
        misses = n - hit_positions.shape[0]
        self.ops.filter_probes += misses
        self.ops.filter_probe_blocks += misses * self._probe_blocks
        for position in hit_positions.tolist():
            # Re-apply through the scalar hit path: heap slots move as
            # hits sift, so precomputed slots cannot be written blindly.
            self.add_if_present(int(keys[position]), int(amounts[position]))
        return mask

    def lookup_many(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bulk :meth:`get_new_count`: ``(hit_mask, new_counts)``.

        ``new_counts[i]`` is only meaningful where ``hit_mask[i]`` is
        True; misses are left as 0.  Keys need not be distinct.  Like
        :meth:`add_many_if_present`, filters with an id array answer
        membership with one backend kernel probe and read only the hits
        through the scalar path.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.shape[0]
        mask = np.zeros(n, dtype=bool)
        counts = np.zeros(n, dtype=np.int64)
        ids = self.probe_ids_array()
        if ids is None or n == 0:
            for position, key in enumerate(keys.tolist()):
                new_count = self.get_new_count(key)
                if new_count is not None:
                    mask[position] = True
                    counts[position] = new_count
            return mask, counts
        slots = active_backend().membership_probe(ids, keys)
        np.greater_equal(slots, 0, out=mask)
        misses = n - int(np.count_nonzero(mask))
        self.ops.filter_probes += misses
        self.ops.filter_probe_blocks += misses * self._probe_blocks
        for position in np.flatnonzero(mask).tolist():
            new_count = self.get_new_count(int(keys[position]))
            assert new_count is not None
            counts[position] = new_count
        return mask, counts

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The k highest (key, new_count) pairs, descending new_count."""
        ordered = sorted(
            self.entries(), key=lambda e: e.new_count, reverse=True
        )
        return [(entry.key, entry.new_count) for entry in ordered[:k]]

    def _require_not_full(self) -> None:
        if self.is_full:
            raise CapacityError(
                "insert on a full filter; use replace_min instead"
            )
