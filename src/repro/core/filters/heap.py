"""Heap filters: array min-heaps on ``new_count`` (paper §6.1).

Both variants store (id, new_count, old_count) in three parallel arrays
arranged as a binary min-heap keyed by ``new_count``, so the minimum item
sits at the root and the miss-path min lookup (Algorithm 1 line 9) is a
single read — the reason the heaps beat the Vector filter at low and
medium skew.  Lookup by key is the same SIMD linear scan as the Vector
filter (a dict index at Python speed, SIMD-priced in the op record).

* :class:`StrictHeapFilter` restores the heap property after *every* hit:
  an increased count may now exceed its children, so it is sifted down.
* :class:`RelaxedHeapFilter` reconstructs the heap only when the *root*
  is hit or replaced (paper: "reconstructs the heap only when there is a
  hit on the item with the minimum count").  Because counts only grow,
  untouched items can never undercut the root between reconstructions,
  so the root is always the exact minimum — see the class docstring for
  why reconstruction (rather than a lazy root sift-down) is required.

Deletions (Appendix A) can decrease counts, which breaks the
grow-only reasoning; ``set_counts`` therefore re-heapifies fully — an
acceptable cost for the rare deletion path.
"""

from __future__ import annotations

import numpy as np

from repro.core.filters.base import Filter, FilterEntry
from repro.errors import CapacityError
from repro.hardware.costs import OpCounters


class _HeapFilterBase(Filter):
    """Shared machinery of the strict and relaxed heap filters."""

    BYTES_PER_SLOT = 12

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        super().__init__(capacity, ops)
        self._ids = np.zeros(self.capacity, dtype=np.int64)
        self._new = [0] * self.capacity
        self._old = [0] * self.capacity
        self._size = 0
        self._index: dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def probe_ids_array(self) -> np.ndarray:
        """Heap-slot id array; hits re-enter the scalar path (slots sift)."""
        return self._ids

    # -- lookup -------------------------------------------------------------

    def _find(self, key: int) -> int:
        self.ops.filter_probes += 1
        self.ops.filter_probe_blocks += self._probe_blocks
        return self._index.get(key, -1)

    def get_counts(self, key: int) -> tuple[int, int] | None:
        slot = self._find(key)
        if slot < 0:
            return None
        return self._new[slot], self._old[slot]

    # -- heap plumbing -----------------------------------------------------

    def _swap(self, a: int, b: int) -> None:
        ids, new, old = self._ids, self._new, self._old
        key_a, key_b = int(ids[a]) - 1, int(ids[b]) - 1
        ids[a], ids[b] = ids[b].item(), ids[a].item()
        new[a], new[b] = new[b], new[a]
        old[a], old[b] = old[b], old[a]
        self._index[key_a] = b
        self._index[key_b] = a

    def _sift_down(self, position: int) -> None:
        """Move a (possibly increased) entry down to a valid spot."""
        new = self._new
        size = self._size
        levels = 0
        while True:
            left = 2 * position + 1
            right = left + 1
            smallest = position
            if left < size and new[left] < new[smallest]:
                smallest = left
            if right < size and new[right] < new[smallest]:
                smallest = right
            if smallest == position:
                break
            self._swap(position, smallest)
            position = smallest
            levels += 1
        self.ops.heap_fixup_levels += max(levels, 1)

    def _sift_up(self, position: int) -> None:
        """Move a (possibly decreased / new) entry up to a valid spot."""
        new = self._new
        levels = 0
        while position > 0:
            parent = (position - 1) // 2
            if new[parent] <= new[position]:
                break
            self._swap(position, parent)
            position = parent
            levels += 1
        self.ops.heap_fixup_levels += max(levels, 1)

    # -- structural operations ----------------------------------------------

    def insert(self, key: int, new_count: int, old_count: int) -> None:
        self._require_not_full()
        if key in self._index:
            raise CapacityError(f"key {key} already monitored")
        slot = self._size
        self._ids[slot] = key + 1
        self._new[slot] = new_count
        self._old[slot] = old_count
        self._index[key] = slot
        self._size += 1
        self._sift_up(slot)

    def min_new_count(self) -> int:
        if self._size == 0:
            raise CapacityError("min_new_count on an empty filter")
        return self._new[0]

    def replace_min(
        self, key: int, new_count: int, old_count: int
    ) -> FilterEntry:
        if self._size == 0:
            raise CapacityError("replace_min on an empty filter")
        if key in self._index:
            raise CapacityError(f"key {key} already monitored")
        evicted = FilterEntry(
            key=int(self._ids[0]) - 1,
            new_count=self._new[0],
            old_count=self._old[0],
        )
        del self._index[evicted.key]
        self._ids[0] = key + 1
        self._new[0] = new_count
        self._old[0] = old_count
        self._index[key] = 0
        self._sift_down(0)
        return evicted

    def set_counts(self, key: int, new_count: int, old_count: int) -> None:
        slot = self._index[key]
        self._new[slot] = new_count
        self._old[slot] = old_count
        self._heapify()

    def _heapify(self) -> None:
        """Full bottom-up heapify (deletion path only)."""
        for position in range(self._size // 2 - 1, -1, -1):
            self._sift_down(position)

    def entries(self) -> list[FilterEntry]:
        return [
            FilterEntry(
                int(self._ids[slot]) - 1, self._new[slot], self._old[slot]
            )
            for slot in range(self._size)
        ]

    def restore_entries(self, keys, new_counts, old_counts) -> None:
        """Write saved entries back into their exact heap slots.

        ``entries()`` reports slot order, so direct assignment restores
        the precise array layout — including any interior violations a
        relaxed heap had accumulated — which a sift-up replay through
        ``insert`` would silently repair, changing future eviction
        tie-breaks.
        """
        if self._size:
            raise CapacityError("restore_entries on a non-empty filter")
        for slot, (key, new_count, old_count) in enumerate(
            zip(
                np.asarray(keys).tolist(),
                np.asarray(new_counts).tolist(),
                np.asarray(old_counts).tolist(),
            )
        ):
            self._ids[slot] = int(key) + 1
            self._new[slot] = int(new_count)
            self._old[slot] = int(old_count)
            self._index[int(key)] = slot
        self._size = len(self._index)

    @property
    def id_array(self) -> np.ndarray:
        """Raw id array (SIMD equivalence tests)."""
        view = self._ids.view()
        view.setflags(write=False)
        return view

    def heap_property_violations(self) -> int:
        """Count parent>child violations (0 for strict; >=0 for relaxed)."""
        violations = 0
        for position in range(1, self._size):
            parent = (position - 1) // 2
            if self._new[parent] > self._new[position]:
                violations += 1
        return violations


class StrictHeapFilter(_HeapFilterBase):
    """Heap filter that restores the heap invariant on every hit."""

    def add_if_present(self, key: int, amount: int) -> bool:
        slot = self._find(key)
        if slot < 0:
            return False
        self.ops.filter_hits += 1
        self._new[slot] += amount
        self._sift_down(slot)
        return True


class RelaxedHeapFilter(_HeapFilterBase):
    """Heap filter that reconstructs only when the root item is touched.

    The paper's best-performing filter for skew < 2 (and therefore the
    library default): non-root hits pay nothing for heap maintenance, so
    interior heap violations accumulate freely.  Whenever the *root* —
    the tracked minimum — is hit or replaced, the heap is reconstructed
    bottom-up (O(|F|), still far cheaper than the strict filter's per-hit
    sifting because hits on the minimum item are rare by definition).

    Reconstruction at every root-touching event keeps the invariant the
    exchange policy needs — the root is the exact minimum ``new_count``:
    between reconstructions non-root counts only grow, so nothing can
    undercut the root.  A lazier variant that merely sifts the root down
    can drift arbitrarily far from the true minimum (the sift consults
    stale interior values), which starves the exchange policy and
    destroys top-k precision; the regression test
    ``test_root_is_exact_min`` pins the sound behaviour.
    """

    def add_if_present(self, key: int, amount: int) -> bool:
        slot = self._find(key)
        if slot < 0:
            return False
        self.ops.filter_hits += 1
        self._new[slot] += amount
        if slot == 0:
            self._heapify()
        return True

    def replace_min(
        self, key: int, new_count: int, old_count: int
    ) -> FilterEntry:
        evicted = super().replace_min(key, new_count, old_count)
        # The sift-down performed by the base implementation consulted
        # possibly-stale interior values; rebuild to restore exact-min.
        self._heapify()
        return evicted
