"""Construct a filter implementation by name.

Names match the paper's terminology: ``"vector"``, ``"strict-heap"``,
``"relaxed-heap"`` (the default everywhere in §7), ``"stream-summary"``.
"""

from __future__ import annotations

from repro.core.filters.base import Filter
from repro.core.filters.heap import RelaxedHeapFilter, StrictHeapFilter
from repro.core.filters.stream_summary import StreamSummaryFilter
from repro.core.filters.vector import VectorFilter
from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters

FILTER_KINDS: dict[str, type[Filter]] = {
    "vector": VectorFilter,
    "strict-heap": StrictHeapFilter,
    "relaxed-heap": RelaxedHeapFilter,
    "stream-summary": StreamSummaryFilter,
}


def make_filter(
    kind: str,
    capacity: int | None = None,
    *,
    budget_bytes: int | None = None,
    ops: OpCounters | None = None,
) -> Filter:
    """Build a filter by kind with either an item or a byte capacity.

    Parameters
    ----------
    kind:
        One of ``"vector"``, ``"strict-heap"``, ``"relaxed-heap"``,
        ``"stream-summary"``.
    capacity:
        Number of monitored items; mutually exclusive with budget_bytes.
    budget_bytes:
        Byte budget converted via the kind's ``BYTES_PER_SLOT`` — this is
        how Table 6's same-budget comparison is expressed.
    ops:
        Optional shared operation record.
    """
    try:
        filter_cls = FILTER_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown filter kind {kind!r}; choose from {sorted(FILTER_KINDS)}"
        ) from None
    if (capacity is None) == (budget_bytes is None):
        raise ConfigurationError(
            "specify exactly one of capacity or budget_bytes"
        )
    if budget_bytes is not None:
        capacity = filter_cls.capacity_for_bytes(budget_bytes)
    assert capacity is not None
    return filter_cls(capacity, ops=ops)
