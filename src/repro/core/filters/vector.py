"""Vector filter: three flat arrays scanned linearly (paper §6.1).

Lookup is the SIMD linear scan of Algorithm 3 (16 ids per probe block);
finding the minimum ``new_count`` is another linear scan.  On modern
hardware this beats pointer-based structures for small arrays, and the
paper finds it the best filter at skew > 2 — where almost every update is
a hit and the min-scan on the miss path is rarely exercised.

Python-speed note: the runtime lookup uses a dict index and the min-scan
uses a cached minimum (counts only grow, so the cached minimum is exact
and only needs recomputing when the minimum slot itself changes).  Both
are *semantically identical* to the scans; the operation record still
charges the scans the C implementation performs (``filter_probe_blocks``
per lookup, ``min_scans`` elements per miss-path min query), which is what
the cost model prices.  The id array is maintained so the faithful SIMD
kernel can be run against the same state in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.filters.base import Filter, FilterEntry
from repro.errors import CapacityError
from repro.hardware.costs import OpCounters
from repro.kernels import active_backend


class VectorFilter(Filter):
    """Linear-scan filter over (id, new_count, old_count) arrays."""

    BYTES_PER_SLOT = 12

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        super().__init__(capacity, ops)
        # Slot id 0 marks an empty slot; stored ids are key + 1.
        self._ids = np.zeros(self.capacity, dtype=np.int64)
        self._new = [0] * self.capacity
        self._old = [0] * self.capacity
        self._index: dict[int, int] = {}
        # Cached location/value of the minimum new_count.
        self._min_slot = -1
        self._min_value = 0

    def __len__(self) -> int:
        return len(self._index)

    # -- lookup / hit path ---------------------------------------------------

    def add_if_present(self, key: int, amount: int) -> bool:
        ops = self.ops
        ops.filter_probes += 1
        ops.filter_probe_blocks += self._probe_blocks
        slot = self._index.get(key, -1)
        if slot < 0:
            return False
        ops.filter_hits += 1
        self._new[slot] += amount
        if slot == self._min_slot:
            self._rescan_min()
        return True

    def get_counts(self, key: int) -> tuple[int, int] | None:
        self.ops.filter_probes += 1
        self.ops.filter_probe_blocks += self._probe_blocks
        slot = self._index.get(key, -1)
        if slot < 0:
            return None
        return self._new[slot], self._old[slot]

    # -- bulk operations (batched ingest/query path) -------------------------

    def probe_ids_array(self) -> np.ndarray:
        """The slot id array — membership runs on the kernel backend."""
        return self._ids

    def add_many_if_present(
        self, keys: np.ndarray, amounts: np.ndarray
    ) -> np.ndarray:
        """Backend membership kernel; hits aggregate in place.

        Slots never move in this filter, so the kernel's slot answers
        are applied directly (no per-hit re-find).  Charged exactly
        like the equivalent scalar probes (one SIMD scan per key) so
        the cost model sees the same operation mix.
        """
        keys = np.asarray(keys, dtype=np.int64)
        amounts = np.asarray(amounts, dtype=np.int64)
        n = keys.shape[0]
        ops = self.ops
        ops.filter_probes += n
        ops.filter_probe_blocks += n * self._probe_blocks
        if n == 0 or not self._index:
            return np.zeros(n, dtype=bool)
        slots = active_backend().membership_probe(self._ids, keys)
        mask = slots >= 0
        hit_count = int(np.count_nonzero(mask))
        if hit_count:
            ops.filter_hits += hit_count
            new = self._new
            min_slot = self._min_slot
            touched_min = False
            for slot, amount in zip(
                slots[mask].tolist(), amounts[mask].tolist()
            ):
                new[slot] += amount
                if slot == min_slot:
                    touched_min = True
            if touched_min:
                self._rescan_min()
        return mask

    def lookup_many(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.shape[0]
        self.ops.filter_probes += n
        self.ops.filter_probe_blocks += n * self._probe_blocks
        counts = np.zeros(n, dtype=np.int64)
        if n == 0 or not self._index:
            return np.zeros(n, dtype=bool), counts
        slots = active_backend().membership_probe(self._ids, keys)
        mask = slots >= 0
        if mask.any():
            new_counts = np.asarray(self._new, dtype=np.int64)
            counts[mask] = new_counts[slots[mask]]
        return mask, counts

    # -- structural operations ----------------------------------------------

    def insert(self, key: int, new_count: int, old_count: int) -> None:
        self._require_not_full()
        if key in self._index:
            raise CapacityError(f"key {key} already monitored")
        slot = int(np.nonzero(self._ids == 0)[0][0])
        self._ids[slot] = key + 1
        self._new[slot] = new_count
        self._old[slot] = old_count
        self._index[key] = slot
        if self._min_slot < 0 or new_count < self._min_value:
            self._min_slot = slot
            self._min_value = new_count

    def min_new_count(self) -> int:
        """Minimum new_count; charged as the full linear scan it costs in C."""
        if self._min_slot < 0:
            raise CapacityError("min_new_count on an empty filter")
        self.ops.min_scans += self.capacity
        return self._min_value

    def peek_min_new_count(self) -> int:
        """Cached minimum without the per-query scan charge."""
        if self._min_slot < 0:
            raise CapacityError("min_new_count on an empty filter")
        return self._min_value

    def charge_min_queries(self, queries: int) -> None:
        """Each elided min query would have scanned the full array."""
        self.ops.min_scans += self.capacity * int(queries)

    def replace_min(
        self, key: int, new_count: int, old_count: int
    ) -> FilterEntry:
        if self._min_slot < 0:
            raise CapacityError("replace_min on an empty filter")
        if key in self._index:
            raise CapacityError(f"key {key} already monitored")
        slot = self._min_slot
        evicted = FilterEntry(
            key=int(self._ids[slot]) - 1,
            new_count=self._new[slot],
            old_count=self._old[slot],
        )
        del self._index[evicted.key]
        self._ids[slot] = key + 1
        self._new[slot] = new_count
        self._old[slot] = old_count
        self._index[key] = slot
        self._rescan_min()
        return evicted

    def set_counts(self, key: int, new_count: int, old_count: int) -> None:
        slot = self._index[key]
        self._new[slot] = new_count
        self._old[slot] = old_count
        self._rescan_min()

    def entries(self) -> list[FilterEntry]:
        return [
            FilterEntry(key, self._new[slot], self._old[slot])
            for key, slot in self._index.items()
        ]

    # -- internals -------------------------------------------------------

    def _rescan_min(self) -> None:
        """Recompute the cached minimum over occupied slots."""
        if not self._index:
            self._min_slot = -1
            self._min_value = 0
            return
        new = self._new
        best_slot = -1
        best_value = 0
        for slot in self._index.values():
            if best_slot < 0 or new[slot] < best_value:
                best_slot = slot
                best_value = new[slot]
        self._min_slot = best_slot
        self._min_value = best_value

    @property
    def id_array(self) -> np.ndarray:
        """The raw id array (for the faithful-SIMD equivalence tests)."""
        view = self._ids.view()
        view.setflags(write=False)
        return view
