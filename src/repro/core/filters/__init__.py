"""ASketch filter implementations (paper §6.1).

The filter must support two operations efficiently: (1) lookup by item
key, (2) find the item with the minimum ``new_count``.  The paper compares
four designs, all reproduced here:

* :class:`~repro.core.filters.vector.VectorFilter` — three flat arrays,
  SIMD linear scan for lookup *and* for the minimum; best at skew > 2.
* :class:`~repro.core.filters.heap.StrictHeapFilter` — array min-heap on
  ``new_count``, re-heapified on every hit.
* :class:`~repro.core.filters.heap.RelaxedHeapFilter` — the heap is fixed
  only when the root (minimum) item is hit; best in the real-world skew
  range and the default ASketch filter.
* :class:`~repro.core.filters.stream_summary.StreamSummaryFilter` — the
  Space-Saving structure (hash map + count-sorted bucket list); O(1) min
  but heavy per-item space (fits 4 items where the arrays fit 32, Table 6)
  and pointer-chasing costs.
"""

from repro.core.filters.base import Filter, FilterEntry
from repro.core.filters.factory import make_filter
from repro.core.filters.heap import RelaxedHeapFilter, StrictHeapFilter
from repro.core.filters.stream_summary import StreamSummaryFilter
from repro.core.filters.vector import VectorFilter

__all__ = [
    "Filter",
    "FilterEntry",
    "RelaxedHeapFilter",
    "StreamSummaryFilter",
    "StrictHeapFilter",
    "VectorFilter",
    "make_filter",
]
