"""Stream-Summary filter: hash map + count-sorted bucket list (§6.1).

The first design alternative the paper considers, borrowed from Space
Saving [27]: a hash table answers lookups and a doubly-linked list of
count buckets keeps items sorted, giving O(1) access to the minimum.
Its weakness is space: the node and hash-table pointers cost ~96 logical
bytes per item (four 8-byte pointers, hash entry, key and two counts)
versus 12 for the array filters, so within the paper's 0.4KB budget it
monitors only 4 items where the others monitor 32 (Table 6) — and its
pointer chasing makes it slower than the heaps at every skew (Figure 14).

Implemented as a thin adapter over
:class:`repro.counters.stream_summary.StreamSummary`, storing
``old_count`` in the node payload.  The bucket count is ``new_count``.
"""

from __future__ import annotations

import numpy as np

from repro.core.filters.base import Filter, FilterEntry
from repro.counters.stream_summary import StreamSummary
from repro.errors import CapacityError
from repro.hardware.costs import OpCounters


class StreamSummaryFilter(Filter):
    """ASketch filter backed by the Space-Saving Stream-Summary."""

    BYTES_PER_SLOT = 96

    def __init__(self, capacity: int, ops: OpCounters | None = None) -> None:
        super().__init__(capacity, ops)
        self._summary = StreamSummary(self.capacity, ops=self.ops)

    def __len__(self) -> int:
        return len(self._summary)

    def add_if_present(self, key: int, amount: int) -> bool:
        self.ops.filter_probes += 1
        if key not in self._summary:
            return False
        self.ops.filter_hits += 1
        self._summary.increment(key, amount)
        return True

    def insert(self, key: int, new_count: int, old_count: int) -> None:
        self._require_not_full()
        self._summary.insert(key, new_count, payload=old_count)

    def get_counts(self, key: int) -> tuple[int, int] | None:
        self.ops.filter_probes += 1
        new_count = self._summary.count_of(key)
        if new_count is None:
            return None
        old_count = self._summary.payload_of(key)
        assert isinstance(old_count, int)
        return new_count, old_count

    def min_new_count(self) -> int:
        if len(self._summary) == 0:
            raise CapacityError("min_new_count on an empty filter")
        return self._summary.min_count

    def replace_min(
        self, key: int, new_count: int, old_count: int
    ) -> FilterEntry:
        if len(self._summary) == 0:
            raise CapacityError("replace_min on an empty filter")
        if key in self._summary:
            raise CapacityError(f"key {key} already monitored")
        evicted_key, evicted_new, evicted_old = self._summary.evict_min()
        assert isinstance(evicted_old, int)
        self._summary.insert(key, new_count, payload=old_count)
        return FilterEntry(evicted_key, evicted_new, evicted_old)

    def set_counts(self, key: int, new_count: int, old_count: int) -> None:
        current = self._summary.count_of(key)
        if current is None:
            raise KeyError(key)
        if new_count > current:
            self._summary.increment(key, new_count - current)
        elif new_count < current:
            self._summary.decrement(key, current - new_count)
        self._summary.set_payload(key, old_count)

    def entries(self) -> list[FilterEntry]:
        return [
            FilterEntry(key, count, old)  # type: ignore[arg-type]
            for key, count, old in self._summary.items()
        ]

    def restore_entries(self, keys, new_counts, old_counts) -> None:
        """Re-insert saved entries in reverse of :meth:`entries` order.

        ``entries()`` walks buckets head-to-tail and inserts attach at a
        bucket's head, so reversed replay restores the exact node order —
        and with it which same-count item a future eviction picks.
        """
        if len(self._summary):
            raise CapacityError("restore_entries on a non-empty filter")
        for key, new_count, old_count in zip(
            reversed(np.asarray(keys).tolist()),
            reversed(np.asarray(new_counts).tolist()),
            reversed(np.asarray(old_counts).tolist()),
        ):
            self._summary.insert(int(key), int(new_count), payload=int(old_count))
