"""Command-line interface: list and run the reproduced experiments.

Usage::

    repro-asketch list
    repro-asketch run table1
    repro-asketch run figure5 --scale 0.25 --seed 3
    repro-asketch run all --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    experiment_ids,
    format_result,
    run_experiment,
)
from repro.experiments.registry import describe


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asketch",
        description=(
            "Reproduction harness for 'Augmented Sketch' (SIGMOD 2016): "
            "regenerate the paper's tables and figures."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiment ids")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all') and print its rows"
    )
    run_parser.add_argument(
        "experiment", help="experiment id (see 'list') or 'all'"
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream-size multiplier (default 1.0 = 400K-tuple streams)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    run_parser.add_argument(
        "--synopsis-kb",
        type=int,
        default=128,
        help="total synopsis budget in KB (default 128, as in the paper)",
    )
    run_parser.add_argument(
        "--filter-items",
        type=int,
        default=32,
        help="ASketch filter capacity in items (default 32)",
    )
    run_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
        help="ASketch filter implementation (default relaxed-heap)",
    )
    run_parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="repetitions for max-over-runs experiments (paper uses 100)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run every experiment and write one markdown report",
    )
    report_parser.add_argument("output", help="output markdown path")
    report_parser.add_argument("--scale", type=float, default=1.0)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="restrict to these experiment ids",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in experiment_ids():
            print(f"{experiment_id:10s} {describe(experiment_id)}")
        return 0

    if args.command == "report":
        from repro.experiments.report import write_report

        config = ExperimentConfig(scale=args.scale, seed=args.seed)
        try:
            path = write_report(args.output, config, args.only)
        except ReproError as exc:
            print(f"error generating report: {exc}", file=sys.stderr)
            return 1
        print(f"report written to {path}")
        return 0

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
        runs=args.runs,
    )
    targets = (
        experiment_ids() if args.experiment == "all" else [args.experiment]
    )
    for experiment_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id, config)
        except ReproError as exc:
            print(f"error running {experiment_id}: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(format_result(result))
        print(f"({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
