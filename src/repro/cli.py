"""Command-line interface: run experiments, checkpoint and restore synopses.

Usage::

    repro-asketch list
    repro-asketch run table1
    repro-asketch run figure5 --scale 0.25 --seed 3
    repro-asketch run all --scale 0.1
    repro-asketch run asketch --checkpoint-dir ckpts --checkpoint-every 8
    repro-asketch resume ckpts --top-k 10
    repro-asketch checkpoint asketch.npz --method asketch --skew 1.5
    repro-asketch restore asketch.npz --top-k 10

With ``--checkpoint-dir``, ``run`` switches from the experiment harness
to a fault-tolerant streaming ingest: the positional argument names a
*method/synopsis* (``asketch``, ``count-min``, ...), a Zipf stream is
driven through :class:`repro.runtime.reliability.ResilientEngine` with
atomic checkpoints every ``--checkpoint-every`` chunks, and the run's
parameters are recorded in a ``run-manifest.json`` inside the
checkpoint directory.  After a crash, ``resume <dir>`` re-reads the
manifest, restores the newest valid checkpoint generation (falling back
one generation if the latest is corrupt), and replays exactly the
un-checkpointed suffix of the stream.

``resume`` exit codes: ``0`` — recovered and finished; ``1`` —
recovery failed (all checkpoint generations corrupt, or an error while
replaying); ``2`` — usage error (missing checkpoint directory or
``run-manifest.json``).
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    experiment_ids,
    format_result,
    run_experiment,
)
from repro.experiments.registry import describe


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asketch",
        description=(
            "Reproduction harness for 'Augmented Sketch' (SIGMOD 2016): "
            "regenerate the paper's tables and figures."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiment ids")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all') and print its rows"
    )
    run_parser.add_argument(
        "experiment", help="experiment id (see 'list') or 'all'"
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream-size multiplier (default 1.0 = 400K-tuple streams)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    run_parser.add_argument(
        "--synopsis-kb",
        type=int,
        default=128,
        help="total synopsis budget in KB (default 128, as in the paper)",
    )
    run_parser.add_argument(
        "--filter-items",
        type=int,
        default=32,
        help="ASketch filter capacity in items (default 32)",
    )
    run_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
        help="ASketch filter implementation (default relaxed-heap)",
    )
    run_parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="repetitions for max-over-runs experiments (paper uses 100)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "enable fault-tolerant streaming ingest: treat the positional "
            "argument as a method id, ingest a Zipf stream through the "
            "resilient engine, and checkpoint into this directory"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="chunks between checkpoints (with --checkpoint-dir; default 8)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=10_000,
        help="ingest chunk size in tuples (with --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--skew",
        type=float,
        default=1.5,
        help="Zipf skew of the ingested stream (with --checkpoint-dir)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run every experiment and write one markdown report",
    )
    report_parser.add_argument("output", help="output markdown path")
    report_parser.add_argument("--scale", type=float, default=1.0)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="restrict to these experiment ids",
    )

    checkpoint_parser = subparsers.add_parser(
        "checkpoint",
        help="build a method, ingest a Zipf stream, save the synopsis",
    )
    checkpoint_parser.add_argument("output", help="output .npz path")
    checkpoint_parser.add_argument(
        "--method",
        default="asketch",
        help="method id (see experiments) or any registered synopsis kind",
    )
    checkpoint_parser.add_argument(
        "--skew", type=float, default=1.5, help="Zipf skew (default 1.5)"
    )
    checkpoint_parser.add_argument("--scale", type=float, default=1.0)
    checkpoint_parser.add_argument("--seed", type=int, default=0)
    checkpoint_parser.add_argument("--synopsis-kb", type=int, default=128)
    checkpoint_parser.add_argument("--filter-items", type=int, default=32)
    checkpoint_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help=(
            "recover a crashed 'run --checkpoint-dir' ingest from its "
            "newest valid checkpoint and finish the stream"
        ),
    )
    resume_parser.add_argument(
        "checkpoint_dir", help="checkpoint directory of the interrupted run"
    )
    resume_parser.add_argument(
        "--top-k",
        type=int,
        default=0,
        help="after recovery, print the synopsis' top-k items",
    )
    resume_parser.add_argument(
        "--query",
        type=int,
        nargs="*",
        default=None,
        help="keys to point-query after recovery",
    )

    restore_parser = subparsers.add_parser(
        "restore",
        help="load a saved synopsis and answer queries from it",
    )
    restore_parser.add_argument("input", help="saved .npz path")
    restore_parser.add_argument(
        "--top-k",
        type=int,
        default=0,
        help="print the synopsis' top-k items (if it supports top_k)",
    )
    restore_parser.add_argument(
        "--query",
        type=int,
        nargs="*",
        default=None,
        help="keys to point-query against the restored synopsis",
    )
    return parser


_MANIFEST_NAME = "run-manifest.json"


def _manifest_config(manifest: dict) -> "ExperimentConfig":
    return ExperimentConfig(
        scale=float(manifest["scale"]),
        seed=int(manifest["seed"]),
        synopsis_bytes=int(manifest["synopsis_kb"]) * 1024,
        filter_items=int(manifest["filter_items"]),
        filter_kind=manifest["filter_kind"],
    )


def _manifest_stream(manifest: dict):
    from repro.streams.zipf import zipf_stream

    config = _manifest_config(manifest)
    return zipf_stream(
        config.stream_size,
        config.distinct,
        float(manifest["skew"]),
        seed=int(manifest["seed"]),
    )


def _print_ingest_summary(engine, stats) -> None:
    health = engine.health()
    checkpoint = health["checkpoint"] or {}
    print(
        f"ingested {stats.tuples_ingested} tuples in "
        f"{stats.chunks_ingested} chunks "
        f"({stats.wall_throughput_items_per_ms:.0f} items/ms ingest-only); "
        f"last checkpoint generation {checkpoint.get('generation', '-')} at "
        f"chunk {checkpoint.get('chunk_index', '-')}; "
        f"status {health['status']}"
    )


def _run_resilient(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.reliability import ResilientEngine
    from repro.synopses.spec import build_synopsis

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    spec = config.spec_for(args.experiment, seed=args.seed)
    synopsis = build_synopsis(spec)
    manifest = {
        "method": args.experiment,
        "scale": args.scale,
        "seed": args.seed,
        "skew": args.skew,
        "synopsis_kb": args.synopsis_kb,
        "filter_items": args.filter_items,
        "filter_kind": args.filter_kind,
        "chunk_size": args.chunk_size,
        "checkpoint_every": args.checkpoint_every,
    }
    directory = Path(args.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    engine = ResilientEngine(
        synopsis,
        checkpoint_dir=directory,
        checkpoint_every=args.checkpoint_every,
    )
    stream = _manifest_stream(manifest)
    stats = engine.run(stream.chunks(args.chunk_size))
    _print_ingest_summary(engine, stats)
    return 0


def _run_resume(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.reliability import ResilientEngine

    directory = Path(args.checkpoint_dir)
    manifest_path = directory / _MANIFEST_NAME
    if not directory.is_dir() or not manifest_path.is_file():
        print(
            f"{directory} is not a checkpoint directory "
            f"(no {_MANIFEST_NAME}); start one with "
            "'repro-asketch run <method> --checkpoint-dir ...'",
            file=sys.stderr,
        )
        return 2
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable {_MANIFEST_NAME}: {exc}", file=sys.stderr)
        return 2

    from repro.synopses.spec import build_synopsis

    config = _manifest_config(manifest)
    spec = config.spec_for(manifest["method"], seed=int(manifest["seed"]))
    engine = ResilientEngine(
        build_synopsis(spec),  # fresh fallback if no checkpoint was reached
        checkpoint_dir=directory,
        checkpoint_every=int(manifest["checkpoint_every"]),
    )
    stream = _manifest_stream(manifest)
    stats = engine.resume(stream.chunks(int(manifest["chunk_size"])))
    _print_ingest_summary(engine, stats)
    synopsis = engine.synopsis
    if args.top_k:
        top_k = getattr(synopsis, "top_k", None)
        if top_k is None:
            kind = type(synopsis).SYNOPSIS_KIND
            print(f"{kind} does not answer top-k queries", file=sys.stderr)
            return 1
        for rank, (key, count) in enumerate(top_k(args.top_k), start=1):
            print(f"{rank:3d}. key={key} count={count}")
    for key in args.query or []:
        print(f"estimate({key}) = {synopsis.estimate(key)}")
    return 0


def _run_checkpoint(args: argparse.Namespace) -> int:
    from repro.persistence import save_synopsis
    from repro.streams.zipf import zipf_stream
    from repro.synopses.spec import build_synopsis

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    spec = config.spec_for(args.method, seed=args.seed)
    synopsis = build_synopsis(spec)
    stream = zipf_stream(
        config.stream_size, config.distinct, args.skew, seed=args.seed
    )
    ingest = getattr(synopsis, "process_stream", None)
    if ingest is not None:
        ingest(stream.keys)
    else:
        for key in stream.keys.tolist():
            synopsis.update(int(key))
    save_synopsis(synopsis, args.output)
    print(
        f"checkpointed {spec.kind} ({synopsis.size_bytes} bytes, "
        f"{len(stream)} tuples at skew {args.skew}) to {args.output}"
    )
    return 0


def _run_restore(args: argparse.Namespace) -> int:
    from repro.persistence import load_synopsis

    synopsis = load_synopsis(args.input)
    kind = type(synopsis).SYNOPSIS_KIND
    print(f"restored {kind} ({synopsis.size_bytes} bytes) from {args.input}")
    if args.top_k:
        top_k = getattr(synopsis, "top_k", None)
        if top_k is None:
            print(f"{kind} does not answer top-k queries", file=sys.stderr)
            return 1
        for rank, (key, count) in enumerate(top_k(args.top_k), start=1):
            print(f"{rank:3d}. key={key} count={count}")
    for key in args.query or []:
        print(f"estimate({key}) = {synopsis.estimate(key)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in experiment_ids():
            print(f"{experiment_id:10s} {describe(experiment_id)}")
        return 0

    if args.command in ("checkpoint", "restore", "resume"):
        try:
            if args.command == "checkpoint":
                return _run_checkpoint(args)
            if args.command == "resume":
                return _run_resume(args)
            return _run_restore(args)
        except ReproError as exc:
            print(f"error during {args.command}: {exc}", file=sys.stderr)
            return 1

    if args.command == "report":
        from repro.experiments.report import write_report

        config = ExperimentConfig(scale=args.scale, seed=args.seed)
        try:
            path = write_report(args.output, config, args.only)
        except ReproError as exc:
            print(f"error generating report: {exc}", file=sys.stderr)
            return 1
        print(f"report written to {path}")
        return 0

    if args.checkpoint_dir is not None:
        try:
            return _run_resilient(args)
        except ReproError as exc:
            print(f"error during resilient run: {exc}", file=sys.stderr)
            return 1

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
        runs=args.runs,
    )
    known = experiment_ids()
    targets = known if args.experiment == "all" else [args.experiment]
    unknown = [target for target in targets if target not in known]
    if unknown:
        print(
            f"unknown experiment id {unknown[0]!r}; "
            "run 'repro-asketch list' for the available ids",
            file=sys.stderr,
        )
        return 2
    for experiment_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id, config)
        except ReproError as exc:
            print(f"error running {experiment_id}: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(format_result(result))
        print(f"({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
