"""Command-line interface: run experiments, checkpoint and restore synopses.

Usage::

    repro-asketch list
    repro-asketch run table1
    repro-asketch run figure5 --scale 0.25 --seed 3
    repro-asketch run all --scale 0.1
    repro-asketch run asketch --checkpoint-dir ckpts --checkpoint-every 8
    repro-asketch run zipf --metrics-json metrics.json
    repro-asketch run zipf --workers 4 --shards 8
    repro-asketch run zipf --workers 4 --shards 8 --respawn --reshard
    repro-asketch resume ckpts --top-k 10
    repro-asketch checkpoint asketch.npz --method asketch --skew 1.5
    repro-asketch restore asketch.npz --top-k 10
    repro-asketch serve-metrics --port 9100 --scale 0.5
    repro-asketch health --checkpoint-dir ckpts

With ``--checkpoint-dir``, ``run`` switches from the experiment harness
to a fault-tolerant streaming ingest: the positional argument names a
*method/synopsis* (``asketch``, ``count-min``, ...), a Zipf stream is
driven through :class:`repro.runtime.reliability.ResilientEngine` with
atomic checkpoints every ``--checkpoint-every`` chunks, and the run's
parameters are recorded in a ``run-manifest.json`` inside the
checkpoint directory.  After a crash, ``resume <dir>`` re-reads the
manifest, restores the newest valid checkpoint generation (falling back
one generation if the latest is corrupt), and replays exactly the
un-checkpointed suffix of the stream.

``resume`` exit codes: ``0`` — recovered and finished; ``1`` —
recovery failed (all checkpoint generations corrupt, or an error while
replaying); ``2`` — usage error (missing checkpoint directory or
``run-manifest.json``).

Observability (:mod:`repro.obs`): ``run`` accepts ``--metrics-json
PATH`` (write a schema-checked JSON metrics snapshot after the run,
also embedded into ``run-manifest.json`` for checkpointed ingests) and
``--trace-jsonl PATH`` (structured span/point trace).  The positional
``zipf`` / ``uniform`` selects a plain streaming ingest of that stream
through the default ASketch.  ``serve-metrics`` runs an ingest with a
stdlib HTTP scrape endpoint at ``/metrics`` (Prometheus text) and
``/metrics.json``; ``health --checkpoint-dir DIR`` inspects the newest
checkpoint and exits ``0`` (healthy), ``1`` (degraded or unreadable),
``2`` (usage error / no checkpoints), ``3`` (healing: a worker respawn
is rebuilding state, data intact).  Parallel runs journal their
self-healing lifecycle counters (``worker_respawns``,
``reshard_migrations``, ``load_shed_chunks``, stalls, quarantines) into
every checkpoint, and ``health`` surfaces them under ``fleet``;
``run --workers N`` itself exits non-zero when the fleet finishes
degraded.  ``run --respawn`` enables exact worker recovery,
``--reshard`` online skew-driven shard rebalancing, ``--load-shed``
stall quarantining.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    experiment_ids,
    format_result,
    run_experiment,
)
from repro.experiments.registry import describe


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asketch",
        description=(
            "Reproduction harness for 'Augmented Sketch' (SIGMOD 2016): "
            "regenerate the paper's tables and figures."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["python", "numpy", "numba"],
        help=(
            "kernel compute backend for the batch hot loops (default: "
            "the REPRO_BACKEND env var, else numpy; requesting numba "
            "without numba installed falls back to numpy with a warning)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list all experiment ids")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all') and print its rows"
    )
    run_parser.add_argument(
        "experiment", help="experiment id (see 'list') or 'all'"
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream-size multiplier (default 1.0 = 400K-tuple streams)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    run_parser.add_argument(
        "--synopsis-kb",
        type=int,
        default=128,
        help="total synopsis budget in KB (default 128, as in the paper)",
    )
    run_parser.add_argument(
        "--filter-items",
        type=int,
        default=32,
        help="ASketch filter capacity in items (default 32)",
    )
    run_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
        help="ASketch filter implementation (default relaxed-heap)",
    )
    run_parser.add_argument(
        "--runs",
        type=int,
        default=5,
        help="repetitions for max-over-runs experiments (paper uses 100)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "enable fault-tolerant streaming ingest: treat the positional "
            "argument as a method id, ingest a Zipf stream through the "
            "resilient engine, and checkpoint into this directory"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="chunks between checkpoints (with --checkpoint-dir; default 8)",
    )
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=10_000,
        help="ingest chunk size in tuples (with --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--skew",
        type=float,
        default=1.5,
        help="Zipf skew of the ingested stream (with --checkpoint-dir)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "ingest with N worker processes over shared-memory rings "
            "(stream targets 'zipf'/'uniform' only; the result is "
            "bit-identical to --workers 1)"
        ),
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "shard count for --workers runs (default: one per worker); "
            "the --synopsis-kb budget is split across shards"
        ),
    )
    run_parser.add_argument(
        "--respawn",
        action="store_true",
        help=(
            "with --workers: respawn dead/hung workers from their last "
            "snapshot and replay the retained tail (exact recovery; "
            "falls back to standby after the retry budget)"
        ),
    )
    run_parser.add_argument(
        "--reshard",
        action="store_true",
        help=(
            "with --workers: watch routing skew and move shards "
            "between workers online (requires --shards > --workers to "
            "have anything to move)"
        ),
    )
    run_parser.add_argument(
        "--load-shed",
        action="store_true",
        help=(
            "with --workers: quarantine chunks for a stalled worker to "
            "the dead-letter queue instead of failing it over (trades "
            "accuracy for liveness; health reports degraded)"
        ),
    )
    run_parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help=(
            "write a JSON metrics snapshot (schema repro-metrics/v1) "
            "after the run"
        ),
    )
    run_parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help=(
            "write structured trace events (ingest/exchange/checkpoint "
            "spans) as JSON lines"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve-metrics",
        help=(
            "ingest a stream with a live Prometheus/JSON metrics "
            "endpoint at /metrics"
        ),
    )
    serve_parser.add_argument(
        "--method",
        default="asketch",
        help="synopsis method to ingest into (default asketch)",
    )
    serve_parser.add_argument(
        "--stream",
        default="zipf",
        choices=["zipf", "uniform"],
        help="stream generator (default zipf)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default 0 = ephemeral, printed on start)",
    )
    serve_parser.add_argument("--scale", type=float, default=1.0)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--skew", type=float, default=1.5)
    serve_parser.add_argument("--synopsis-kb", type=int, default=128)
    serve_parser.add_argument("--filter-items", type=int, default=32)
    serve_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
    )
    serve_parser.add_argument("--chunk-size", type=int, default=10_000)
    serve_parser.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help=(
            "seconds to keep serving after the stream ends "
            "(default 0; use a large value for scrape-and-watch runs)"
        ),
    )

    health_parser = subparsers.add_parser(
        "health",
        help=(
            "inspect the newest checkpoint of a resilient run; "
            "exit 0 healthy, 1 degraded, 3 healing (recovery in flight)"
        ),
    )
    health_parser.add_argument(
        "--checkpoint-dir",
        required=True,
        help="checkpoint directory of a 'run --checkpoint-dir' ingest",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run every experiment and write one markdown report",
    )
    report_parser.add_argument("output", help="output markdown path")
    report_parser.add_argument("--scale", type=float, default=1.0)
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="restrict to these experiment ids",
    )

    checkpoint_parser = subparsers.add_parser(
        "checkpoint",
        help="build a method, ingest a Zipf stream, save the synopsis",
    )
    checkpoint_parser.add_argument("output", help="output .npz path")
    checkpoint_parser.add_argument(
        "--method",
        default="asketch",
        help="method id (see experiments) or any registered synopsis kind",
    )
    checkpoint_parser.add_argument(
        "--skew", type=float, default=1.5, help="Zipf skew (default 1.5)"
    )
    checkpoint_parser.add_argument("--scale", type=float, default=1.0)
    checkpoint_parser.add_argument("--seed", type=int, default=0)
    checkpoint_parser.add_argument("--synopsis-kb", type=int, default=128)
    checkpoint_parser.add_argument("--filter-items", type=int, default=32)
    checkpoint_parser.add_argument(
        "--filter-kind",
        default="relaxed-heap",
        choices=["vector", "strict-heap", "relaxed-heap", "stream-summary"],
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help=(
            "recover a crashed 'run --checkpoint-dir' ingest from its "
            "newest valid checkpoint and finish the stream"
        ),
    )
    resume_parser.add_argument(
        "checkpoint_dir", help="checkpoint directory of the interrupted run"
    )
    resume_parser.add_argument(
        "--top-k",
        type=int,
        default=0,
        help="after recovery, print the synopsis' top-k items",
    )
    resume_parser.add_argument(
        "--query",
        type=int,
        nargs="*",
        default=None,
        help="keys to point-query after recovery",
    )

    restore_parser = subparsers.add_parser(
        "restore",
        help="load a saved synopsis and answer queries from it",
    )
    restore_parser.add_argument("input", help="saved .npz path")
    restore_parser.add_argument(
        "--top-k",
        type=int,
        default=0,
        help="print the synopsis' top-k items (if it supports top_k)",
    )
    restore_parser.add_argument(
        "--query",
        type=int,
        nargs="*",
        default=None,
        help="keys to point-query against the restored synopsis",
    )
    return parser


_MANIFEST_NAME = "run-manifest.json"


def _manifest_config(manifest: dict) -> "ExperimentConfig":
    return ExperimentConfig(
        scale=float(manifest["scale"]),
        seed=int(manifest["seed"]),
        synopsis_bytes=int(manifest["synopsis_kb"]) * 1024,
        filter_items=int(manifest["filter_items"]),
        filter_kind=manifest["filter_kind"],
    )


def _manifest_stream(manifest: dict):
    from repro.streams.uniform import uniform_stream
    from repro.streams.zipf import zipf_stream

    config = _manifest_config(manifest)
    if manifest.get("stream", "zipf") == "uniform":
        return uniform_stream(
            config.stream_size, config.distinct, seed=int(manifest["seed"])
        )
    return zipf_stream(
        config.stream_size,
        config.distinct,
        float(manifest["skew"]),
        seed=int(manifest["seed"]),
    )


def _registry_derived(registry) -> dict:
    """Paper-facing summary statistics computed from raw counters.

    ``filter_hit_rate`` observes Fig. 6-9's hit-rate claim and
    ``exchange_count`` Alg. 1's decaying exchange frequency (see
    DESIGN.md §10 for the full metric-to-paper mapping).
    """
    items = registry.value("asketch_items_total")
    hits = registry.value("asketch_filter_hits_total")
    return {
        "filter_hit_rate": (hits / items) if items else 0.0,
        "filter_miss_count": registry.value("asketch_filter_misses_total"),
        "exchange_count": registry.value("asketch_exchanges_total"),
    }


def _ingest_derived(engine, registry) -> dict:
    """:func:`_registry_derived` plus the resilient run's checkpoint view."""
    health = engine.health()
    derived = _registry_derived(registry)
    derived.update(
        {
            "checkpoint": health["checkpoint"],
            "checkpoint_lag_chunks": health["checkpoint_lag_chunks"],
            "checkpoints_written": registry.value("checkpoints_total"),
            "quarantined_chunks": health["quarantined"],
            "status": health["status"],
        }
    )
    return derived


class _Observability:
    """Install/teardown of the run-scoped registry and trace sink.

    The CLI installs a fresh registry per observed run (so snapshots
    cover exactly that run) and, with ``--trace-jsonl``, a
    :class:`~repro.obs.trace.JsonlTraceWriter`; both are uninstalled
    on exit even when the run fails.
    """

    def __init__(self, trace_jsonl: str | None = None) -> None:
        self.trace_jsonl = trace_jsonl
        self.registry = None
        self._writer = None

    def __enter__(self):
        from repro.obs import (
            JsonlTraceWriter,
            install_registry,
            install_tracer,
        )

        self.registry = install_registry()
        if self.trace_jsonl is not None:
            self._writer = JsonlTraceWriter(self.trace_jsonl)
            install_tracer(self._writer)
        return self

    def __exit__(self, *exc_info: object) -> None:
        from repro.obs import uninstall_registry, uninstall_tracer

        if self._writer is not None:
            uninstall_tracer()
            self._writer.close()
        uninstall_registry()


def _print_ingest_summary(engine, stats) -> None:
    health = engine.health()
    checkpoint = health["checkpoint"] or {}
    print(
        f"ingested {stats.tuples_ingested} tuples in "
        f"{stats.chunks_ingested} chunks "
        f"({stats.wall_throughput_items_per_ms:.0f} items/ms ingest-only); "
        f"last checkpoint generation {checkpoint.get('generation', '-')} at "
        f"chunk {checkpoint.get('chunk_index', '-')}; "
        f"status {health['status']}"
    )


#: Positional ``run`` targets naming a *stream* rather than a method:
#: they trigger a streaming ingest of that stream through the default
#: ASketch even without ``--checkpoint-dir``.
_STREAM_TARGETS = ("zipf", "uniform")


def _write_run_metrics(args, registry, engine, directory) -> None:
    """Write the ``--metrics-json`` snapshot and embed it in the manifest.

    Both views carry the same derived block (hit rate, exchanges,
    checkpoint position); the manifest embedding makes a checkpointed
    run's final metrics recoverable alongside its parameters.
    """
    import json

    from repro.obs import snapshot_metrics, write_metrics_json

    derived = _ingest_derived(engine, registry)
    if args.metrics_json is not None:
        write_metrics_json(args.metrics_json, registry, derived=derived)
        print(f"metrics snapshot written to {args.metrics_json}")
    if directory is not None:
        manifest_path = directory / _MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["metrics"] = snapshot_metrics(registry, derived=derived)
        manifest_path.write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )


def _run_resilient(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.reliability import ResilientEngine
    from repro.synopses.spec import build_synopsis

    method = args.experiment
    stream_name = "zipf"
    if method in _STREAM_TARGETS:
        stream_name, method = method, "asketch"
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    spec = config.spec_for(method, seed=args.seed)
    synopsis = build_synopsis(spec)
    manifest = {
        "method": method,
        "stream": stream_name,
        "scale": args.scale,
        "seed": args.seed,
        "skew": args.skew,
        "synopsis_kb": args.synopsis_kb,
        "filter_items": args.filter_items,
        "filter_kind": args.filter_kind,
        "chunk_size": args.chunk_size,
        "checkpoint_every": args.checkpoint_every,
    }
    directory = None
    if args.checkpoint_dir is not None:
        directory = Path(args.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / _MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
    engine = ResilientEngine(
        synopsis,
        checkpoint_dir=directory,
        checkpoint_every=args.checkpoint_every,
    )
    stream = _manifest_stream(manifest)
    with _Observability(trace_jsonl=args.trace_jsonl) as obs:
        stats = engine.run(stream.chunks(args.chunk_size))
        _print_ingest_summary(engine, stats)
        _write_run_metrics(args, obs.registry, engine, directory)
    return 0


def _run_parallel(args: argparse.Namespace) -> int:
    """``run <stream> --workers N``: true multiprocess SPMD ingest.

    The total ``--synopsis-kb`` budget is split evenly across shards
    (matching §6.3's per-core sizing), the stream is routed to worker
    processes over shared-memory rings, and the merged result is
    bit-identical to the same run with ``--workers 1``.
    """
    from pathlib import Path

    from repro.runtime.parallel import ParallelIngestRuntime
    from repro.runtime.reliability import CheckpointStore
    from repro.streams.uniform import uniform_stream
    from repro.streams.zipf import zipf_stream

    if args.experiment not in _STREAM_TARGETS:
        print(
            f"--workers needs a stream target {_STREAM_TARGETS}, "
            f"got {args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    if args.experiment == "uniform":
        stream = uniform_stream(
            config.stream_size, config.distinct, seed=args.seed
        )
    else:
        stream = zipf_stream(
            config.stream_size, config.distinct, args.skew, seed=args.seed
        )
    shards = args.shards if args.shards is not None else args.workers
    per_shard_bytes = max(4096, (args.synopsis_kb * 1024) // max(shards, 1))
    runtime = ParallelIngestRuntime(
        args.workers,
        shards=shards,
        total_bytes=per_shard_bytes,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
        seed=args.seed,
        slot_capacity=max(1 << 16, args.chunk_size),
        respawn=args.respawn,
        auto_reshard=args.reshard,
        load_shed=args.load_shed,
    )
    store = None
    if args.checkpoint_dir is not None:
        directory = Path(args.checkpoint_dir)
        directory.mkdir(parents=True, exist_ok=True)
        store = CheckpointStore(directory)
    with _Observability(trace_jsonl=args.trace_jsonl) as obs:
        stats = runtime.run(
            stream.chunks(args.chunk_size),
            checkpoint_store=store,
            checkpoint_every=args.checkpoint_every if store else None,
        )
        workers_ok = sum(
            1 for h in runtime.worker_health() if h["status"] == "ok"
        )
        fleet = runtime.health()
        print(
            f"ingested {stats.tuples_ingested} tuples in "
            f"{stats.chunks_ingested} chunks across {args.workers} workers "
            f"({shards} shards, {per_shard_bytes} B/shard) in "
            f"{stats.wall_seconds:.2f}s "
            f"({stats.wall_throughput_items_per_ms:.0f} items/ms); "
            f"{workers_ok}/{args.workers} workers healthy; "
            f"fleet {fleet['status']} "
            f"(respawns {fleet['worker_respawns']}, "
            f"migrations {fleet['reshard_migrations']}, "
            f"shed {fleet['load_shed_chunks']})"
        )
        if args.metrics_json is not None:
            from repro.obs import write_metrics_json

            write_metrics_json(
                args.metrics_json,
                obs.registry,
                derived={
                    "workers": runtime.worker_health(),
                    "shards": runtime.shard_health(),
                    "fleet": fleet,
                },
            )
            print(f"metrics snapshot written to {args.metrics_json}")
    return 0 if fleet["status"] == "ok" else 1


def _run_serve_metrics(args: argparse.Namespace) -> int:
    from repro.obs import MetricsServer, install_registry, uninstall_registry
    from repro.runtime.reliability import ResilientEngine
    from repro.streams.uniform import uniform_stream
    from repro.streams.zipf import zipf_stream
    from repro.synopses.spec import build_synopsis

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    spec = config.spec_for(args.method, seed=args.seed)
    synopsis = build_synopsis(spec)
    if args.stream == "uniform":
        stream = uniform_stream(
            config.stream_size, config.distinct, seed=args.seed
        )
    else:
        stream = zipf_stream(
            config.stream_size, config.distinct, args.skew, seed=args.seed
        )
    registry = install_registry()
    try:
        with MetricsServer(registry, host=args.host, port=args.port) as server:
            print(
                f"serving metrics at {server.url} "
                "(JSON at /metrics.json); Ctrl-C to stop"
            )
            engine = ResilientEngine(synopsis)
            stats = engine.run(stream.chunks(args.chunk_size))
            _print_ingest_summary(engine, stats)
            if args.linger > 0:
                try:
                    time.sleep(args.linger)
                except KeyboardInterrupt:
                    pass
    finally:
        uninstall_registry()
    return 0


def _run_health(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.errors import RecoveryError
    from repro.runtime.reliability import CheckpointStore, ShardSupervisor

    directory = Path(args.checkpoint_dir)
    if (
        not directory.is_dir()
        or not (directory / CheckpointStore.JOURNAL_NAME).is_file()
    ):
        print(
            f"{directory} has no checkpoint journal; start a run with "
            "'repro-asketch run <method> --checkpoint-dir ...'",
            file=sys.stderr,
        )
        return 2
    store = CheckpointStore(directory)
    try:
        loaded = store.load_latest()
    except RecoveryError as exc:
        print(
            json.dumps({"status": "unreadable", "detail": str(exc)}, indent=2)
        )
        return 1
    if loaded is None:
        print(f"no checkpoints recorded in {directory}", file=sys.stderr)
        return 2
    synopsis, record = loaded
    report = {
        "status": "ok",
        "generation": record["generation"],
        "chunk_index": record["chunk_index"],
        "tuples_ingested": record["tuples_ingested"],
        "synopsis_kind": type(synopsis).SYNOPSIS_KIND,
    }
    if isinstance(synopsis, ShardSupervisor):
        shards = synopsis.shard_health()
        report["shards"] = shards
        statuses = {s["status"] for s in shards}
        if ShardSupervisor.STATUS_FAILED in statuses:
            report["status"] = "degraded"
        elif ShardSupervisor.STATUS_HEALING in statuses:
            report["status"] = "healing"
    extra = record.get("extra") or {}
    if extra:
        # Self-healing lifecycle counters journaled by the parallel
        # runtime's checkpoints (respawns, migrations, shed chunks...).
        report["fleet"] = extra
        if extra.get("load_shed_chunks") or extra.get("quarantined_chunks"):
            # Data is sitting in a dead-letter queue, not the synopsis.
            report["status"] = "degraded"
        elif report["status"] == "ok" and extra.get("healing_shards"):
            report["status"] = "healing"
    print(json.dumps(report, indent=2))
    if report["status"] == "ok":
        return 0
    return 3 if report["status"] == "healing" else 1


def _run_resume(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.reliability import ResilientEngine

    directory = Path(args.checkpoint_dir)
    manifest_path = directory / _MANIFEST_NAME
    if not directory.is_dir() or not manifest_path.is_file():
        print(
            f"{directory} is not a checkpoint directory "
            f"(no {_MANIFEST_NAME}); start one with "
            "'repro-asketch run <method> --checkpoint-dir ...'",
            file=sys.stderr,
        )
        return 2
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable {_MANIFEST_NAME}: {exc}", file=sys.stderr)
        return 2

    from repro.synopses.spec import build_synopsis

    config = _manifest_config(manifest)
    spec = config.spec_for(manifest["method"], seed=int(manifest["seed"]))
    engine = ResilientEngine(
        build_synopsis(spec),  # fresh fallback if no checkpoint was reached
        checkpoint_dir=directory,
        checkpoint_every=int(manifest["checkpoint_every"]),
    )
    stream = _manifest_stream(manifest)
    stats = engine.resume(stream.chunks(int(manifest["chunk_size"])))
    _print_ingest_summary(engine, stats)
    synopsis = engine.synopsis
    if args.top_k:
        top_k = getattr(synopsis, "top_k", None)
        if top_k is None:
            kind = type(synopsis).SYNOPSIS_KIND
            print(f"{kind} does not answer top-k queries", file=sys.stderr)
            return 1
        for rank, (key, count) in enumerate(top_k(args.top_k), start=1):
            print(f"{rank:3d}. key={key} count={count}")
    for key in args.query or []:
        print(f"estimate({key}) = {synopsis.estimate(key)}")
    return 0


def _run_checkpoint(args: argparse.Namespace) -> int:
    from repro.persistence import save_synopsis
    from repro.streams.zipf import zipf_stream
    from repro.synopses.spec import build_synopsis

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
    )
    spec = config.spec_for(args.method, seed=args.seed)
    synopsis = build_synopsis(spec)
    stream = zipf_stream(
        config.stream_size, config.distinct, args.skew, seed=args.seed
    )
    ingest = getattr(synopsis, "process_stream", None)
    if ingest is not None:
        ingest(stream.keys)
    else:
        for key in stream.keys.tolist():
            synopsis.update(int(key))
    save_synopsis(synopsis, args.output)
    print(
        f"checkpointed {spec.kind} ({synopsis.size_bytes} bytes, "
        f"{len(stream)} tuples at skew {args.skew}) to {args.output}"
    )
    return 0


def _run_restore(args: argparse.Namespace) -> int:
    from repro.persistence import load_synopsis

    synopsis = load_synopsis(args.input)
    kind = type(synopsis).SYNOPSIS_KIND
    print(f"restored {kind} ({synopsis.size_bytes} bytes) from {args.input}")
    if args.top_k:
        top_k = getattr(synopsis, "top_k", None)
        if top_k is None:
            print(f"{kind} does not answer top-k queries", file=sys.stderr)
            return 1
        for rank, (key, count) in enumerate(top_k(args.top_k), start=1):
            print(f"{rank:3d}. key={key} count={count}")
    for key in args.query or []:
        print(f"estimate({key}) = {synopsis.estimate(key)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.kernels import set_backend

        set_backend(args.backend)

    if args.command == "list":
        for experiment_id in experiment_ids():
            print(f"{experiment_id:10s} {describe(experiment_id)}")
        return 0

    if args.command in ("checkpoint", "restore", "resume"):
        try:
            if args.command == "checkpoint":
                return _run_checkpoint(args)
            if args.command == "resume":
                return _run_resume(args)
            return _run_restore(args)
        except ReproError as exc:
            print(f"error during {args.command}: {exc}", file=sys.stderr)
            return 1

    if args.command == "serve-metrics":
        try:
            return _run_serve_metrics(args)
        except ReproError as exc:
            print(f"error during serve-metrics: {exc}", file=sys.stderr)
            return 1

    if args.command == "health":
        try:
            return _run_health(args)
        except ReproError as exc:
            print(f"error during health check: {exc}", file=sys.stderr)
            return 1

    if args.command == "report":
        from repro.experiments.report import write_report

        config = ExperimentConfig(scale=args.scale, seed=args.seed)
        try:
            path = write_report(args.output, config, args.only)
        except ReproError as exc:
            print(f"error generating report: {exc}", file=sys.stderr)
            return 1
        print(f"report written to {path}")
        return 0

    if getattr(args, "workers", 1) < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "workers", 1) > 1:
        try:
            return _run_parallel(args)
        except ReproError as exc:
            print(f"error during parallel run: {exc}", file=sys.stderr)
            return 1

    if args.checkpoint_dir is not None or args.experiment in _STREAM_TARGETS:
        try:
            return _run_resilient(args)
        except ReproError as exc:
            print(f"error during resilient run: {exc}", file=sys.stderr)
            return 1

    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        synopsis_bytes=args.synopsis_kb * 1024,
        filter_items=args.filter_items,
        filter_kind=args.filter_kind,
        runs=args.runs,
    )
    known = experiment_ids()
    targets = known if args.experiment == "all" else [args.experiment]
    unknown = [target for target in targets if target not in known]
    if unknown:
        print(
            f"unknown experiment id {unknown[0]!r}; "
            "run 'repro-asketch list' for the available ids",
            file=sys.stderr,
        )
        return 2
    if args.metrics_json is None and args.trace_jsonl is None:
        return _run_experiments(targets, config)
    with _Observability(trace_jsonl=args.trace_jsonl) as obs:
        code = _run_experiments(targets, config)
        if code == 0 and args.metrics_json is not None:
            from repro.obs import write_metrics_json

            write_metrics_json(
                args.metrics_json,
                obs.registry,
                derived=_registry_derived(obs.registry),
            )
            print(f"metrics snapshot written to {args.metrics_json}")
    return code


def _run_experiments(targets: list[str], config: ExperimentConfig) -> int:
    """Run each experiment id in turn, printing its formatted rows."""
    for experiment_id in targets:
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id, config)
        except ReproError as exc:
            print(f"error running {experiment_id}: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        print(format_result(result))
        print(f"({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
