"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the collection point of the observability layer
(:mod:`repro.obs`): instrumented code asks :func:`current_registry`
for the process-wide registry and records into it *only when one is
installed*.  With no registry installed the instrumented call sites
reduce to one ``None`` check per stream/chunk call, so the hot paths
pay nothing by default — and estimates are bit-identical either way,
because instruments only ever *read* synopsis counters.

Everything here is dependency-free (stdlib only) and thread-safe: a
registry-level lock guards instrument creation, and each instrument
carries its own lock for updates (Python int ``+=`` is not atomic
across bytecodes).

Naming follows Prometheus conventions (``snake_case``, ``_total``
suffix on counters, base-unit names like ``_seconds`` / ``_bytes``),
and instruments accept an optional label mapping::

    registry = MetricsRegistry()
    registry.counter("asketch_filter_hits_total").inc(5)
    registry.counter("source_retries_total", error="TransientSourceError").inc()
    registry.histogram("engine_chunk_seconds").observe(0.0021)
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "current_registry",
    "install_registry",
    "uninstall_registry",
]

#: Default histogram boundaries (seconds): 100 µs to 10 s, wide enough
#: for per-chunk ingest latencies from tiny test chunks up to the
#: checkpoint-dominated cold path.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    """Normalise a label mapping into a hashable, sorted identity."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, items, bytes).

    Decrements are rejected — monotonicity is what makes counter rates
    meaningful to scrapers; use a :class:`Gauge` for values that move
    both ways.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A value that can go up and down (depths, lags, rates)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds in increasing order; an implicit
    ``+Inf`` bucket catches the rest.  Observations update bucket
    counts, ``sum`` and ``count`` under one lock; quantiles are
    estimated from the bucket counts (:meth:`quantile`), which is the
    precision scrapers get — exact sample retention is deliberately
    not offered, to keep memory constant.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name} needs strictly increasing, non-empty "
                f"bucket boundaries, got {bounds}"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the covering bucket, the standard
        ``histogram_quantile`` estimate; returns 0.0 for an empty
        histogram, and the largest finite boundary when the quantile
        lands in the +Inf bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.buckets, counts):
            if cumulative + count >= rank:
                if count == 0:
                    return bound
                fraction = (rank - cumulative) / count
                return lower + (bound - lower) * fraction

            cumulative += count
            lower = bound
        return self.buckets[-1]


class MetricsRegistry:
    """A concurrent family of named instruments.

    Instruments are get-or-create: the first
    :meth:`counter`/:meth:`gauge`/:meth:`histogram` call with a given
    ``(name, labels)`` creates it, later calls return the same object.
    A name registered as one type cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[
            tuple[str, LabelItems], Counter | Gauge | Histogram
        ] = {}
        self._types: dict[str, type] = {}

    def _get_or_create(self, kind: type, name: str,
                       labels: Mapping[str, str], **kwargs):
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if type(instrument) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, cannot re-register as "
                    f"{kind.__name__}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is not None:
                return instrument
            registered = self._types.setdefault(name, kind)
            if registered is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{registered.__name__}, cannot re-register as "
                    f"{kind.__name__}"
                )
            instrument = kind(name, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with these labels."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with these labels."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with these labels.

        ``buckets`` only takes effect on first creation; later calls
        return the existing instrument unchanged.
        """
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        """All instruments, sorted by (name, labels) for stable output."""
        with self._lock:
            items = sorted(self._instruments.items())
        for _, instrument in items:
            yield instrument

    def get(self, name: str, **labels: str):
        """Look up an existing instrument, or None (never creates)."""
        return self._instruments.get((name, _label_items(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Value of a counter/gauge, or 0.0 when it was never created.

        The read-side convenience for tests and derived statistics: a
        metric that never fired reads as zero instead of ``KeyError``.
        """
        instrument = self.get(name, **labels)
        if instrument is None or isinstance(instrument, Histogram):
            return 0.0
        return instrument.value


# -- the installed process-wide registry -------------------------------------

_INSTALLED: MetricsRegistry | None = None


def install_registry(
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Install (and return) the process-wide registry.

    Instrumented code records into the installed registry; with none
    installed, instrumentation is skipped entirely.  Passing ``None``
    installs a fresh empty registry.  Installing replaces any previous
    registry (tests install their own around each scenario).
    """
    global _INSTALLED
    _INSTALLED = registry if registry is not None else MetricsRegistry()
    return _INSTALLED


def uninstall_registry() -> None:
    """Remove the installed registry (instrumentation goes quiet)."""
    global _INSTALLED
    _INSTALLED = None


def current_registry() -> MetricsRegistry | None:
    """The installed registry, or None when observability is off."""
    return _INSTALLED
