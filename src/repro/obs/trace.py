"""Structured-event tracing: span enter/exit records with pluggable sinks.

The trace hook is the third exposure surface of :mod:`repro.obs`
(besides Prometheus text and JSON snapshots): instrumented code emits
*events* — span ``enter``/``exit`` pairs around ingest, checkpoint and
recovery work, and ``point`` events for instantaneous occurrences like
an exchange — into whatever sink is installed.  With no sink installed
the emit sites reduce to one ``None`` check, mirroring the registry's
zero-overhead contract.

A sink is anything with ``emit(event: TraceEvent)``; the bundled
:class:`JsonlTraceWriter` appends one JSON object per line, the format
downstream span viewers and the test suite consume::

    {"name": "ingest", "phase": "exit", "t": 1723043.12,
     "duration_s": 0.0042, "attrs": {"chunk_index": 3, "items": 10000}}
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

__all__ = [
    "TraceEvent",
    "TraceSink",
    "JsonlTraceWriter",
    "RecordingTraceSink",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "trace_point",
    "trace_span",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``phase`` is ``"enter"`` / ``"exit"`` for spans (exits carry
    ``duration_s``) or ``"point"`` for instantaneous events; ``t`` is a
    ``time.monotonic()`` timestamp, so durations are robust to clock
    steps (readers wanting wall time stamp their own at file level).
    """

    name: str
    phase: str
    t: float
    duration_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The event as a JSON-safe dict (None duration omitted)."""
        record: dict[str, Any] = {
            "name": self.name,
            "phase": self.phase,
            "t": self.t,
        }
        if self.duration_s is not None:
            record["duration_s"] = self.duration_s
        record["attrs"] = self.attrs
        return record


@runtime_checkable
class TraceSink(Protocol):
    """Anything able to receive trace events."""

    def emit(self, event: TraceEvent) -> None:
        """Consume one event (must be cheap; called on hot-ish paths)."""
        ...


class RecordingTraceSink:
    """An in-memory sink collecting events (tests, interactive use)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def emit(self, event: TraceEvent) -> None:
        """Append the event to :attr:`events`."""
        with self._lock:
            self.events.append(event)

    def named(self, name: str) -> list[TraceEvent]:
        """All recorded events with this span/point name."""
        return [event for event in self.events if event.name == name]


class JsonlTraceWriter:
    """A sink appending one JSON object per event to a file.

    The file handle is opened lazily on the first event and flushed per
    line, so a crash loses at most the record being written.  Use as a
    context manager or call :meth:`close` explicitly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, event: TraceEvent) -> None:
        """Serialise and append one event."""
        line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlTraceWriter":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: closes the file."""
        self.close()


# -- the installed process-wide tracer ---------------------------------------

_INSTALLED: TraceSink | None = None


def install_tracer(sink: TraceSink) -> TraceSink:
    """Install (and return) the process-wide trace sink."""
    global _INSTALLED
    _INSTALLED = sink
    return _INSTALLED


def uninstall_tracer() -> None:
    """Remove the installed trace sink (tracing goes quiet)."""
    global _INSTALLED
    _INSTALLED = None


def current_tracer() -> TraceSink | None:
    """The installed trace sink, or None when tracing is off."""
    return _INSTALLED


def trace_point(name: str, **attrs: Any) -> None:
    """Emit an instantaneous event to the installed sink (if any)."""
    sink = _INSTALLED
    if sink is not None:
        sink.emit(TraceEvent(name, "point", time.monotonic(), None, attrs))


@contextmanager
def trace_span(name: str, **attrs: Any) -> Iterator[None]:
    """Emit enter/exit events around the wrapped block.

    A no-op when no sink is installed.  The exit event carries the
    block's duration and fires even when the block raises, so failed
    ingests and checkpoints still close their spans.
    """
    sink = _INSTALLED
    if sink is None:
        yield
        return
    start = time.monotonic()
    sink.emit(TraceEvent(name, "enter", start, None, attrs))
    try:
        yield
    finally:
        end = time.monotonic()
        sink.emit(TraceEvent(name, "exit", end, end - start, attrs))
