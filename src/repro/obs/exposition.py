"""Metric exposition: Prometheus text format, JSON snapshots, HTTP.

Three read paths over a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), the contract every scraper understands;
* :func:`snapshot_metrics` / :func:`write_metrics_json` — a JSON-safe
  snapshot (schema ``repro-metrics/v1``, checked by
  :func:`validate_metrics_json`), what ``repro-asketch run
  --metrics-json`` writes and what checkpoint run manifests embed;
* :class:`MetricsServer` — a stdlib-only HTTP endpoint serving both
  (``GET /metrics`` text, ``GET /metrics.json``), behind
  ``repro-asketch serve-metrics``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
)

__all__ = [
    "render_prometheus",
    "snapshot_metrics",
    "write_metrics_json",
    "validate_metrics_json",
    "MetricsServer",
]

#: Schema identifier stamped into every JSON snapshot.
METRICS_SCHEMA = "repro-metrics/v1"


def _require_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    registry = registry if registry is not None else current_registry()
    if registry is None:
        raise ValueError(
            "no registry given and none installed; call "
            "repro.obs.install_registry() first"
        )
    return registry


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in items
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Defaults to the installed registry.  Counters, gauges and
    histograms map to their native Prometheus types; histogram buckets
    render cumulatively with the mandatory ``+Inf`` bucket plus
    ``_sum`` and ``_count`` series.  Output is sorted by metric name,
    so it is stable across runs (scrape-diff friendly).
    """
    registry = _require_registry(registry)
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        name = instrument.name
        if isinstance(instrument, Counter):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_format_labels(instrument.labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{_format_labels(instrument.labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in instrument.bucket_counts():
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(instrument.labels, le)} {cumulative}"
                )
            lines.append(
                f"{name}_sum{_format_labels(instrument.labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(
                f"{name}_count{_format_labels(instrument.labels)} "
                f"{instrument.count}"
            )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def snapshot_metrics(
    registry: MetricsRegistry | None = None,
    derived: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A JSON-safe snapshot of a registry (schema ``repro-metrics/v1``).

    ``derived`` attaches caller-computed summary statistics (hit
    rates, checkpoint positions) without them masquerading as raw
    instruments.  Histograms carry their cumulative buckets plus p50
    and p99 estimates, the same quantities the bench trajectory
    records.
    """
    registry = _require_registry(registry)
    counters: list[dict[str, Any]] = []
    gauges: list[dict[str, Any]] = []
    histograms: list[dict[str, Any]] = []
    for instrument in registry.instruments():
        entry: dict[str, Any] = {
            "name": instrument.name,
            "labels": dict(instrument.labels),
        }
        if isinstance(instrument, Counter):
            entry["value"] = instrument.value
            counters.append(entry)
        elif isinstance(instrument, Gauge):
            entry["value"] = instrument.value
            gauges.append(entry)
        elif isinstance(instrument, Histogram):
            entry["buckets"] = [
                ["+Inf" if bound == math.inf else bound, cumulative]
                for bound, cumulative in instrument.bucket_counts()
            ]
            entry["sum"] = instrument.sum
            entry["count"] = instrument.count
            entry["p50"] = instrument.quantile(0.5)
            entry["p99"] = instrument.quantile(0.99)
            histograms.append(entry)
    return {
        "schema": METRICS_SCHEMA,
        "generated_unix": time.time(),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "derived": dict(derived or {}),
    }


def write_metrics_json(
    path: str | Path,
    registry: MetricsRegistry | None = None,
    derived: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write :func:`snapshot_metrics` to ``path``; returns the snapshot."""
    snapshot = snapshot_metrics(registry, derived)
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return snapshot


def validate_metrics_json(document: Any) -> list[str]:
    """Check a snapshot against the ``repro-metrics/v1`` schema.

    Returns a list of human-readable problems (empty = valid) instead
    of raising, so CI jobs can print every violation at once.  The
    check is structural — required keys, types, label shapes, bucket
    monotonicity — and dependency-free by design (no jsonschema).
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"snapshot must be an object, got {type(document).__name__}"]
    if document.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema must be {METRICS_SCHEMA!r}, got "
            f"{document.get('schema')!r}"
        )
    if not isinstance(document.get("generated_unix"), (int, float)):
        problems.append("generated_unix must be a number")
    if not isinstance(document.get("derived"), dict):
        problems.append("derived must be an object")

    def check_series(section: str, *, histogram: bool) -> None:
        series = document.get(section)
        if not isinstance(series, list):
            problems.append(f"{section} must be a list")
            return
        for position, entry in enumerate(series):
            where = f"{section}[{position}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                problems.append(f"{where}.name must be a non-empty string")
            labels = entry.get("labels")
            if not isinstance(labels, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in labels.items()
            ):
                problems.append(f"{where}.labels must map strings to strings")
            if histogram:
                buckets = entry.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    problems.append(f"{where}.buckets must be a "
                                    "non-empty list")
                else:
                    last = -1
                    for pair in buckets:
                        if (
                            not isinstance(pair, list)
                            or len(pair) != 2
                            or not isinstance(pair[1], int)
                            or pair[1] < last
                        ):
                            problems.append(
                                f"{where}.buckets must hold [bound, "
                                "cumulative-count] pairs with "
                                "non-decreasing counts"
                            )
                            break
                        last = pair[1]
                    if buckets and buckets[-1][0] != "+Inf":
                        problems.append(
                            f"{where}.buckets must end with the +Inf bucket"
                        )
                for key in ("sum", "count", "p50", "p99"):
                    if not isinstance(entry.get(key), (int, float)):
                        problems.append(f"{where}.{key} must be a number")
            else:
                if not isinstance(entry.get("value"), (int, float)):
                    problems.append(f"{where}.value must be a number")

    check_series("counters", histogram=False)
    check_series("gauges", histogram=False)
    check_series("histograms", histogram=True)
    return problems


class _MetricsHandler(BaseHTTPRequestHandler):
    """Request handler serving the owning :class:`MetricsServer`."""

    server: "_MetricsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve /metrics (text format) and /metrics.json."""
        registry = self.server.registry
        if self.path.split("?", 1)[0] in ("/", "/metrics"):
            body = render_prometheus(registry).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path.split("?", 1)[0] == "/metrics.json":
            body = (
                json.dumps(snapshot_metrics(registry), sort_keys=True) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class _MetricsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the registry for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 registry: MetricsRegistry) -> None:
        super().__init__(address, _MetricsHandler)
        self.registry = registry


class MetricsServer:
    """A stdlib-only HTTP scrape endpoint over a registry.

    Serves ``GET /metrics`` (Prometheus text) and ``GET /metrics.json``
    (the JSON snapshot) from a daemon thread.  ``port=0`` binds an
    ephemeral port, read back from :attr:`port` after :meth:`start` —
    the pattern the tests and ``repro-asketch serve-metrics`` use.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = _require_registry(registry)
        self._host = host
        self._requested_port = port
        self._server: _MetricsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL (valid after :meth:`start`)."""
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and start serving from a daemon thread; returns self."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = _MetricsHTTPServer(
            (self._host, self._requested_port), self.registry
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        """Context-manager entry: starts the server."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: stops the server."""
        self.stop()
