"""repro.obs — the end-to-end observability layer.

The paper's central claims are runtime behaviors: the filter absorbs
most of a skewed stream (Fig. 6-9), exchanges decay as the filter
converges (Alg. 1), and throughput is dominated by the filter fast
path.  This package makes those quantities — and the health of the
ingestion runtime around them — observable *live* instead of post-hoc:

* :mod:`repro.obs.registry` — a dependency-free metrics registry
  (counters, gauges, fixed-bucket histograms; thread-safe).  Install
  one with :func:`install_registry` and the instrumented paths
  (ASketch ingest, the stream engine, sharding, checkpointing,
  retries, quarantine, shard supervision) start recording; with none
  installed they cost one ``None`` check per chunk/stream call, and
  estimates are bit-identical either way.
* :mod:`repro.obs.exposition` — Prometheus text format
  (:func:`render_prometheus`), JSON snapshots
  (:func:`snapshot_metrics` / :func:`write_metrics_json`, schema
  checked by :func:`validate_metrics_json`), and a stdlib-only HTTP
  scrape endpoint (:class:`MetricsServer`).
* :mod:`repro.obs.trace` — span-style structured events
  (enter/exit for ingest, checkpoint, recovery; points for exchanges)
  through a pluggable sink (:func:`install_tracer`), with a JSONL
  writer included (:class:`JsonlTraceWriter`).

Quickstart::

    from repro import ASketch, zipf_stream
    from repro.obs import install_registry, render_prometheus

    registry = install_registry()
    sketch = ASketch(total_bytes=128 * 1024)
    sketch.process_batch(zipf_stream(100_000, 25_000, 1.5).keys)
    print(render_prometheus(registry))

See DESIGN.md §10 for the metric-to-paper-quantity mapping.
"""

from repro.obs.exposition import (
    METRICS_SCHEMA,
    MetricsServer,
    render_prometheus,
    snapshot_metrics,
    validate_metrics_json,
    write_metrics_json,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.trace import (
    JsonlTraceWriter,
    RecordingTraceSink,
    TraceEvent,
    TraceSink,
    current_tracer,
    install_tracer,
    trace_point,
    trace_span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsServer",
    "RecordingTraceSink",
    "TraceEvent",
    "TraceSink",
    "current_registry",
    "current_tracer",
    "install_registry",
    "install_tracer",
    "render_prometheus",
    "snapshot_metrics",
    "trace_point",
    "trace_span",
    "uninstall_registry",
    "uninstall_tracer",
    "validate_metrics_json",
    "write_metrics_json",
]
