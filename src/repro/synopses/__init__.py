"""The unified mergeable-synopsis protocol: state, merge, spec.

See :mod:`repro.synopses.protocol` for the structural interface and
:mod:`repro.synopses.spec` for declarative construction.  DESIGN.md §8
documents the semantics (what merge means per synopsis family, what the
state capture guarantees).
"""

from repro.synopses.protocol import (
    Synopsis,
    SynopsisState,
    synopsis_state_of,
)
from repro.synopses.spec import (
    SynopsisSpec,
    build_synopsis,
    register_synopsis,
    registered_kinds,
    resolve_kind,
)

__all__ = [
    "Synopsis",
    "SynopsisSpec",
    "SynopsisState",
    "build_synopsis",
    "register_synopsis",
    "registered_kinds",
    "resolve_kind",
    "synopsis_state_of",
]
