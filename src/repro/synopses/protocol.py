"""The mergeable-synopsis protocol every summary implements.

The paper positions ASketch as a front-end over *any* sketch (§3,
Figure 1); operationally a production collector needs the same
uniformity for three capabilities that used to be per-type special
cases:

* **state** — :meth:`Synopsis.state` captures a summary as a
  :class:`SynopsisState` (construction parameters + counter arrays +
  mutable scalars) and the classmethod ``from_state`` rebuilds an
  object whose future behaviour is identical.  This is the substrate of
  the generic ``save_synopsis`` / ``load_synopsis`` pair in
  :mod:`repro.persistence` — no more reaching into private fields.
* **merge** — linear sketches add cell-wise, counter summaries fold via
  weighted replay, ASketch folds one filter into the other through the
  exchange machinery.  What "merge" *means* per family is documented on
  each implementation (and in DESIGN.md §8).
* **spec** — :class:`repro.synopses.spec.SynopsisSpec` names a kind and
  its construction parameters declaratively, so CLIs, experiment
  configs, shard groups and benchmarks all construct through one
  registry-backed factory.

The protocol is structural (:class:`typing.Protocol`): a class opts in
by implementing the members, not by inheriting a base.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import StreamFormatError


@dataclass
class SynopsisState:
    """A synopsis captured as data: everything needed to rebuild it.

    Attributes
    ----------
    kind:
        The registry name of the synopsis type (see
        :mod:`repro.synopses.spec`).
    params:
        JSON-safe construction parameters — passing them as keyword
        arguments to the type's constructor yields an empty synopsis of
        identical geometry (dimensions, seeds, hash functions).
    arrays:
        The counter state as named NumPy arrays.  Nested synopses
        (ASketch's backend, a shard group's shards) flatten their
        children's arrays under dotted prefixes via :func:`prefix_arrays`.
    extra:
        JSON-safe mutable scalars and nested-child metadata (aggregate
        masses, statistics, child ``params``/``extra`` dicts).
    """

    kind: str
    params: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def equals(self, other: "SynopsisState") -> bool:
        """Exact state equality: same kind, params, extra, and arrays.

        Arrays compare element-wise with matching dtypes; the JSON-safe
        halves compare through a canonical JSON encoding (so int vs.
        int-valued float distinctions survive round-trips the same way
        persistence does).  This is the recovery invariant's notion of
        "bit-identical": two synopses with equal states behave
        identically forever after.
        """
        if not isinstance(other, SynopsisState):
            return False
        if self.kind != other.kind:
            return False
        canonical = lambda blob: json.dumps(blob, sort_keys=True, default=str)  # noqa: E731
        if canonical(self.params) != canonical(other.params):
            return False
        if canonical(self.extra) != canonical(other.extra):
            return False
        if sorted(self.arrays) != sorted(other.arrays):
            return False
        return all(
            self.arrays[name].dtype == other.arrays[name].dtype
            and np.array_equal(self.arrays[name], other.arrays[name])
            for name in self.arrays
        )


@runtime_checkable
class Synopsis(Protocol):
    """Structural interface of a mergeable, persistable stream summary.

    Every registered synopsis type (see
    :func:`repro.synopses.spec.registered_kinds`) satisfies this
    protocol: point updates and queries, byte-accurate sizing, full
    state capture/restore, and same-geometry merging.
    """

    #: Registry name of the type (matches its spec/state ``kind``).
    SYNOPSIS_KIND: str

    @property
    def size_bytes(self) -> int:
        """Logical synopsis size in bytes (paper accounting)."""
        ...

    def update(self, key: int, amount: int = 1) -> int | None:
        """Add ``amount`` occurrences of ``key``."""
        ...

    def estimate(self, key: int) -> int:
        """Approximate frequency of ``key``."""
        ...

    def state(self) -> SynopsisState:
        """Capture the full state (parameters + counters)."""
        ...

    @classmethod
    def from_state(cls, state: SynopsisState) -> "Synopsis":
        """Rebuild a synopsis whose future behaviour matches the original."""
        ...

    def merge(self, other: Any) -> None:
        """Fold another same-geometry synopsis of this type into this one."""
        ...


def synopsis_state_of(synopsis: Any) -> SynopsisState:
    """``synopsis.state()`` with a typed error for non-protocol objects."""
    state_method = getattr(synopsis, "state", None)
    if not callable(state_method):
        raise StreamFormatError(
            f"{type(synopsis).__name__} does not implement the synopsis "
            "state protocol (no state() method)"
        )
    state = state_method()
    if not isinstance(state, SynopsisState):
        raise StreamFormatError(
            f"{type(synopsis).__name__}.state() returned "
            f"{type(state).__name__}, expected SynopsisState"
        )
    return state


# -- nesting helpers --------------------------------------------------------


def prefix_arrays(
    prefix: str, arrays: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Flatten a child state's arrays under ``"<prefix>.<name>"`` keys."""
    return {f"{prefix}.{name}": array for name, array in arrays.items()}


def unprefix_arrays(
    prefix: str, arrays: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Recover a child's arrays from its dotted-prefix namespace."""
    marker = f"{prefix}."
    return {
        name[len(marker):]: array
        for name, array in arrays.items()
        if name.startswith(marker)
    }


def pack_nested(state: SynopsisState) -> dict[str, Any]:
    """The JSON-safe half of a child state (for a parent's ``extra``)."""
    return {
        "kind": state.kind,
        "params": state.params,
        "extra": state.extra,
    }


def unpack_nested(
    metadata: dict[str, Any], arrays: dict[str, np.ndarray], prefix: str
) -> SynopsisState:
    """Reassemble a child state from parent metadata + prefixed arrays."""
    return SynopsisState(
        kind=metadata["kind"],
        params=dict(metadata.get("params", {})),
        arrays=unprefix_arrays(prefix, arrays),
        extra=dict(metadata.get("extra", {})),
    )
