"""Declarative synopsis construction: specs and the kind registry.

A :class:`SynopsisSpec` is a (kind, parameters) pair that fully
describes how to build a synopsis — the single source every
construction site (CLI, experiment config, shard groups, benchmarks)
goes through, instead of re-spelling parameter lists.  The registry
maps a kind name to its implementing class lazily (module path strings,
resolved on first use) so this module stays import-cycle free.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError

#: kind -> "module.path:ClassName"; resolved lazily on first use.
_BUILTIN_KINDS: dict[str, str] = {
    "count-min": "repro.sketches.count_min:CountMinSketch",
    "count-sketch": "repro.sketches.count_sketch:CountSketch",
    "fcm": "repro.sketches.fcm:FrequencyAwareCountMin",
    "holistic-udaf": "repro.sketches.holistic_udaf:HolisticUDAF",
    "hierarchical-count-min": "repro.sketches.hierarchical:HierarchicalCountMin",
    "sf-sketch": "repro.sketches.sf_sketch:SFSketch",
    "salsa-cm": "repro.sketches.salsa:SalsaCountMin",
    "space-saving": "repro.counters.space_saving:SpaceSaving",
    "misra-gries": "repro.counters.misra_gries:MisraGries",
    "asketch": "repro.core.asketch:ASketch",
    "sliding-window-asketch": "repro.core.window:SlidingWindowASketch",
    "sharded-asketch": "repro.runtime.sharding:ShardedASketch",
    "shard-supervisor": "repro.runtime.reliability:ShardSupervisor",
}

#: Kinds registered at runtime (tests, extensions); shadows builtins.
_RUNTIME_KINDS: dict[str, type] = {}


@dataclass(frozen=True)
class SynopsisSpec:
    """A declarative recipe for building one synopsis.

    Attributes
    ----------
    kind:
        Registry name of the synopsis type (see :func:`registered_kinds`).
    params:
        Keyword arguments for the type's constructor.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def with_params(self, **updates: Any) -> "SynopsisSpec":
        """A copy with some parameters overridden (e.g. a per-run seed)."""
        return replace(self, params={**self.params, **updates})

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (CLI and checkpoint metadata)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SynopsisSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(kind=data["kind"], params=dict(data.get("params", {})))
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed synopsis spec: {data!r}") from exc


def register_synopsis(kind: str, cls: type) -> None:
    """Register (or override) a synopsis class under a kind name.

    The class must satisfy :class:`repro.synopses.protocol.Synopsis`;
    registration makes it constructible via :func:`build_synopsis` and
    loadable via :func:`repro.persistence.load_synopsis`.
    """
    if not kind:
        raise ConfigurationError("synopsis kind must be a non-empty string")
    _RUNTIME_KINDS[kind] = cls


def registered_kinds() -> list[str]:
    """All known kind names, sorted."""
    return sorted(set(_BUILTIN_KINDS) | set(_RUNTIME_KINDS))


def resolve_kind(kind: str) -> type:
    """The class implementing a kind (lazy import for builtins)."""
    if kind in _RUNTIME_KINDS:
        return _RUNTIME_KINDS[kind]
    try:
        target = _BUILTIN_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown synopsis kind {kind!r}; known kinds: "
            f"{', '.join(registered_kinds())}"
        ) from None
    module_name, _, class_name = target.partition(":")
    cls = getattr(importlib.import_module(module_name), class_name)
    _RUNTIME_KINDS[kind] = cls  # cache the import
    return cls


def build_synopsis(spec: SynopsisSpec) -> Any:
    """Construct a synopsis from its spec via the registry."""
    cls = resolve_kind(spec.kind)
    try:
        return cls(**dict(spec.params))
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for synopsis kind {spec.kind!r}: {exc}"
        ) from exc
