"""Pairwise-independent hash families with scalar and vectorised evaluation.

Every family exposes two call forms:

* ``family(key)`` — hash a single non-negative integer key;
* ``family.hash_array(keys)`` — hash a NumPy array of keys in one shot.

Keys are non-negative integers.  Callers that hash strings or tuples should
map them to integers first (see :func:`key_to_int`).  All families are
deterministic given their ``seed``, so experiments are reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError

#: The Mersenne prime 2**61 - 1, the standard modulus for Carter-Wegman
#: hashing of up-to-61-bit keys.
MERSENNE_PRIME_61 = (1 << 61) - 1

_UINT64 = np.uint64
_MASK_64 = (1 << 64) - 1


def key_to_int(key: object) -> int:
    """Map an arbitrary hashable key to a stable non-negative integer.

    Integers use the ZigZag bijection (``2v`` for ``v >= 0``,
    ``-2v - 1`` for ``v < 0``) so mixed-sign key sets never collide;
    everything else goes through Python's ``hash`` folded to 61 bits.
    Python's string hashing is salted per-process unless
    ``PYTHONHASHSEED`` is pinned, so experiments that need cross-process
    determinism should use integer keys (all built-in generators do).
    """
    if isinstance(key, (int, np.integer)):
        value = int(key)
        if value >= 0:
            return value << 1
        return (-value << 1) - 1
    return hash(key) & MERSENNE_PRIME_61


def encode_key_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`key_to_int` for int64 key arrays."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.where(keys >= 0, keys << 1, (-keys << 1) - 1)


def cw_fold_columns(
    a_hi: int,
    a_lo: int,
    b_mod: int,
    encoded: np.ndarray,
    width: int,
) -> np.ndarray:
    """``((a*x + b) mod p) mod width`` for encoded keys below ``2**31``.

    ``a`` arrives pre-split as ``a = a_hi * 2**31 + a_lo`` so every
    product fits in 64 bits, and the ``a_hi * x * 2**31`` term reduces
    with the Mersenne identity ``2**61 = 1 (mod p)``: write
    ``y = y_hi * 2**30 + y_lo``, then ``y * 2**31 = y_hi * 2**61 +
    y_lo * 2**31 = y_hi + y_lo * 2**31 (mod p)``.  With
    ``a_hi < 2**30`` (``a < p``) and keys below ``2**31``, every
    intermediate stays under ``2**62`` and every sum under ``3 * 2**61``,
    so plain signed int64 arithmetic is exact — the same bound the
    compiled kernels (:mod:`repro.kernels`) rely on, which share this
    folding element-for-element.
    """
    lo = (a_lo * encoded) % MERSENNE_PRIME_61
    hi = (a_hi * encoded) % MERSENNE_PRIME_61
    hi_term = ((hi >> 30) + ((hi & ((1 << 30) - 1)) << 31)) % MERSENNE_PRIME_61
    return ((lo + hi_term + b_mod) % MERSENNE_PRIME_61) % width


class HashFamily(ABC):
    """A seeded hash function mapping integer keys onto ``[0, range)``."""

    def __init__(self, output_range: int, seed: int) -> None:
        if output_range <= 0:
            raise ConfigurationError(
                f"hash output range must be positive, got {output_range}"
            )
        self.output_range = int(output_range)
        self.seed = int(seed)

    @abstractmethod
    def __call__(self, key: int) -> int:
        """Hash one integer key to ``[0, output_range)``."""

    @abstractmethod
    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Hash a uint64/int64 array of keys; returns an int64 array."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(range={self.output_range}, "
            f"seed={self.seed})"
        )


class CarterWegmanHash(HashFamily):
    """``((a*x + b) mod p) mod h`` with ``p = 2**61 - 1``.

    Pairwise independent for keys below ``p``.  This is the construction
    referenced by the Count-Min paper [11] and is the default family for
    every sketch in this library.
    """

    def __init__(self, output_range: int, seed: int) -> None:
        super().__init__(output_range, seed)
        rng = np.random.default_rng(seed)
        # a must be non-zero for pairwise independence.
        self._a = int(rng.integers(1, MERSENNE_PRIME_61))
        self._b = int(rng.integers(0, MERSENNE_PRIME_61))

    def __call__(self, key: int) -> int:
        return ((self._a * key + self._b) % MERSENNE_PRIME_61) % self.output_range

    @property
    def kernel_params(self) -> tuple[int, int, int]:
        """``(a_hi, a_lo, b mod p)`` for :func:`cw_fold_columns` callers.

        The pre-split form the compiled kernels consume; valid for
        encoded keys below ``2**31`` (see :func:`cw_fold_columns`).
        """
        return (
            self._a >> 31,
            self._a & ((1 << 31) - 1),
            self._b % MERSENNE_PRIME_61,
        )

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        # NumPy has no native 128-bit ints; use Python object math only
        # for the rare huge-key case and the int64-safe Mersenne folding
        # (cw_fold_columns) otherwise.
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and int(keys.max(initial=0)) < (1 << 31):
            a_hi, a_lo, b_mod = self.kernel_params
            return cw_fold_columns(
                a_hi, a_lo, b_mod, keys, self.output_range
            )
        out = np.empty(keys.shape, dtype=np.int64)
        flat_in = keys.reshape(-1)
        flat_out = out.reshape(-1)
        for i, key in enumerate(flat_in.tolist()):
            flat_out[i] = self(key)
        return out


class MultiplyShiftHash(HashFamily):
    """Dietzfelbinger multiply-shift hashing for power-of-two ranges.

    ``h(x) = (a*x mod 2**64) >> (64 - log2(range))`` with odd ``a`` is
    2-universal and compiles to a single multiply on real hardware — this is
    the family a performance-oriented C implementation would use, and its
    per-evaluation cost constant in the hardware model is lower than
    Carter-Wegman's.
    """

    def __init__(self, output_range: int, seed: int) -> None:
        super().__init__(output_range, seed)
        if output_range & (output_range - 1):
            raise ConfigurationError(
                "MultiplyShiftHash requires a power-of-two range, "
                f"got {output_range}"
            )
        self._shift = 64 - int(output_range).bit_length() + 1
        rng = np.random.default_rng(seed)
        self._a = int(rng.integers(0, 1 << 63)) * 2 + 1  # odd

    def __call__(self, key: int) -> int:
        return ((self._a * key) & _MASK_64) >> self._shift

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        k = np.asarray(keys).astype(_UINT64)
        with np.errstate(over="ignore"):
            mixed = k * _UINT64(self._a & _MASK_64)
        return (mixed >> _UINT64(self._shift)).astype(np.int64)


class TabulationHash(HashFamily):
    """Simple tabulation hashing over the 8 bytes of a 64-bit key.

    3-independent and behaves like a fully random function for most
    streaming workloads (Patrascu & Thorup).  Included so that sensitivity
    of the sketches to the hash family can be tested.
    """

    def __init__(self, output_range: int, seed: int) -> None:
        super().__init__(output_range, seed)
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, _MASK_64, size=(8, 256), dtype=np.uint64
        )

    def __call__(self, key: int) -> int:
        acc = 0
        for byte_index in range(8):
            byte = (key >> (8 * byte_index)) & 0xFF
            acc ^= int(self._tables[byte_index, byte])
        return acc % self.output_range

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        k = np.asarray(keys).astype(_UINT64)
        acc = np.zeros(k.shape, dtype=np.uint64)
        for byte_index in range(8):
            byte = (k >> _UINT64(8 * byte_index)) & _UINT64(0xFF)
            acc ^= self._tables[byte_index][byte.astype(np.intp)]
        return (acc % _UINT64(self.output_range)).astype(np.int64)


class SignHash:
    """Pairwise-independent ±1 hash used by Count Sketch's estimator.

    Implemented as the low bit of a Carter-Wegman hash with range 2,
    mapped to {-1, +1}.
    """

    def __init__(self, seed: int) -> None:
        self._bit = CarterWegmanHash(2, seed)

    def __call__(self, key: int) -> int:
        return 1 if self._bit(key) else -1

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        bits = self._bit.hash_array(keys)
        return bits * 2 - 1


_FAMILIES = {
    "carter-wegman": CarterWegmanHash,
    "multiply-shift": MultiplyShiftHash,
    "tabulation": TabulationHash,
}


def make_hash_family(name: str, output_range: int, seed: int) -> HashFamily:
    """Instantiate a hash family by name.

    Parameters
    ----------
    name:
        One of ``"carter-wegman"``, ``"multiply-shift"``, ``"tabulation"``.
    output_range:
        Size of the hash codomain ``[0, output_range)``.
    seed:
        Deterministic seed for the family's random parameters.
    """
    try:
        family = _FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown hash family {name!r}; choose from {sorted(_FAMILIES)}"
        ) from None
    return family(output_range, seed)
