"""Hash families used by all sketch data structures.

The paper's sketches require *pairwise independent* hash functions mapping
item keys onto ``[0, h)``.  This package provides:

* :class:`~repro.hashing.families.CarterWegmanHash` — the classical
  ``((a*x + b) mod p) mod h`` construction over the Mersenne prime
  ``p = 2**61 - 1`` (pairwise independent, the textbook choice for
  Count-Min).
* :class:`~repro.hashing.families.MultiplyShiftHash` — Dietzfelbinger's
  multiply-shift scheme for power-of-two ranges (2-universal, fastest).
* :class:`~repro.hashing.families.TabulationHash` — simple tabulation
  (3-independent, strong in practice).
* :class:`~repro.hashing.families.SignHash` — ±1 valued pairwise-independent
  hash used by Count Sketch.
* :class:`~repro.hashing.families.HashFamily` — the protocol all of the
  above implement, including vectorised batch evaluation over NumPy arrays.
"""

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    CarterWegmanHash,
    HashFamily,
    MultiplyShiftHash,
    SignHash,
    TabulationHash,
    make_hash_family,
)

__all__ = [
    "MERSENNE_PRIME_61",
    "CarterWegmanHash",
    "HashFamily",
    "MultiplyShiftHash",
    "SignHash",
    "TabulationHash",
    "make_hash_family",
]
