"""Filter-id search kernels: faithful SIMD transcription, NumPy, scalar.

Three interchangeable implementations of "find the index of ``item`` in a
small int32 id array, or -1":

* :func:`simd_find_index` — Algorithm 3 from the paper, transcribed
  literally onto the emulated SSE2 intrinsics.  Slow in Python, but it is
  the reference semantics and what the hardware cost model prices.
* :func:`numpy_find_index` — vectorised scan; identical results, used by
  the Vector/heap filters at runtime.
* :func:`scalar_find_index` — plain Python loop; the non-SIMD baseline the
  SIMD ablation benchmark compares against.
"""

from __future__ import annotations

import numpy as np

from repro.simd.register import (
    M128,
    builtin_ctz,
    mm_cmpeq_epi32,
    mm_movemask_epi8,
    mm_packs_epi32,
    mm_set1_epi32,
)

#: Number of 32-bit ids scanned per SIMD probe block (four XMM compares).
ITEMS_PER_BLOCK = 16


def simd_probe_blocks(n_items: int) -> int:
    """Number of 16-item SIMD blocks needed to scan ``n_items`` ids.

    The hardware cost model charges one block cost per probe block; this is
    the ``ceil(n/16)`` loop-trip count of the real kernel.
    """
    return (max(n_items, 0) + ITEMS_PER_BLOCK - 1) // ITEMS_PER_BLOCK


def _load_block(filter_ids: np.ndarray, start: int) -> list[M128]:
    """Load a 16-id block as four XMM registers, zero-padding the tail."""
    block = np.zeros(ITEMS_PER_BLOCK, dtype=np.int32)
    end = min(start + ITEMS_PER_BLOCK, filter_ids.shape[0])
    block[: end - start] = filter_ids[start:end]
    return [
        M128.from_int32_lanes(block[offset : offset + 4])
        for offset in range(0, ITEMS_PER_BLOCK, 4)
    ]


def simd_find_index(filter_ids: np.ndarray, item: int) -> int:
    """Algorithm 3: SSE2 linear search over the filter id array.

    Processes 16 ids per iteration using four ``_mm_cmpeq_epi32``, three
    ``_mm_packs_epi32``, one ``_mm_movemask_epi8`` and ``__builtin_ctz`` —
    the exact instruction sequence of the paper's kernel, generalised to
    arrays longer than 16 by the outer block loop.

    Zero-padding the tail block is safe only when ``item != 0``; callers
    encode empty slots and keys so that id 0 never collides (the filters in
    this library reserve id 0 as the empty marker and store keys + 1).

    Returns the index of ``item`` in ``filter_ids`` or -1 if absent.
    """
    filter_ids = np.ascontiguousarray(filter_ids, dtype=np.int32)
    s_item = mm_set1_epi32(item)
    for start in range(0, filter_ids.shape[0], ITEMS_PER_BLOCK):
        f0, f1, f2, f3 = _load_block(filter_ids, start)
        f_comp = mm_cmpeq_epi32(s_item, f0)
        s_comp = mm_cmpeq_epi32(s_item, f1)
        t_comp = mm_cmpeq_epi32(s_item, f2)
        r_comp = mm_cmpeq_epi32(s_item, f3)
        f_comp = mm_packs_epi32(f_comp, s_comp)
        t_comp = mm_packs_epi32(t_comp, r_comp)
        f_comp = _packs_epi16(f_comp, t_comp)
        found = mm_movemask_epi8(f_comp)
        if found:
            index = start + builtin_ctz(found)
            if index < filter_ids.shape[0]:
                return index
    return -1


def _packs_epi16(a: M128, b: M128) -> M128:
    """``_mm_packs_epi16``: pack 8+8 int16 lanes into 16 int8 with saturation.

    The paper's listing writes the final narrowing step as a third
    ``_mm_packs_epi32`` call; on hardware the operands at that point hold
    16-bit masks, so the semantically executed operation is the epi16 pack.
    We implement the epi16 semantics (the published code compiles because
    both intrinsics take ``__m128i``).
    """
    merged = np.concatenate([a.as_int16_lanes(), b.as_int16_lanes()])
    saturated = np.clip(merged, -128, 127).astype(np.int8)
    return M128(saturated.view(np.uint8).copy())


def numpy_find_index(filter_ids: np.ndarray, item: int) -> int:
    """Vectorised equivalent of :func:`simd_find_index` (fast path)."""
    hits = np.nonzero(filter_ids == item)[0]
    if hits.size:
        return int(hits[0])
    return -1


def scalar_find_index(filter_ids: np.ndarray, item: int) -> int:
    """Plain-loop equivalent, the scalar baseline for the SIMD ablation."""
    for index, candidate in enumerate(filter_ids.tolist()):
        if candidate == item:
            return index
    return -1
