"""Lane-accurate emulation of the SSE2 subset used by the paper.

The ASketch filter lookup (Algorithm 3 in the paper) is written in C with
SSE2 intrinsics: four ``_mm_cmpeq_epi32`` comparisons scan a 16-item id
array, three ``_mm_packs_epi32`` calls narrow the comparison masks,
``_mm_movemask_epi8`` extracts a 16-bit hit mask and ``__builtin_ctz``
locates the hit.

Python cannot execute SSE2 directly, so this package provides:

* :class:`~repro.simd.register.M128` — a 128-bit register value emulated as
  four 32-bit lanes, with the exact intrinsics Algorithm 3 uses;
* :func:`~repro.simd.engine.simd_find_index` — a literal transcription of
  Algorithm 3 against those intrinsics (the reference/faithful path);
* :func:`~repro.simd.engine.numpy_find_index` — a vectorised NumPy scan
  producing identical results (the fast path used in production);
* :func:`~repro.simd.engine.scalar_find_index` — a plain loop, used by the
  ablation benchmark comparing SIMD and scalar probe cost.

The two fast/faithful paths are property-tested for equality; the hardware
cost model charges SIMD probes ``ceil(n/16)`` block costs, mirroring the
16-items-per-iteration structure of the real kernel.
"""

from repro.simd.engine import (
    numpy_find_index,
    scalar_find_index,
    simd_find_index,
    simd_probe_blocks,
)
from repro.simd.register import (
    M128,
    builtin_ctz,
    mm_cmpeq_epi32,
    mm_movemask_epi8,
    mm_packs_epi32,
    mm_set1_epi32,
)

__all__ = [
    "M128",
    "builtin_ctz",
    "mm_cmpeq_epi32",
    "mm_movemask_epi8",
    "mm_packs_epi32",
    "mm_set1_epi32",
    "numpy_find_index",
    "scalar_find_index",
    "simd_find_index",
    "simd_probe_blocks",
]
