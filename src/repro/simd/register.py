"""A 128-bit SSE2 register value emulated on NumPy byte arrays.

Only the intrinsics appearing in the paper's Algorithm 3 are provided:
``_mm_set1_epi32``, ``_mm_cmpeq_epi32``, ``_mm_packs_epi32``,
``_mm_movemask_epi8`` and GCC's ``__builtin_ctz``.  Semantics follow the
Intel intrinsics guide exactly (little-endian lane order, signed saturation
for the pack operation) so that the emulated kernel is a faithful
transcription of the C code.
"""

from __future__ import annotations

import numpy as np

_INT16_MIN = -(1 << 15)
_INT16_MAX = (1 << 15) - 1


class M128:
    """An immutable 128-bit value held as 16 little-endian bytes."""

    __slots__ = ("_bytes",)

    def __init__(self, raw_bytes: np.ndarray) -> None:
        if raw_bytes.dtype != np.uint8 or raw_bytes.shape != (16,):
            raise ValueError("M128 requires exactly 16 uint8 bytes")
        self._bytes = raw_bytes

    @classmethod
    def from_int32_lanes(cls, lanes: np.ndarray) -> "M128":
        """Build a register from four 32-bit lanes (lane 0 = lowest bytes)."""
        lanes = np.asarray(lanes, dtype=np.int32)
        if lanes.shape != (4,):
            raise ValueError("M128 has exactly four 32-bit lanes")
        return cls(lanes.view(np.uint8).copy())

    @classmethod
    def from_int16_lanes(cls, lanes: np.ndarray) -> "M128":
        """Build a register from eight 16-bit lanes."""
        lanes = np.asarray(lanes, dtype=np.int16)
        if lanes.shape != (8,):
            raise ValueError("expected eight 16-bit lanes")
        return cls(lanes.view(np.uint8).copy())

    def as_int32_lanes(self) -> np.ndarray:
        """View the register as four signed 32-bit lanes."""
        return self._bytes.view(np.int32)

    def as_int16_lanes(self) -> np.ndarray:
        """View the register as eight signed 16-bit lanes."""
        return self._bytes.view(np.int16)

    def as_bytes(self) -> np.ndarray:
        """View the register as 16 unsigned bytes."""
        return self._bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, M128):
            return NotImplemented
        return bool(np.array_equal(self._bytes, other._bytes))

    def __hash__(self) -> int:
        return hash(self._bytes.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lanes = ", ".join(hex(int(v) & 0xFFFFFFFF) for v in self.as_int32_lanes())
        return f"M128({lanes})"


def mm_set1_epi32(value: int) -> M128:
    """``_mm_set1_epi32``: broadcast one 32-bit value to all four lanes.

    The value is wrapped to signed 32 bits exactly as a C cast would.
    """
    wrapped = np.array([value & 0xFFFFFFFF] * 4, dtype=np.uint32).view(np.int32)
    return M128(wrapped.view(np.uint8).copy())


def mm_cmpeq_epi32(a: M128, b: M128) -> M128:
    """``_mm_cmpeq_epi32``: per-lane equality, all-ones on match."""
    mask = np.where(
        a.as_int32_lanes() == b.as_int32_lanes(),
        np.int32(-1),
        np.int32(0),
    )
    return M128.from_int32_lanes(mask)


def mm_packs_epi32(a: M128, b: M128) -> M128:
    """``_mm_packs_epi32``: pack 4+4 int32 lanes into 8 int16 with saturation.

    Lanes of ``a`` occupy the low half of the result, lanes of ``b`` the
    high half, matching the hardware lane order.
    """
    merged = np.concatenate([a.as_int32_lanes(), b.as_int32_lanes()])
    saturated = np.clip(merged, _INT16_MIN, _INT16_MAX).astype(np.int16)
    return M128.from_int16_lanes(saturated)


def mm_movemask_epi8(a: M128) -> int:
    """``_mm_movemask_epi8``: gather the sign bit of each of the 16 bytes."""
    signs = (a.as_bytes() >> 7) & 1
    mask = 0
    for bit_index in range(16):
        mask |= int(signs[bit_index]) << bit_index
    return mask


def builtin_ctz(value: int) -> int:
    """GCC ``__builtin_ctz``: count trailing zero bits of a non-zero int."""
    if value == 0:
        raise ValueError("__builtin_ctz is undefined for zero")
    return (value & -value).bit_length() - 1
