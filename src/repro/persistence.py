"""Persist synopses to disk and restore them bit-for-bit.

Production deployments checkpoint their synopses (collector restarts,
shard migration).  Because every structure in this library derives its
hash functions deterministically from ``(seed, dimensions)``, a synopsis
is fully described by its construction parameters plus its counter
state; this module saves both in a single ``.npz`` archive and restores
an object whose future behaviour is identical to the original's.

Supported: :class:`~repro.sketches.count_min.CountMinSketch`,
:class:`~repro.core.asketch.ASketch` (over a Count-Min backend, the
paper's default configuration) and
:class:`~repro.sketches.hierarchical.HierarchicalCountMin`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import StreamFormatError
from repro.sketches.count_min import CountMinSketch

_FORMAT_VERSION = 1


def _pack_metadata(metadata: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)


def _unpack_metadata(blob: np.ndarray) -> dict:
    try:
        return json.loads(blob.tobytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StreamFormatError(f"corrupt synopsis metadata: {exc}")


def save_count_min(sketch: CountMinSketch, path: str | Path) -> None:
    """Write a Count-Min sketch (parameters + counters) to ``path``."""
    metadata = {
        "version": _FORMAT_VERSION,
        "kind": "count-min",
        "num_hashes": sketch.num_hashes,
        "row_width": sketch.row_width,
        "seed": sketch.seed,
        "conservative": sketch.conservative,
        "hash_family": sketch.hash_family_name,
    }
    np.savez_compressed(
        Path(path),
        metadata=_pack_metadata(metadata),
        table=sketch.table,
    )


def load_count_min(path: str | Path) -> CountMinSketch:
    """Restore a Count-Min sketch saved by :func:`save_count_min`."""
    with np.load(Path(path)) as archive:
        metadata = _unpack_metadata(archive["metadata"])
        _require(metadata, "count-min")
        sketch = CountMinSketch(
            num_hashes=metadata["num_hashes"],
            row_width=metadata["row_width"],
            seed=metadata["seed"],
            conservative=metadata["conservative"],
            hash_family=metadata["hash_family"],
        )
        sketch._table[:] = archive["table"]
    return sketch


def save_hierarchical(
    hierarchy: "HierarchicalCountMin", path: str | Path
) -> None:
    """Write a hierarchical Count-Min (all level tables) to ``path``."""
    from repro.sketches.hierarchical import HierarchicalCountMin

    assert isinstance(hierarchy, HierarchicalCountMin)
    level0 = hierarchy._levels[0]
    metadata = {
        "version": _FORMAT_VERSION,
        "kind": "hierarchical-count-min",
        "domain_bits": hierarchy.domain_bits,
        "num_hashes": level0.num_hashes,
        "per_level_bytes": level0.size_bytes,
        "seed_base": level0.seed // 104_729,
        "total": hierarchy.total,
    }
    arrays = {
        f"level{index}": sketch.table
        for index, sketch in enumerate(hierarchy._levels)
    }
    np.savez_compressed(
        Path(path), metadata=_pack_metadata(metadata), **arrays
    )


def load_hierarchical(path: str | Path) -> "HierarchicalCountMin":
    """Restore a hierarchy saved by :func:`save_hierarchical`."""
    from repro.sketches.hierarchical import HierarchicalCountMin

    with np.load(Path(path)) as archive:
        metadata = _unpack_metadata(archive["metadata"])
        _require(metadata, "hierarchical-count-min")
        levels = metadata["domain_bits"] + 1
        hierarchy = HierarchicalCountMin(
            metadata["domain_bits"],
            total_bytes=metadata["per_level_bytes"] * levels,
            num_hashes=metadata["num_hashes"],
            seed=metadata["seed_base"],
        )
        for index in range(levels):
            hierarchy._levels[index]._table[:] = archive[f"level{index}"]
        hierarchy._total = metadata["total"]
    return hierarchy


def save_asketch(asketch: ASketch, path: str | Path) -> None:
    """Write an ASketch (filter state + sketch + statistics) to ``path``.

    Only the Count-Min backend is supported (the paper's default); the
    filter's monitored entries are saved exactly.
    """
    sketch = asketch.sketch
    if not isinstance(sketch, CountMinSketch):
        raise StreamFormatError(
            "only ASketch over a Count-Min backend is persistable, got "
            f"{type(sketch).__name__}"
        )
    entries = asketch.filter.entries()
    metadata = {
        "version": _FORMAT_VERSION,
        "kind": "asketch",
        "filter_kind": asketch.filter_kind,
        "filter_capacity": asketch.filter.capacity,
        "max_exchanges_per_update": asketch.max_exchanges_per_update,
        "total_mass": asketch.total_mass,
        "overflow_mass": asketch.overflow_mass,
        "miss_events": asketch.miss_events,
        "exchanges": asketch.ops.exchanges,
        "sketch": {
            "num_hashes": sketch.num_hashes,
            "row_width": sketch.row_width,
            "seed": sketch.seed,
            "conservative": sketch.conservative,
            "hash_family": sketch.hash_family_name,
        },
    }
    np.savez_compressed(
        Path(path),
        metadata=_pack_metadata(metadata),
        table=sketch.table,
        filter_keys=np.array([e.key for e in entries], dtype=np.int64),
        filter_new=np.array([e.new_count for e in entries], dtype=np.int64),
        filter_old=np.array([e.old_count for e in entries], dtype=np.int64),
    )


def load_asketch(path: str | Path) -> ASketch:
    """Restore an ASketch saved by :func:`save_asketch`."""
    with np.load(Path(path)) as archive:
        metadata = _unpack_metadata(archive["metadata"])
        _require(metadata, "asketch")
        sketch_metadata = metadata["sketch"]
        sketch = CountMinSketch(
            num_hashes=sketch_metadata["num_hashes"],
            row_width=sketch_metadata["row_width"],
            seed=sketch_metadata["seed"],
            conservative=sketch_metadata["conservative"],
            hash_family=sketch_metadata["hash_family"],
        )
        sketch._table[:] = archive["table"]
        asketch = ASketch(
            sketch=sketch,
            filter_items=metadata["filter_capacity"],
            filter_kind=metadata["filter_kind"],
            max_exchanges_per_update=metadata["max_exchanges_per_update"],
        )
        for key, new_count, old_count in zip(
            archive["filter_keys"].tolist(),
            archive["filter_new"].tolist(),
            archive["filter_old"].tolist(),
        ):
            asketch.filter.insert(int(key), int(new_count), int(old_count))
        asketch.total_mass = metadata["total_mass"]
        asketch.overflow_mass = metadata["overflow_mass"]
        asketch.miss_events = metadata["miss_events"]
        asketch.ops.exchanges = metadata["exchanges"]
    return asketch


def _require(metadata: dict, kind: str) -> None:
    if metadata.get("version") != _FORMAT_VERSION:
        raise StreamFormatError(
            f"unsupported synopsis format version {metadata.get('version')!r}"
        )
    if metadata.get("kind") != kind:
        raise StreamFormatError(
            f"expected a {kind} archive, found {metadata.get('kind')!r}"
        )
