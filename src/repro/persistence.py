"""Persist synopses to disk and restore them bit-for-bit.

Production deployments checkpoint their synopses (collector restarts,
shard migration).  Because every structure in this library derives its
hash functions deterministically from ``(seed, dimensions)``, a synopsis
is fully described by its construction parameters plus its counter
state; :func:`save_synopsis` captures both through the synopsis state
protocol (:mod:`repro.synopses.protocol`) into a single ``.npz``
archive, and :func:`load_synopsis` restores an object whose future
behaviour is identical to the original's.

Every registered synopsis kind is supported — plain sketches (Count-Min,
Count Sketch, FCM, Holistic UDAF, hierarchical Count-Min), counter
summaries (Space Saving, Misra-Gries), :class:`~repro.core.asketch.
ASketch` over any filter kind and any persistable backend, and
:class:`~repro.runtime.sharding.ShardedASketch` groups.  The historical
per-type entry points (``save_count_min`` and friends) remain as thin
wrappers that additionally pin the archive's kind.

Archive layout (format version 2): one ``metadata`` array holding a
UTF-8 JSON blob ``{version, kind, params, extra}`` plus the state's
NumPy arrays stored under ``array.<name>`` keys (nested synopses use
dotted prefixes inside ``<name>``, e.g. ``array.sketch.table``).
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, StreamFormatError
from repro.synopses.protocol import SynopsisState, synopsis_state_of
from repro.synopses.spec import resolve_kind

_FORMAT_VERSION = 2

#: npz key prefix separating state arrays from the metadata blob.
_ARRAY_PREFIX = "array."


def _pack_metadata(metadata: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)


def _unpack_metadata(blob: np.ndarray) -> dict:
    try:
        decoded = json.loads(blob.tobytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StreamFormatError(f"corrupt synopsis metadata: {exc}") from exc
    if not isinstance(decoded, dict):
        raise StreamFormatError(
            "corrupt synopsis metadata: expected a JSON object, got "
            f"{type(decoded).__name__}"
        )
    return decoded


# -- generic entry points ----------------------------------------------------


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives power loss.

    Best-effort: platforms/filesystems that cannot fsync a directory
    (Windows, some network mounts) are silently skipped.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_synopsis(synopsis: Any, path: str | Path) -> None:
    """Write any state-protocol synopsis (parameters + counters) to ``path``.

    The write is atomic: bytes land in a ``<path>.tmp`` sibling first,
    are fsynced, and only then renamed over ``path`` (``os.replace``).
    A crash mid-save can therefore never leave a truncated archive where
    a valid checkpoint used to be — readers observe either the old file
    or the complete new one.  A stale ``.tmp`` from an interrupted save
    is overwritten by the next attempt.

    Raises :class:`StreamFormatError` for objects that do not implement
    the synopsis state protocol.
    """
    state = synopsis_state_of(synopsis)
    metadata = {
        "version": _FORMAT_VERSION,
        "kind": state.kind,
        "params": state.params,
        "extra": state.extra,
    }
    arrays = {
        f"{_ARRAY_PREFIX}{name}": array
        for name, array in state.arrays.items()
    }
    target = Path(path)
    if not target.name.endswith(".npz"):
        # np.savez appends the suffix itself; mirror that for the rename
        # target so callers see the same final filename as before.
        target = target.with_name(target.name + ".npz")
    scratch = target.with_name(target.name + ".tmp")
    try:
        with open(scratch, "wb") as handle:
            np.savez_compressed(
                handle, metadata=_pack_metadata(metadata), **arrays
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    except BaseException:
        with contextlib.suppress(OSError):
            scratch.unlink()
        raise
    _fsync_directory(target.parent)


def load_synopsis(path: str | Path, *, expect_kind: str | None = None) -> Any:
    """Restore a synopsis saved by :func:`save_synopsis`.

    ``expect_kind`` optionally pins the archive's kind (the legacy
    wrappers use it); a mismatch raises :class:`StreamFormatError`.
    """
    with np.load(Path(path)) as archive:
        if "metadata" not in archive:
            raise StreamFormatError(
                f"{path} is not a synopsis archive (no metadata entry)"
            )
        metadata = _unpack_metadata(archive["metadata"])
        version = metadata.get("version")
        if version != _FORMAT_VERSION:
            raise StreamFormatError(
                f"unsupported synopsis format version {version!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        kind = metadata.get("kind")
        if not isinstance(kind, str):
            raise StreamFormatError(
                f"corrupt synopsis metadata: kind is {kind!r}"
            )
        if expect_kind is not None and kind != expect_kind:
            raise StreamFormatError(
                f"expected a {expect_kind} archive, found {kind!r}"
            )
        try:
            cls = resolve_kind(kind)
        except ConfigurationError as exc:
            raise StreamFormatError(
                f"archive names unknown synopsis kind {kind!r}"
            ) from exc
        arrays = {
            name[len(_ARRAY_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_ARRAY_PREFIX)
        }
        state = SynopsisState(
            kind=kind,
            params=dict(metadata.get("params", {})),
            arrays=arrays,
            extra=dict(metadata.get("extra", {})),
        )
        return cls.from_state(state)


# -- legacy per-type wrappers ------------------------------------------------


def _require_kind(synopsis: Any, kind: str) -> None:
    actual = getattr(type(synopsis), "SYNOPSIS_KIND", None)
    if actual != kind:
        raise StreamFormatError(
            f"expected a {kind} synopsis, got {type(synopsis).__name__}"
        )


def save_count_min(sketch: Any, path: str | Path) -> None:
    """Write a Count-Min sketch to ``path`` (``save_synopsis`` wrapper)."""
    _require_kind(sketch, "count-min")
    save_synopsis(sketch, path)


def load_count_min(path: str | Path) -> Any:
    """Restore a Count-Min sketch archive (``load_synopsis`` wrapper)."""
    return load_synopsis(path, expect_kind="count-min")


def save_hierarchical(hierarchy: Any, path: str | Path) -> None:
    """Write a hierarchical Count-Min (all level tables) to ``path``."""
    _require_kind(hierarchy, "hierarchical-count-min")
    save_synopsis(hierarchy, path)


def load_hierarchical(path: str | Path) -> Any:
    """Restore a hierarchy saved by :func:`save_hierarchical`."""
    return load_synopsis(path, expect_kind="hierarchical-count-min")


def save_asketch(asketch: Any, path: str | Path) -> None:
    """Write an ASketch (filter state + backend + statistics) to ``path``.

    Works for every filter kind and any backend implementing the state
    protocol (Count-Min, Count Sketch, FCM, ...).
    """
    _require_kind(asketch, "asketch")
    save_synopsis(asketch, path)


def load_asketch(path: str | Path) -> Any:
    """Restore an ASketch saved by :func:`save_asketch`."""
    return load_synopsis(path, expect_kind="asketch")
