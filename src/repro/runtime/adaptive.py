"""Online filter re-tuning from live observability metrics.

The paper sizes the ASketch filter *statically* (tens of slots, §7) for
a stationary heavy-hitter set.  When the heavy hitters rotate — a flash
crowd, a DDoS ramp, a topic change — the fixed filter keeps monitoring
yesterday's keys, its hit-rate collapses, and every tuple pays the
sketch path until enough exchanges churn the filter back.  ROADMAP
item 4 closes that loop: watch the live metrics the :mod:`repro.obs`
registry already collects and re-tune the filter while the stream runs.

:class:`AdaptiveController` is a periodic consumer (plug it into
:meth:`StreamEngine.every <repro.runtime.engine.StreamEngine.every>`,
or call it directly between chunks).  Each firing closes an observation
window and reads three signals:

* **filter hit-rate** — from the ``asketch_filter_hits_total`` /
  ``asketch_filter_misses_total`` counter deltas when a registry is
  installed, falling back to the synopsis's own mass tallies
  (``1 - Δoverflow_mass / Δtotal_mass``) so the controller also works
  without observability configured;
* **exchange rate** — exchanges per ingested item in the window, a
  churn signal: heavy exchange traffic means the filter is too small
  for the current head of the distribution even if the hit-rate has
  not fully collapsed yet;
* **shard skew** — the ``shard_skew`` gauge (sharded groups), recorded
  on every decision for the operator.

A window whose hit-rate falls below ``target_hit_rate`` (or whose
exchange rate exceeds ``grow_exchange_rate``) grows the filter by
``grow_factor``; a near-perfect window (``shrink_above``) shrinks it
back.  Resizes go through :meth:`StagedSynopsis.resize_filter
<repro.core.staged.StagedSynopsis.resize_filter>` — one-sided-safe by
construction — applied to every shard of a sharded group.  Every
decision (including holds) emits an ``adaptive_decision`` trace point;
every resize also emits the stage-level ``filter_resize`` point, bumps
``adaptive_resizes_total`` and refreshes the ``adaptive_filter_items``
/ ``adaptive_filter_hit_rate`` gauges.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.staged import StagedSynopsis
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, current_registry
from repro.obs.trace import current_tracer, trace_point


class AdaptiveController:
    """Re-tune a staged synopsis's filter from windowed live metrics.

    Parameters
    ----------
    synopsis:
        A :class:`~repro.core.staged.StagedSynopsis` (ASketch included)
        or a sharded group exposing ``shards`` of them.
    target_hit_rate:
        Grow when a window's filter hit-rate drops below this
        (default 0.7 — a healthy Zipf head keeps the filter far above).
    grow_factor / shrink_factor:
        Multiplicative resize steps (default 2.0 / 0.5).
    min_filter_items / max_filter_items:
        Clamp bounds for the per-synopsis filter capacity.
    grow_exchange_rate:
        Also grow when exchanges-per-item in the window exceeds this
        churn threshold (default 0.02).
    shrink_above:
        Shrink when the windowed hit-rate exceeds this and the filter
        is above ``min_filter_items`` (default 0.995); set to a value
        > 1 to disable shrinking.
    min_window_items:
        Windows with fewer ingested items are ignored (no decision) —
        rates over a handful of tuples are noise.
    cooldown_windows:
        Number of observation windows to sit out after a resize while
        the rebuilt filter warms up (default 1).
    registry:
        Metrics registry to read/write; defaults to the installed one
        at each firing.
    """

    def __init__(
        self,
        synopsis,
        *,
        target_hit_rate: float = 0.7,
        grow_factor: float = 2.0,
        shrink_factor: float = 0.5,
        min_filter_items: int = 8,
        max_filter_items: int = 4096,
        grow_exchange_rate: float = 0.02,
        shrink_above: float = 0.995,
        min_window_items: int = 256,
        cooldown_windows: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < target_hit_rate <= 1.0:
            raise ConfigurationError(
                f"target_hit_rate must be in (0, 1], got {target_hit_rate}"
            )
        if grow_factor <= 1.0:
            raise ConfigurationError(
                f"grow_factor must be > 1, got {grow_factor}"
            )
        if not 0.0 < shrink_factor < 1.0:
            raise ConfigurationError(
                f"shrink_factor must be in (0, 1), got {shrink_factor}"
            )
        if min_filter_items < 1 or max_filter_items < min_filter_items:
            raise ConfigurationError(
                "need 1 <= min_filter_items <= max_filter_items, got "
                f"{min_filter_items}..{max_filter_items}"
            )
        self.synopsis = synopsis
        self.target_hit_rate = float(target_hit_rate)
        self.grow_factor = float(grow_factor)
        self.shrink_factor = float(shrink_factor)
        self.min_filter_items = int(min_filter_items)
        self.max_filter_items = int(max_filter_items)
        self.grow_exchange_rate = float(grow_exchange_rate)
        self.shrink_above = float(shrink_above)
        self.min_window_items = int(min_window_items)
        self.cooldown_windows = int(cooldown_windows)
        self._registry = registry
        self._cooldown = 0
        self._last = self._read_signals()
        #: (position, action, hit_rate, filter_items) per decision window.
        self.decisions: list[tuple[int, str, float, int]] = []

    # -- targets -----------------------------------------------------------

    def _targets(self) -> Sequence[StagedSynopsis]:
        """The staged synopses whose filters this controller re-tunes."""
        shards = getattr(self.synopsis, "shards", None)
        if shards is not None:
            members = list(shards)
        else:
            members = [self.synopsis]
        for member in members:
            if not isinstance(member, StagedSynopsis):
                raise ConfigurationError(
                    f"{type(member).__name__} has no resizable filter "
                    "stage; the adaptive controller needs StagedSynopsis "
                    "targets"
                )
        return members

    @property
    def filter_items(self) -> int:
        """Current per-synopsis filter capacity (first target's)."""
        return self._targets()[0].filter.capacity

    @property
    def resize_count(self) -> int:
        """Resizes applied so far."""
        return sum(
            1 for _, action, _, _ in self.decisions if action != "hold"
        )

    # -- signal reading ----------------------------------------------------

    def _read_signals(self) -> dict[str, float]:
        """Cumulative (not windowed) hit/miss/exchange/item tallies.

        Prefers the installed registry's counters — the signals named by
        the observability layer — and falls back to the synopsis's own
        mass bookkeeping so the controller works without a registry.
        ``items``/``hits``/``misses`` are mass-weighted in the fallback;
        both are valid hit-rate bases and each is used consistently
        against its own previous snapshot.
        """
        registry = self._registry or current_registry()
        if registry is not None and registry.get("asketch_items_total"):
            return {
                "items": registry.value("asketch_items_total"),
                "misses": registry.value("asketch_filter_misses_total"),
                "exchanges": registry.value("asketch_exchanges_total"),
                "skew": registry.value("shard_skew"),
            }
        targets = self._targets()
        return {
            "items": float(sum(t.total_mass for t in targets)),
            "misses": float(sum(t.overflow_mass for t in targets)),
            "exchanges": float(sum(t.exchange_count for t in targets)),
            "skew": 0.0,
        }

    # -- the decision loop -------------------------------------------------

    def __call__(self, position: int = 0) -> str:
        """Close one observation window and maybe resize.

        ``position`` is the tuples-so-far argument
        :meth:`StreamEngine.every` passes; returns the action taken
        (``"grow"``, ``"shrink"`` or ``"hold"``).
        """
        now = self._read_signals()
        window_items = now["items"] - self._last["items"]
        window_misses = now["misses"] - self._last["misses"]
        window_exchanges = now["exchanges"] - self._last["exchanges"]
        self._last = now
        if window_items < self.min_window_items:
            return "hold"
        hit_rate = 1.0 - window_misses / window_items
        exchange_rate = window_exchanges / window_items
        capacity = self.filter_items

        action = "hold"
        new_items = capacity
        if self._cooldown > 0:
            self._cooldown -= 1
        elif capacity < self.max_filter_items and (
            hit_rate < self.target_hit_rate
            or exchange_rate > self.grow_exchange_rate
        ):
            action = "grow"
            new_items = min(
                self.max_filter_items,
                max(capacity + 1, math.ceil(capacity * self.grow_factor)),
            )
        elif (
            hit_rate > self.shrink_above
            and capacity > self.min_filter_items
        ):
            action = "shrink"
            new_items = max(
                self.min_filter_items,
                min(capacity - 1, math.floor(capacity * self.shrink_factor)),
            )

        spilled = 0
        if action != "hold":
            for target in self._targets():
                spilled += target.resize_filter(new_items)
            self._cooldown = self.cooldown_windows
        self.decisions.append((int(position), action, hit_rate, new_items))

        registry = self._registry or current_registry()
        if registry is not None:
            registry.gauge("adaptive_filter_items").set(new_items)
            registry.gauge("adaptive_filter_hit_rate").set(hit_rate)
            if action != "hold":
                registry.counter("adaptive_resizes_total").inc()
        if current_tracer() is not None:
            trace_point(
                "adaptive_decision",
                action=action,
                hit_rate=round(hit_rate, 6),
                exchange_rate=round(exchange_rate, 6),
                shard_skew=round(now["skew"], 6),
                window_items=int(window_items),
                filter_items=int(new_items),
                spilled=int(spilled),
                position=int(position),
            )
        return action


class ReshardController:
    """Rebalance shard ownership across parallel workers from live skew.

    The parallel-runtime analogue of :class:`AdaptiveController`: where
    that controller re-tunes the *filter* when the hit-rate signal
    degrades, this one re-tunes the *shard→worker assignment* when the
    routed-load signal degrades.  It watches the same per-shard routing
    tallies that feed the ``shard_skew`` gauge, and when one worker's
    observed window load exceeds ``skew_threshold`` times the balanced
    share, it proposes moving that worker's best-fitting shard to the
    least-loaded worker via
    :meth:`~repro.runtime.parallel.ParallelIngestRuntime.reshard` —
    whose quiesce/transfer/commit protocol keeps the move exact and
    crash-consistent.

    Duck-typed against the runtime (``shard_item_counts``,
    ``shards_of``, ``worker_health``, ``workers``, ``reshard``) so this
    module never imports :mod:`repro.runtime.parallel`.

    Parameters
    ----------
    runtime:
        The :class:`~repro.runtime.parallel.ParallelIngestRuntime`
        being driven (must be mid-``run``: the controller is invoked by
        the runtime itself between chunks when ``auto_reshard=True``).
    skew_threshold:
        Minimum ratio of the hottest worker's window load over the
        balanced per-worker share before a move is proposed (> 1.0;
        default 1.5).
    min_window_items:
        Observation windows with fewer routed items are ignored — skew
        over a handful of tuples is noise (default 2048).
    cooldown_windows:
        Windows to sit out after a migration while the new assignment's
        load signal stabilises (default 2).
    max_moves:
        Shards moved per firing window (default 1 — small reversible
        steps, like the filter controller's single resize per window).
    """

    def __init__(
        self,
        runtime,
        *,
        skew_threshold: float = 1.5,
        min_window_items: int = 2048,
        cooldown_windows: int = 2,
        max_moves: int = 1,
    ) -> None:
        if skew_threshold <= 1.0:
            raise ConfigurationError(
                f"skew_threshold must exceed 1.0, got {skew_threshold}"
            )
        if min_window_items < 1:
            raise ConfigurationError(
                f"min_window_items must be >= 1, got {min_window_items}"
            )
        if max_moves < 1:
            raise ConfigurationError(
                f"max_moves must be >= 1, got {max_moves}"
            )
        self.runtime = runtime
        self.skew_threshold = float(skew_threshold)
        self.min_window_items = int(min_window_items)
        self.cooldown_windows = int(cooldown_windows)
        self.max_moves = int(max_moves)
        self._cooldown = 0
        self._last = runtime.shard_item_counts()
        #: (position, action, skew, moved, plan) per decision window.
        self.decisions: list[tuple[int, str, float, int, dict]] = []

    @property
    def migration_count(self) -> int:
        """Shards moved by this controller so far."""
        return sum(moved for _, _, _, moved, _ in self.decisions)

    def observe(self, position: int = 0) -> str:
        """Close one observation window and maybe move shards.

        Called by the runtime after every chunk; returns the action
        taken (``"reshard"`` or ``"hold"``).
        """
        counts = self.runtime.shard_item_counts()
        window = counts - self._last
        if int(window.sum()) < self.min_window_items:
            return "hold"
        self._last = counts
        if self._cooldown > 0:
            self._cooldown -= 1
            return "hold"
        plan, skew = self._propose(window)
        action = "hold"
        moved = 0
        if plan:
            moved = self.runtime.reshard(plan)
            if moved:
                action = "reshard"
                self._cooldown = self.cooldown_windows
        self.decisions.append(
            (int(position), action, float(skew), int(moved), dict(plan))
        )
        if current_tracer() is not None:
            trace_point(
                "reshard_decision",
                action=action,
                skew=round(float(skew), 6),
                moved=int(moved),
                plan={str(k): int(v) for k, v in plan.items()},
                window_items=int(window.sum()),
                position=int(position),
            )
        return action

    def _propose(self, window) -> tuple[dict[int, int], float]:
        """Pick up to ``max_moves`` shard moves from hot to cold workers.

        Load is the window's routed items summed per worker under the
        *current* assignment; the proposal moves the hottest worker's
        shard whose transfer lands that worker closest to the balanced
        share, onto the least-loaded live worker.  Workers in terminal
        ``failed`` state neither give (their exact shard state is gone)
        nor receive.
        """
        runtime = self.runtime
        statuses = {
            row["worker"]: row["status"] for row in runtime.worker_health()
        }
        live = [w for w in range(runtime.workers) if statuses.get(w) != "failed"]
        if len(live) < 2:
            return {}, 0.0
        owned = {w: runtime.shards_of(w) for w in live}
        load = {
            w: int(sum(window[s] for s in owned[w])) for w in live
        }
        total = sum(load.values())
        if total <= 0:
            return {}, 0.0
        balanced = total / len(live)
        plan: dict[int, int] = {}
        skew = max(load.values()) / balanced if balanced else 0.0
        for _ in range(self.max_moves):
            hot = max(load, key=lambda w: load[w])
            cold = min(load, key=lambda w: load[w])
            if hot == cold or load[hot] <= balanced * self.skew_threshold:
                break
            if len(owned[hot]) < 2:
                break  # never strip a worker of its last shard
            movable = [s for s in owned[hot] if s not in plan]
            if not movable:
                break
            # the shard whose departure lands the hot worker nearest
            # the balanced share (never the whole load: keep >= 1 shard)
            shard = min(
                movable,
                key=lambda s: abs(load[hot] - int(window[s]) - balanced),
            )
            plan[shard] = cold
            load[hot] -= int(window[shard])
            load[cold] += int(window[shard])
            owned[hot] = [s for s in owned[hot] if s != shard]
            owned[cold] = [*owned[cold], shard]
        return plan, skew
