"""Online filter re-tuning from live observability metrics.

The paper sizes the ASketch filter *statically* (tens of slots, §7) for
a stationary heavy-hitter set.  When the heavy hitters rotate — a flash
crowd, a DDoS ramp, a topic change — the fixed filter keeps monitoring
yesterday's keys, its hit-rate collapses, and every tuple pays the
sketch path until enough exchanges churn the filter back.  ROADMAP
item 4 closes that loop: watch the live metrics the :mod:`repro.obs`
registry already collects and re-tune the filter while the stream runs.

:class:`AdaptiveController` is a periodic consumer (plug it into
:meth:`StreamEngine.every <repro.runtime.engine.StreamEngine.every>`,
or call it directly between chunks).  Each firing closes an observation
window and reads three signals:

* **filter hit-rate** — from the ``asketch_filter_hits_total`` /
  ``asketch_filter_misses_total`` counter deltas when a registry is
  installed, falling back to the synopsis's own mass tallies
  (``1 - Δoverflow_mass / Δtotal_mass``) so the controller also works
  without observability configured;
* **exchange rate** — exchanges per ingested item in the window, a
  churn signal: heavy exchange traffic means the filter is too small
  for the current head of the distribution even if the hit-rate has
  not fully collapsed yet;
* **shard skew** — the ``shard_skew`` gauge (sharded groups), recorded
  on every decision for the operator.

A window whose hit-rate falls below ``target_hit_rate`` (or whose
exchange rate exceeds ``grow_exchange_rate``) grows the filter by
``grow_factor``; a near-perfect window (``shrink_above``) shrinks it
back.  Resizes go through :meth:`StagedSynopsis.resize_filter
<repro.core.staged.StagedSynopsis.resize_filter>` — one-sided-safe by
construction — applied to every shard of a sharded group.  Every
decision (including holds) emits an ``adaptive_decision`` trace point;
every resize also emits the stage-level ``filter_resize`` point, bumps
``adaptive_resizes_total`` and refreshes the ``adaptive_filter_items``
/ ``adaptive_filter_hit_rate`` gauges.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.staged import StagedSynopsis
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, current_registry
from repro.obs.trace import current_tracer, trace_point


class AdaptiveController:
    """Re-tune a staged synopsis's filter from windowed live metrics.

    Parameters
    ----------
    synopsis:
        A :class:`~repro.core.staged.StagedSynopsis` (ASketch included)
        or a sharded group exposing ``shards`` of them.
    target_hit_rate:
        Grow when a window's filter hit-rate drops below this
        (default 0.7 — a healthy Zipf head keeps the filter far above).
    grow_factor / shrink_factor:
        Multiplicative resize steps (default 2.0 / 0.5).
    min_filter_items / max_filter_items:
        Clamp bounds for the per-synopsis filter capacity.
    grow_exchange_rate:
        Also grow when exchanges-per-item in the window exceeds this
        churn threshold (default 0.02).
    shrink_above:
        Shrink when the windowed hit-rate exceeds this and the filter
        is above ``min_filter_items`` (default 0.995); set to a value
        > 1 to disable shrinking.
    min_window_items:
        Windows with fewer ingested items are ignored (no decision) —
        rates over a handful of tuples are noise.
    cooldown_windows:
        Number of observation windows to sit out after a resize while
        the rebuilt filter warms up (default 1).
    registry:
        Metrics registry to read/write; defaults to the installed one
        at each firing.
    """

    def __init__(
        self,
        synopsis,
        *,
        target_hit_rate: float = 0.7,
        grow_factor: float = 2.0,
        shrink_factor: float = 0.5,
        min_filter_items: int = 8,
        max_filter_items: int = 4096,
        grow_exchange_rate: float = 0.02,
        shrink_above: float = 0.995,
        min_window_items: int = 256,
        cooldown_windows: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < target_hit_rate <= 1.0:
            raise ConfigurationError(
                f"target_hit_rate must be in (0, 1], got {target_hit_rate}"
            )
        if grow_factor <= 1.0:
            raise ConfigurationError(
                f"grow_factor must be > 1, got {grow_factor}"
            )
        if not 0.0 < shrink_factor < 1.0:
            raise ConfigurationError(
                f"shrink_factor must be in (0, 1), got {shrink_factor}"
            )
        if min_filter_items < 1 or max_filter_items < min_filter_items:
            raise ConfigurationError(
                "need 1 <= min_filter_items <= max_filter_items, got "
                f"{min_filter_items}..{max_filter_items}"
            )
        self.synopsis = synopsis
        self.target_hit_rate = float(target_hit_rate)
        self.grow_factor = float(grow_factor)
        self.shrink_factor = float(shrink_factor)
        self.min_filter_items = int(min_filter_items)
        self.max_filter_items = int(max_filter_items)
        self.grow_exchange_rate = float(grow_exchange_rate)
        self.shrink_above = float(shrink_above)
        self.min_window_items = int(min_window_items)
        self.cooldown_windows = int(cooldown_windows)
        self._registry = registry
        self._cooldown = 0
        self._last = self._read_signals()
        #: (position, action, hit_rate, filter_items) per decision window.
        self.decisions: list[tuple[int, str, float, int]] = []

    # -- targets -----------------------------------------------------------

    def _targets(self) -> Sequence[StagedSynopsis]:
        """The staged synopses whose filters this controller re-tunes."""
        shards = getattr(self.synopsis, "shards", None)
        if shards is not None:
            members = list(shards)
        else:
            members = [self.synopsis]
        for member in members:
            if not isinstance(member, StagedSynopsis):
                raise ConfigurationError(
                    f"{type(member).__name__} has no resizable filter "
                    "stage; the adaptive controller needs StagedSynopsis "
                    "targets"
                )
        return members

    @property
    def filter_items(self) -> int:
        """Current per-synopsis filter capacity (first target's)."""
        return self._targets()[0].filter.capacity

    @property
    def resize_count(self) -> int:
        """Resizes applied so far."""
        return sum(
            1 for _, action, _, _ in self.decisions if action != "hold"
        )

    # -- signal reading ----------------------------------------------------

    def _read_signals(self) -> dict[str, float]:
        """Cumulative (not windowed) hit/miss/exchange/item tallies.

        Prefers the installed registry's counters — the signals named by
        the observability layer — and falls back to the synopsis's own
        mass bookkeeping so the controller works without a registry.
        ``items``/``hits``/``misses`` are mass-weighted in the fallback;
        both are valid hit-rate bases and each is used consistently
        against its own previous snapshot.
        """
        registry = self._registry or current_registry()
        if registry is not None and registry.get("asketch_items_total"):
            return {
                "items": registry.value("asketch_items_total"),
                "misses": registry.value("asketch_filter_misses_total"),
                "exchanges": registry.value("asketch_exchanges_total"),
                "skew": registry.value("shard_skew"),
            }
        targets = self._targets()
        return {
            "items": float(sum(t.total_mass for t in targets)),
            "misses": float(sum(t.overflow_mass for t in targets)),
            "exchanges": float(sum(t.exchange_count for t in targets)),
            "skew": 0.0,
        }

    # -- the decision loop -------------------------------------------------

    def __call__(self, position: int = 0) -> str:
        """Close one observation window and maybe resize.

        ``position`` is the tuples-so-far argument
        :meth:`StreamEngine.every` passes; returns the action taken
        (``"grow"``, ``"shrink"`` or ``"hold"``).
        """
        now = self._read_signals()
        window_items = now["items"] - self._last["items"]
        window_misses = now["misses"] - self._last["misses"]
        window_exchanges = now["exchanges"] - self._last["exchanges"]
        self._last = now
        if window_items < self.min_window_items:
            return "hold"
        hit_rate = 1.0 - window_misses / window_items
        exchange_rate = window_exchanges / window_items
        capacity = self.filter_items

        action = "hold"
        new_items = capacity
        if self._cooldown > 0:
            self._cooldown -= 1
        elif capacity < self.max_filter_items and (
            hit_rate < self.target_hit_rate
            or exchange_rate > self.grow_exchange_rate
        ):
            action = "grow"
            new_items = min(
                self.max_filter_items,
                max(capacity + 1, math.ceil(capacity * self.grow_factor)),
            )
        elif (
            hit_rate > self.shrink_above
            and capacity > self.min_filter_items
        ):
            action = "shrink"
            new_items = max(
                self.min_filter_items,
                min(capacity - 1, math.floor(capacity * self.shrink_factor)),
            )

        spilled = 0
        if action != "hold":
            for target in self._targets():
                spilled += target.resize_filter(new_items)
            self._cooldown = self.cooldown_windows
        self.decisions.append((int(position), action, hit_rate, new_items))

        registry = self._registry or current_registry()
        if registry is not None:
            registry.gauge("adaptive_filter_items").set(new_items)
            registry.gauge("adaptive_filter_hit_rate").set(hit_rate)
            if action != "hold":
                registry.counter("adaptive_resizes_total").inc()
        if current_tracer() is not None:
            trace_point(
                "adaptive_decision",
                action=action,
                hit_rate=round(hit_rate, 6),
                exchange_rate=round(exchange_rate, 6),
                shard_skew=round(now["skew"], 6),
                window_items=int(window_items),
                filter_items=int(new_items),
                spilled=int(spilled),
                position=int(position),
            )
        return action
