"""True multicore ingest: shared-memory SPMD worker processes.

:mod:`repro.hardware.spmd` *models* the paper's §6.3 multi-kernel run
with a cost model; this module makes it real.  N worker processes each
own the shards ``s`` with ``s % workers == w`` of one
:class:`~repro.runtime.sharding.ShardedASketch` layout and ingest their
shares through the ordinary ``process_batch`` path, fed over
shared-memory ring buffers (``multiprocessing.shared_memory``,
spawn-safe — no fork-dependent state).

**Bit-identity.**  The parent routes every chunk with the group's own
``owners_of`` and sends worker ``w`` exactly the sub-array its shards
would have received in a sequential run, in chunk order.  Stable
partitioning inside ``process_batch`` then reproduces the exact same
per-shard sub-batches, so each worker's shard states equal the
sequential run's — and the drain merge recombines them through the
pristine-merge identity fast path of :meth:`repro.core.asketch.ASketch.
merge` (each shard is non-pristine on exactly one side).  The merged
result's :meth:`state` **equals** a single-process ingest's, enforced
by the parallel test suite.

**Failover.**  Worker death is detected by the parent (process
liveness, not an in-band exception).  Workers snapshot their group over
a pipe every ``sync_every`` chunks, and the parent retains the
un-snapshotted chunk tail per worker, so two recovery tiers exist:

* ``failover="inline"`` (default): rebuild the dead worker's group from
  its last snapshot, replay the retained tail in-parent through the
  identical ``process_batch`` path, and keep serving that worker's
  traffic in-parent — **still bit-identical**, because replay repeats
  the exact sub-batches the worker would have processed.
* ``failover="standby"``: merge the frozen snapshot into the combined
  group, mark the worker's shards failed via
  :meth:`~repro.runtime.reliability.ShardSupervisor.fail_shard`, and
  route the retained tail plus all future traffic through the
  supervisor's standby Count-Min sketches — the PR-3 degradation
  semantics, now spanning process boundaries (estimates stay one-sided,
  ``shard_health()`` reflects the dead process).

**Observability.**  With a registry installed (:mod:`repro.obs`) the
parent records routing skew, per-worker item counters, ring depth,
liveness, failures, and merge latency; each worker runs its own
registry and forwards counter/gauge values over its pipe, which the
parent re-labels with ``worker=<id>`` and folds into the installed
registry.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import active_backend, set_backend, stamp_backend
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    current_registry,
    install_registry,
    uninstall_registry,
)
from repro.runtime.engine import EngineStats, coerce_chunk
from repro.runtime.reliability import CheckpointStore, ShardSupervisor
from repro.runtime.sharding import ShardedASketch
from repro.synopses.protocol import SynopsisState

__all__ = ["ChunkRing", "ParallelIngestRuntime", "parallel_ingest"]


# -- shared-memory chunk ring ------------------------------------------------

#: Header word indices (all int64): monotonically increasing produced /
#: consumed slot counters (telemetry + depth; correctness rests on the
#: semaphores) and a total-items counter.
_HDR_PRODUCED = 0
_HDR_CONSUMED = 1
_HDR_ITEMS = 2
_HDR_WORDS = 4

#: Slot-length sentinel marking end of stream.
_EOF = -1

#: ``ChunkRing.get`` return marker for "nothing arrived within timeout"
#: (distinct from ``None`` = end of stream).
RING_TIMEOUT = object()


@dataclass
class RingHandle:
    """Everything a spawn child needs to attach to an existing ring.

    Semaphores travel through ``Process`` args (the only channel
    multiprocessing primitives can cross a spawn boundary on); the
    shared-memory segment is re-attached by name.
    """

    name: str
    slots: int
    slot_capacity: int
    sem_free: Any
    sem_filled: Any


class ChunkRing:
    """A single-producer single-consumer ring of int64 chunks in shm.

    Layout (all int64)::

        header[4]               produced / consumed / items / reserved
        lengths[slots]          item count per slot, -1 = end of stream
        data[slots, capacity]   the chunk payloads

    ``sem_free`` / ``sem_filled`` gate slot reuse; a semaphore release
    is the producer→consumer memory barrier (POSIX semaphores order the
    preceding stores), so the consumer never observes a slot before its
    payload.  ``get`` copies the payload out and frees the slot
    immediately, maximising producer/consumer overlap.

    The parent creates rings (``ChunkRing(slots, slot_capacity)``) and
    owns the segment lifecycle (:meth:`unlink`); workers attach via
    :meth:`from_handle`, which also unregisters the segment from the
    child's ``resource_tracker`` — before Python 3.13 an attaching
    process would otherwise unlink the segment when it exits.
    """

    def __init__(
        self,
        slots: int = 8,
        slot_capacity: int = 1 << 16,
        *,
        _handle: RingHandle | None = None,
    ) -> None:
        if _handle is None:
            if slots < 1:
                raise ConfigurationError(f"slots must be >= 1, got {slots}")
            if slot_capacity < 1:
                raise ConfigurationError(
                    f"slot_capacity must be >= 1, got {slot_capacity}"
                )
            ctx = mp.get_context("spawn")
            nbytes = 8 * (_HDR_WORDS + slots + slots * slot_capacity)
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.slots = int(slots)
            self.slot_capacity = int(slot_capacity)
            self._sem_free = ctx.Semaphore(self.slots)
            self._sem_filled = ctx.Semaphore(0)
            self._owner = True
        else:
            # Attach without registering with the resource tracker: the
            # creator already registered the segment, the tracker is
            # shared across spawn children, and a second registration
            # would end in a double-unregister (pre-3.13 there is no
            # ``track=False`` to say this properly).
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            try:
                resource_tracker.register = (  # type: ignore[assignment]
                    lambda name, rtype: None
                    if rtype == "shared_memory"
                    else original_register(name, rtype)
                )
                self._shm = shared_memory.SharedMemory(name=_handle.name)
            finally:
                resource_tracker.register = original_register
            self.slots = int(_handle.slots)
            self.slot_capacity = int(_handle.slot_capacity)
            self._sem_free = _handle.sem_free
            self._sem_filled = _handle.sem_filled
            self._owner = False
        buf = self._shm.buf
        self._header = np.ndarray((_HDR_WORDS,), dtype=np.int64, buffer=buf)
        self._lengths = np.ndarray(
            (self.slots,), dtype=np.int64, buffer=buf, offset=8 * _HDR_WORDS
        )
        self._data = np.ndarray(
            (self.slots, self.slot_capacity),
            dtype=np.int64,
            buffer=buf,
            offset=8 * (_HDR_WORDS + self.slots),
        )
        if self._owner:
            self._header[:] = 0
            self._lengths[:] = 0
        self._put_cursor = 0
        self._get_cursor = 0

    @property
    def name(self) -> str:
        """OS name of the shared-memory segment."""
        return self._shm.name

    def handle(self) -> RingHandle:
        """The picklable attachment record for a spawn child."""
        return RingHandle(
            name=self._shm.name,
            slots=self.slots,
            slot_capacity=self.slot_capacity,
            sem_free=self._sem_free,
            sem_filled=self._sem_filled,
        )

    @classmethod
    def from_handle(cls, handle: RingHandle) -> "ChunkRing":
        """Attach to an existing ring inside a worker process."""
        return cls(_handle=handle)

    # -- producer side -----------------------------------------------------

    def put(self, chunk: np.ndarray, timeout: float | None = None) -> bool:
        """Publish one chunk; False when no slot freed within ``timeout``.

        Oversized chunks are a configuration error, not a silent split —
        splitting would change sub-batch boundaries and break the
        bit-identity contract.
        """
        n = int(chunk.shape[0])
        if n > self.slot_capacity:
            raise ConfigurationError(
                f"chunk of {n} items exceeds ring slot capacity "
                f"{self.slot_capacity}; raise slot_capacity or shrink chunks"
            )
        if not self._sem_free.acquire(timeout=timeout):
            return False
        slot = self._put_cursor % self.slots
        if n:
            self._data[slot, :n] = chunk
        self._lengths[slot] = n
        self._put_cursor += 1
        self._header[_HDR_PRODUCED] = self._put_cursor
        self._header[_HDR_ITEMS] += n
        self._sem_filled.release()
        return True

    def close_producer(self, timeout: float | None = None) -> bool:
        """Publish the end-of-stream sentinel."""
        if not self._sem_free.acquire(timeout=timeout):
            return False
        slot = self._put_cursor % self.slots
        self._lengths[slot] = _EOF
        self._put_cursor += 1
        self._header[_HDR_PRODUCED] = self._put_cursor
        self._sem_filled.release()
        return True

    # -- consumer side -----------------------------------------------------

    def get(self, timeout: float | None = None):
        """Next chunk; ``None`` at end of stream, :data:`RING_TIMEOUT`
        when nothing arrived within ``timeout``."""
        if not self._sem_filled.acquire(timeout=timeout):
            return RING_TIMEOUT
        slot = self._get_cursor % self.slots
        n = int(self._lengths[slot])
        self._get_cursor += 1
        self._header[_HDR_CONSUMED] = self._get_cursor
        if n == _EOF:
            self._sem_free.release()
            return None
        chunk = self._data[slot, :n].copy()
        self._sem_free.release()
        return chunk

    # -- shared ------------------------------------------------------------

    def depth(self) -> int:
        """Slots currently published but not yet consumed."""
        return int(self._header[_HDR_PRODUCED] - self._header[_HDR_CONSUMED])

    def items_published(self) -> int:
        """Total items published so far."""
        return int(self._header[_HDR_ITEMS])

    def close(self) -> None:
        """Drop this process's mapping (views first, then the segment)."""
        self._header = None  # type: ignore[assignment]
        self._lengths = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - already gone
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# -- the worker process ------------------------------------------------------


def _export_metrics(registry: MetricsRegistry) -> list[tuple]:
    """Counter/gauge values as picklable rows (histograms stay local)."""
    rows: list[tuple] = []
    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            rows.append(
                ("counter", instrument.name, dict(instrument.labels),
                 instrument.value)
            )
        elif isinstance(instrument, Gauge):
            rows.append(
                ("gauge", instrument.name, dict(instrument.labels),
                 instrument.value)
            )
    return rows


def _send_snapshot(conn, group, registry, chunks_done, items_done) -> None:
    conn.send(
        (
            "snapshot",
            int(chunks_done),
            int(items_done),
            group.state(),
            _export_metrics(registry),
        )
    )


def _worker_main(
    worker_id: int,
    handle: RingHandle,
    group_params: dict,
    conn,
    sync_every: int,
    backend_name: str,
    crash_after_chunks: int | None = None,
) -> None:
    """Worker body: drain the ring into a shard-local group.

    Spawn-safe top-level function.  The group has the *full* shard
    layout; the parent only ever sends keys owned by this worker's
    shards, so every other shard stays pristine (the precondition for
    the drain merge's identity fast path).  ``backend_name`` is the
    parent's active kernel backend — spawn children re-import from
    scratch, so the selection must travel explicitly for the whole
    fleet to compute on the same backend.  ``crash_after_chunks`` is
    the fault hook: die hard (``os._exit``) while holding an unprocessed
    chunk — modelling a mid-stream ``kill -9``.
    """
    set_backend(backend_name)
    ring = ChunkRing.from_handle(handle)
    registry = install_registry(MetricsRegistry())
    group = ShardedASketch(**group_params)
    chunks_done = 0
    items_done = 0
    sync_target: int | None = None
    try:
        while True:
            while conn.poll():
                message = conn.recv()
                if isinstance(message, tuple) and message[0] == "sync":
                    sync_target = int(message[1])
            if sync_target is not None and chunks_done >= sync_target:
                _send_snapshot(conn, group, registry, chunks_done, items_done)
                sync_target = None
            chunk = ring.get(timeout=0.05)
            if chunk is RING_TIMEOUT:
                parent = mp.parent_process()
                if parent is not None and not parent.is_alive():
                    return  # orphaned: parent died, nobody will drain us
                continue
            if chunk is None:
                break
            if (
                crash_after_chunks is not None
                and chunks_done >= crash_after_chunks
            ):
                os._exit(17)  # injected mid-stream death, no cleanup
            group.process_batch(chunk)
            chunks_done += 1
            items_done += int(chunk.shape[0])
            if chunks_done % sync_every == 0:
                _send_snapshot(conn, group, registry, chunks_done, items_done)
        _send_snapshot(conn, group, registry, chunks_done, items_done)
        conn.send(("done", int(chunks_done), int(items_done)))
    except Exception as error:  # surface, then die visibly
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:
            pass
        sys.exit(1)
    finally:
        uninstall_registry()
        ring.close()
        conn.close()


# -- the parent-side runtime -------------------------------------------------


@dataclass
class _WorkerSlot:
    """Parent-side bookkeeping for one worker process."""

    index: int
    process: Any
    ring: ChunkRing
    conn: Any
    sent_chunks: int = 0
    sent_items: int = 0
    acked_chunks: int = 0
    retained: deque = field(default_factory=deque)
    snapshot_state: SynopsisState | None = None
    snapshot_chunks: int = 0
    snapshot_items: int = 0
    status: str = "ok"
    inline_group: ShardedASketch | None = None
    metrics_last: dict = field(default_factory=dict)
    done: bool = False
    error: str | None = None

    @property
    def feeding_ring(self) -> bool:
        """Whether new shares still go through the shared-memory ring."""
        return self.status == "ok"


class ParallelIngestRuntime:
    """Drive one logical ShardedASketch with N worker processes.

    Parameters
    ----------
    workers:
        Worker process count; worker ``w`` owns shards ``s`` with
        ``s % workers == w``.
    shards:
        Shard count (default: one per worker).  Must be >= ``workers``.
    total_bytes, filter_items, filter_kind, num_hashes, seed:
        The :class:`~repro.runtime.sharding.ShardedASketch` layout —
        identical to what a sequential run would build, which is what
        the bit-identity guarantee is measured against.
    slots, slot_capacity:
        Ring geometry per worker (``slot_capacity`` must cover the
        largest per-worker chunk share).
    sync_every:
        Worker snapshot cadence in chunks; bounds both the retained
        replay tail in the parent and the data a standby failover loses
        to its one-sided fallback.
    failover:
        ``"inline"`` (exact in-parent recovery, bit-identity preserved)
        or ``"standby"`` (PR-3 degradation: frozen snapshot + standby
        Count-Min via :meth:`ShardSupervisor.fail_shard`).
    standby_hashes, standby_bytes:
        Standby sizing, forwarded to :class:`ShardSupervisor`.
    inject_crash:
        ``{worker_id: after_chunks}`` fault hook — that worker calls
        ``os._exit`` once it has processed ``after_chunks`` chunks.
    put_timeout, drain_timeout:
        Seconds the parent waits on a stuck ring slot / on drain
        messages before declaring the worker hung and failing it over.
    """

    FAILOVER_MODES = ("inline", "standby")

    def __init__(
        self,
        workers: int,
        *,
        shards: int | None = None,
        total_bytes: int = 32 * 1024,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        num_hashes: int = 8,
        seed: int = 0,
        slots: int = 8,
        slot_capacity: int = 1 << 16,
        sync_every: int = 8,
        failover: str = "inline",
        standby_hashes: int = 4,
        standby_bytes: int | None = None,
        inject_crash: dict[int, int] | None = None,
        put_timeout: float = 60.0,
        drain_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        shards = workers if shards is None else int(shards)
        if shards < workers:
            raise ConfigurationError(
                f"need at least one shard per worker: shards={shards} < "
                f"workers={workers}"
            )
        if sync_every < 1:
            raise ConfigurationError(
                f"sync_every must be >= 1, got {sync_every}"
            )
        if failover not in self.FAILOVER_MODES:
            raise ConfigurationError(
                f"failover must be one of {self.FAILOVER_MODES}, "
                f"got {failover!r}"
            )
        self.workers = int(workers)
        self.group_params = {
            "shards": shards,
            "total_bytes": int(total_bytes),
            "filter_items": int(filter_items),
            "filter_kind": filter_kind,
            "num_hashes": int(num_hashes),
            "seed": int(seed),
        }
        self.slots = int(slots)
        self.slot_capacity = int(slot_capacity)
        self.sync_every = int(sync_every)
        self.failover = failover
        self.standby_hashes = int(standby_hashes)
        self.standby_bytes = standby_bytes
        self.inject_crash = dict(inject_crash or {})
        self.put_timeout = float(put_timeout)
        self.drain_timeout = float(drain_timeout)
        #: The combined result (populated by :meth:`run`).
        self.supervisor: ShardSupervisor | None = None
        self.stats = EngineStats()
        self._slots: list[_WorkerSlot] = []

    def shards_of(self, worker: int) -> list[int]:
        """Shard indices owned by one worker."""
        return [
            s
            for s in range(self.group_params["shards"])
            if s % self.workers == worker
        ]

    # -- lifecycle ---------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = mp.get_context("spawn")
        # Spawn re-imports modules in a fresh interpreter: sys.path edits
        # made in-process (benchmark scripts, test harnesses) are not
        # inherited, so pin the package root into PYTHONPATH around the
        # starts.
        import repro

        package_root = str(Path(repro.__file__).resolve().parents[1])
        previous = os.environ.get("PYTHONPATH")
        entries = (previous or "").split(os.pathsep) if previous else []
        if package_root not in entries:
            os.environ["PYTHONPATH"] = os.pathsep.join(
                [package_root, *entries]
            )
        try:
            for index in range(self.workers):
                ring = ChunkRing(self.slots, self.slot_capacity)
                try:
                    parent_conn, child_conn = ctx.Pipe(duplex=True)
                    process = ctx.Process(
                        target=_worker_main,
                        args=(
                            index,
                            ring.handle(),
                            self.group_params,
                            child_conn,
                            self.sync_every,
                            active_backend().name,
                            self.inject_crash.get(index),
                        ),
                        daemon=True,
                        name=f"repro-ingest-{index}",
                    )
                    process.start()
                except BaseException:
                    # A failed start would otherwise leak this ring:
                    # it only enters _slots (and _shutdown's sweep)
                    # after the process is up.
                    ring.close()
                    ring.unlink()
                    raise
                child_conn.close()
                self._slots.append(
                    _WorkerSlot(
                        index=index, process=process, ring=ring,
                        conn=parent_conn,
                    )
                )
        finally:
            if previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = previous

    def _shutdown(self) -> None:
        for slot in self._slots:
            try:
                slot.conn.close()
            except OSError:
                pass
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=10.0)
            slot.ring.close()
            slot.ring.unlink()
        registry = current_registry()
        if registry is not None:
            registry.gauge("parallel_workers_alive").set(0)

    # -- message handling --------------------------------------------------

    def _apply_worker_metrics(self, slot: _WorkerSlot, rows: list) -> None:
        registry = current_registry()
        if registry is None:
            return
        for kind, name, labels, value in rows:
            labelled = {**labels, "worker": str(slot.index)}
            if kind == "counter":
                key = (name, tuple(sorted(labelled.items())))
                last = slot.metrics_last.get(key, 0.0)
                if value > last:
                    registry.counter(name, **labelled).inc(value - last)
                slot.metrics_last[key] = value
            else:
                registry.gauge(name, **labelled).set(value)

    def _handle_message(self, slot: _WorkerSlot, message: tuple) -> None:
        tag = message[0]
        if tag == "snapshot":
            _, chunks_done, items_done, state, metric_rows = message
            slot.snapshot_state = state
            slot.snapshot_chunks = int(chunks_done)
            slot.snapshot_items = int(items_done)
            # The snapshot covers the first chunks_done FIFO chunks this
            # worker received — drop exactly that prefix of the retained
            # replay tail.
            while slot.acked_chunks < slot.snapshot_chunks and slot.retained:
                slot.retained.popleft()
                slot.acked_chunks += 1
            self._apply_worker_metrics(slot, metric_rows)
        elif tag == "done":
            slot.done = True
        elif tag == "error":
            slot.error = str(message[1])

    def _drain_messages(self, slot: _WorkerSlot) -> None:
        try:
            while slot.conn.poll():
                self._handle_message(slot, slot.conn.recv())
        except (EOFError, OSError):
            pass  # pipe gone; liveness check deals with the process

    def _drain_all_messages(self) -> None:
        """Drain every live worker's pipe.

        A snapshot can exceed the pipe buffer, so a worker may *block in
        send* until the parent reads — any parent-side wait loop must
        keep draining all pipes or two blocked sides deadlock (worker
        stuck in send, parent stuck waiting for that worker's ring).
        """
        for slot in self._slots:
            if slot.feeding_ring:
                self._drain_messages(slot)

    def _check_liveness(self) -> None:
        for slot in self._slots:
            if not slot.feeding_ring:
                continue
            self._drain_messages(slot)
            if slot.process.is_alive() or slot.done:
                continue
            self._fail_worker(
                slot,
                f"worker {slot.index} died "
                f"(exitcode {slot.process.exitcode})",
            )

    # -- failover ----------------------------------------------------------

    def _fail_worker(self, slot: _WorkerSlot, reason: str) -> None:
        """Recover a dead/hung worker's traffic per the failover mode."""
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "parallel_worker_failures_total", worker=str(slot.index)
            ).inc()
        self._drain_messages(slot)  # salvage any final snapshot in flight
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=10.0)
        pending = list(slot.retained)
        slot.retained.clear()
        assert self.supervisor is not None
        if self.failover == "inline":
            if slot.snapshot_state is not None:
                group = ShardedASketch.from_state(slot.snapshot_state)
            else:
                group = ShardedASketch(**self.group_params)
            for share in pending:
                group.process_batch(share)
            slot.inline_group = group
            slot.status = "inlined"
        else:
            if slot.snapshot_state is not None:
                self.supervisor.group.merge(
                    ShardedASketch.from_state(slot.snapshot_state)
                )
            for shard_index in self.shards_of(slot.index):
                self.supervisor.fail_shard(shard_index, reason)
            for share in pending:
                if share.size:
                    self.supervisor.process_batch(share)
            slot.status = "failed"
        slot.error = slot.error or reason
        slot.ring.close()
        slot.ring.unlink()

    def _feed(self, slot: _WorkerSlot, share: np.ndarray) -> None:
        """Route one chunk share to a worker (or its failover path)."""
        if slot.status == "inlined":
            assert slot.inline_group is not None
            slot.inline_group.process_batch(share)
            return
        if slot.status == "failed":
            if share.size:
                assert self.supervisor is not None
                self.supervisor.process_batch(share)
            return
        deadline = time.monotonic() + self.put_timeout
        while not slot.ring.put(share, timeout=0.25):
            self._drain_all_messages()
            if not slot.process.is_alive():
                self._fail_worker(
                    slot,
                    f"worker {slot.index} died "
                    f"(exitcode {slot.process.exitcode})",
                )
                self._feed(slot, share)
                return
            if time.monotonic() > deadline:
                self._fail_worker(
                    slot,
                    f"worker {slot.index} hung: ring full for "
                    f"{self.put_timeout:.0f}s",
                )
                self._feed(slot, share)
                return
        slot.sent_chunks += 1
        slot.sent_items += int(share.shape[0])
        slot.retained.append(share)
        registry = current_registry()
        if registry is not None and share.size:
            registry.counter(
                "parallel_worker_items_total", worker=str(slot.index)
            ).inc(int(share.shape[0]))

    # -- driving -----------------------------------------------------------

    def run(
        self,
        chunks: Iterable[np.ndarray],
        *,
        checkpoint_store: CheckpointStore | None = None,
        checkpoint_every: int | None = None,
    ) -> EngineStats:
        """Ingest a chunk stream across the worker fleet and combine.

        Returns :class:`EngineStats` whose ``wall_seconds`` covers the
        whole pipeline — feeding, worker ingest, and the drain merge —
        which is the number real-vs-model speedups are measured on.
        The combined result is :attr:`supervisor`.
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_store is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_store"
            )
        self.stats = EngineStats()
        self.supervisor = ShardSupervisor(
            standby_hashes=self.standby_hashes,
            standby_bytes=self.standby_bytes,
            **self.group_params,
        )
        registry = current_registry()
        if registry is not None:
            stamp_backend(registry)
        start = time.perf_counter()
        chunks_since_checkpoint = 0
        try:
            # Inside the try so a mid-start failure still sweeps the
            # workers and rings already launched.
            self._start_workers()
            router = self.supervisor.group
            for chunk in chunks:
                chunk = coerce_chunk(chunk, self.stats.chunks_ingested)
                owners = router.owners_of(chunk)
                if registry is not None:
                    self._record_routing_metrics(registry, owners)
                worker_of = owners % self.workers
                for slot in self._slots:
                    self._feed(slot, chunk[worker_of == slot.index])
                self.stats.tuples_ingested += int(chunk.shape[0])
                self.stats.chunks_ingested += 1
                chunks_since_checkpoint += 1
                self._check_liveness()
                if registry is not None:
                    self._record_fleet_metrics(registry)
                if (
                    checkpoint_every is not None
                    and chunks_since_checkpoint >= checkpoint_every
                ):
                    self.checkpoint(checkpoint_store)
                    chunks_since_checkpoint = 0
            self._drain()
            if checkpoint_store is not None and chunks_since_checkpoint > 0:
                checkpoint_store.save(
                    self.supervisor,
                    chunk_index=self.stats.chunks_ingested,
                    tuples_ingested=self.stats.tuples_ingested,
                )
        finally:
            self._shutdown()
        self.stats.wall_seconds = time.perf_counter() - start
        if registry is not None:
            registry.gauge("engine_items_per_s").set(
                1000.0 * self.stats.wall_throughput_items_per_ms
            )
        return self.stats

    def _record_routing_metrics(
        self, registry: MetricsRegistry, owners: np.ndarray
    ) -> None:
        if owners.size == 0:
            return
        shares = np.bincount(owners, minlength=self.group_params["shards"])
        for index, share in enumerate(shares.tolist()):
            if share:
                registry.counter(
                    "shard_items_total", shard=str(index)
                ).inc(share)
        balanced = owners.size / self.group_params["shards"]
        registry.gauge("shard_skew").set(float(shares.max()) / balanced)
        registry.counter("engine_tuples_total").inc(int(owners.size))
        registry.counter("engine_chunks_total").inc()

    def _record_fleet_metrics(self, registry: MetricsRegistry) -> None:
        alive = 0
        for slot in self._slots:
            if slot.feeding_ring and slot.process.is_alive():
                alive += 1
                registry.gauge(
                    "parallel_ring_depth", worker=str(slot.index)
                ).set(slot.ring.depth())
        registry.gauge("parallel_workers_alive").set(alive)

    def _await_snapshots(self, target_of) -> None:
        """Block until every ring-fed worker's snapshot covers its target.

        ``target_of(slot)`` gives the chunk count the snapshot must
        reach.  Workers that die or stall past ``drain_timeout`` while
        we wait are failed over on the spot.
        """
        deadline = time.monotonic() + self.drain_timeout
        while True:
            waiting = [
                slot
                for slot in self._slots
                if slot.feeding_ring
                and slot.snapshot_chunks < target_of(slot)
            ]
            if not waiting:
                return
            self._drain_all_messages()
            for slot in waiting:
                if (
                    slot.snapshot_chunks < target_of(slot)
                    and not slot.process.is_alive()
                ):
                    self._fail_worker(
                        slot,
                        f"worker {slot.index} died "
                        f"(exitcode {slot.process.exitcode})",
                    )
            if time.monotonic() > deadline:
                for slot in waiting:
                    if slot.feeding_ring:
                        self._fail_worker(
                            slot,
                            f"worker {slot.index} hung: no snapshot within "
                            f"{self.drain_timeout:.0f}s",
                        )
                return
            time.sleep(0.005)

    def _drain(self) -> None:
        """End of stream: EOF every ring, collect finals, merge."""
        assert self.supervisor is not None
        for slot in self._slots:
            deadline = time.monotonic() + self.put_timeout
            while slot.feeding_ring:
                if slot.ring.close_producer(timeout=0.25):
                    break
                self._drain_all_messages()
                if not slot.process.is_alive():
                    self._fail_worker(
                        slot,
                        f"worker {slot.index} died "
                        f"(exitcode {slot.process.exitcode})",
                    )
                elif time.monotonic() > deadline:
                    self._fail_worker(
                        slot,
                        f"worker {slot.index} hung: ring full at drain",
                    )
        self._await_snapshots(lambda slot: slot.sent_chunks)
        registry = current_registry()
        merge_start = time.perf_counter()
        for slot in self._slots:
            if slot.status == "ok" and slot.snapshot_state is not None:
                self.supervisor.group.merge(
                    ShardedASketch.from_state(slot.snapshot_state)
                )
            elif slot.status == "inlined":
                assert slot.inline_group is not None
                self.supervisor.group.merge(slot.inline_group)
            # failed: frozen snapshot + standby were folded in at failure
        merge_elapsed = time.perf_counter() - merge_start
        if registry is not None:
            registry.histogram("parallel_merge_seconds").observe(
                merge_elapsed
            )

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self, store: CheckpointStore) -> dict:
        """Quiesce, snapshot every worker, save the combined state.

        The parent has stopped feeding when this runs (it is called
        between chunks), so each worker drains its ring to exactly
        ``sent_chunks`` and answers the sync request with a snapshot at
        that position; the merged clone saved to ``store`` therefore
        covers every chunk ingested so far — the same exactly-once
        replay point semantics as :class:`CheckpointStore` sequential
        checkpoints.
        """
        assert self.supervisor is not None
        for slot in self._slots:
            if slot.feeding_ring:
                try:
                    slot.conn.send(("sync", slot.sent_chunks))
                except (OSError, BrokenPipeError):
                    pass  # liveness handling in _await_snapshots
        self._await_snapshots(lambda slot: slot.sent_chunks)
        clone = ShardSupervisor.from_state(self.supervisor.state())
        for slot in self._slots:
            if slot.status == "ok" and slot.snapshot_state is not None:
                clone.group.merge(
                    ShardedASketch.from_state(slot.snapshot_state)
                )
            elif slot.status == "inlined":
                assert slot.inline_group is not None
                clone.group.merge(
                    ShardedASketch.from_state(slot.inline_group.state())
                )
        return store.save(
            clone,
            chunk_index=self.stats.chunks_ingested,
            tuples_ingested=self.stats.tuples_ingested,
        )

    # -- health -------------------------------------------------------------

    def worker_health(self) -> list[dict]:
        """Per-worker liveness/progress snapshot (JSON-safe)."""
        return [
            {
                "worker": slot.index,
                "status": slot.status,
                "alive": slot.process.is_alive(),
                "pid": slot.process.pid,
                "exitcode": slot.process.exitcode,
                "sent_chunks": slot.sent_chunks,
                "sent_items": slot.sent_items,
                "snapshot_chunks": slot.snapshot_chunks,
                "shards": self.shards_of(slot.index),
                "error": slot.error,
            }
            for slot in self._slots
        ]

    def shard_health(self) -> list[dict]:
        """Per-shard status from the combined supervisor.

        After a ``standby`` failover the dead worker's shards read
        ``failed`` here — process liveness surfaced through the same
        :meth:`ShardSupervisor.shard_health` view sequential
        deployments use.
        """
        if self.supervisor is None:
            return []
        return self.supervisor.shard_health()


def parallel_ingest(
    chunks: Iterable[np.ndarray],
    workers: int,
    **params: Any,
) -> tuple[ShardSupervisor, EngineStats]:
    """One-shot convenience: run a fleet over ``chunks``, return result.

    ``params`` are :class:`ParallelIngestRuntime` keyword arguments.
    Returns the combined :class:`ShardSupervisor` (queryable, mergeable,
    persistable) and the run's :class:`EngineStats`.
    """
    runtime = ParallelIngestRuntime(workers, **params)
    stats = runtime.run(chunks)
    assert runtime.supervisor is not None
    return runtime.supervisor, stats
