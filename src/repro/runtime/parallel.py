"""True multicore ingest: shared-memory SPMD worker processes.

:mod:`repro.hardware.spmd` *models* the paper's §6.3 multi-kernel run
with a cost model; this module makes it real.  N worker processes each
own a mutable set of shards of one
:class:`~repro.runtime.sharding.ShardedASketch` layout (initially
``s % workers == w``) and ingest their shares through the ordinary
``process_batch`` path, fed over shared-memory ring buffers
(``multiprocessing.shared_memory``, spawn-safe — no fork-dependent
state).

**Bit-identity.**  The parent routes every chunk with the group's own
``owners_of`` and sends worker ``w`` exactly the sub-array its shards
would have received in a sequential run, in chunk order.  Stable
partitioning inside ``process_batch`` then reproduces the exact same
per-shard sub-batches, so each worker's shard states equal the
sequential run's — and the drain merge recombines them through the
pristine-merge identity fast path of :meth:`repro.core.asketch.ASketch.
merge` (each shard is non-pristine on exactly one side).  The merged
result's :meth:`state` **equals** a single-process ingest's, enforced
by the parallel test suite.

**Self-healing.**  Worker death is detected by the parent (process
liveness plus ring-progress stall detection — a hung worker is not a
dead worker, but both are failed over).  Workers snapshot their group
over a pipe every ``sync_every`` chunks (each snapshot carries a
content digest, so a corrupted snapshot is *rejected* and the retained
replay tail kept), and the parent retains the un-snapshotted chunk
tail per worker, giving three recovery tiers:

* ``respawn=True`` (first tier): spawn a replacement process, restore
  it from the last accepted snapshot, replay the retained tail into
  its fresh ring, and resume exact ingest — **still bit-identical**,
  and transient: the worker's shards walk a
  ``ok → healing → ok`` lifecycle in
  :meth:`~repro.runtime.reliability.ShardSupervisor.health`.  Respawns
  are bounded per worker by a
  :class:`~repro.runtime.reliability.RetryPolicy`; past the budget the
  failure falls through to the configured ``failover`` tier.
* ``failover="inline"`` (default): rebuild the dead worker's group from
  its last snapshot, replay the retained tail in-parent through the
  identical ``process_batch`` path, and keep serving that worker's
  traffic in-parent — bit-identical, minus the parallelism.
* ``failover="standby"``: merge the frozen snapshot into the combined
  group, mark the worker's shards failed via
  :meth:`~repro.runtime.reliability.ShardSupervisor.fail_shard`, and
  route the retained tail plus all future traffic through the
  supervisor's standby Count-Min sketches — the PR-3 degradation
  semantics, now spanning process boundaries (estimates stay one-sided,
  ``shard_health()`` reflects the dead process).

**Elastic resharding.**  :meth:`ParallelIngestRuntime.reshard` moves
shard ownership between live workers online with a
quiesce → export → install → commit protocol that is crash-consistent
at every step: a worker dying mid-migration neither loses nor
double-counts a shard (the parent strips pending exports from the dead
worker's snapshot before any fallback merge, and the receiving side
acknowledges adoption with a full fresh snapshot).  With
``auto_reshard=True`` a skew-watching controller
(:class:`~repro.runtime.adaptive.ReshardController`) proposes moves
from the live ``shard_skew`` signal, with cooldown and bounds like the
filter's :class:`~repro.runtime.adaptive.AdaptiveController`.

**Backpressure & load-shedding.**  Ring occupancy is bounded, so a
slow consumer exerts natural backpressure on the parent.  The parent
distinguishes *no progress* (stall → typed
:class:`~repro.errors.WorkerStalledError`, failover) from *slow
progress* (keep waiting).  With ``load_shed=True`` a stalled ring
sheds the overflowing share to the parent's
:class:`~repro.runtime.reliability.DeadLetterQueue` instead of failing
the worker — **this trades away both bit-identity and the one-sided
guarantee for the shed keys** until the dead letters are replayed;
:meth:`health` reports the run degraded whenever shed chunks exist.

**In-worker resilience.**  Each worker wraps its ring in a
:class:`~repro.runtime.reliability.RetryingSource` (transient ring
faults retried with backoff) and quarantines poison chunks to a
worker-local :class:`~repro.runtime.reliability.DeadLetterQueue`,
reporting them to the parent instead of dying — the single-process
:class:`~repro.runtime.reliability.ResilientEngine` semantics, inside
the fleet.

**Observability.**  With a registry installed (:mod:`repro.obs`) the
parent records routing skew, per-worker item counters, ring depth,
liveness, failures, respawns (``worker_respawns_total``), stalls
(``parallel_worker_stalls_total``), migrations
(``reshard_migrations_total``), shed chunks
(``load_shed_chunks_total``), snapshot rejects
(``parallel_snapshot_rejects_total``) and merge latency; trace points
(``worker_respawn``, ``worker_healed``, ``worker_stalled``,
``reshard_migration``, ``load_shed``, ``snapshot_reject``) mark every
lifecycle transition.  Each worker runs its own registry and forwards
counter/gauge values over its pipe, which the parent re-labels with
``worker=<id>`` and folds into the installed registry.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing as mp
import os
import random
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import (
    ConfigurationError,
    PoisonChunkError,
    WorkerStalledError,
)
from repro.kernels import active_backend, set_backend, stamp_backend
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    current_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.trace import trace_point
from repro.runtime.engine import EngineStats, coerce_chunk
from repro.runtime.reliability import (
    CheckpointStore,
    DeadLetterQueue,
    FaultPlan,
    RetryingSource,
    RetryPolicy,
    ShardSupervisor,
)
from repro.runtime.sharding import ShardedASketch
from repro.synopses.protocol import SynopsisState

__all__ = ["ChunkRing", "ParallelIngestRuntime", "parallel_ingest"]


# -- shared-memory chunk ring ------------------------------------------------

#: Header word indices (all int64): monotonically increasing produced /
#: consumed slot counters (telemetry + depth; correctness rests on the
#: semaphores) and a total-items counter.
_HDR_PRODUCED = 0
_HDR_CONSUMED = 1
_HDR_ITEMS = 2
_HDR_WORDS = 4

#: Slot-length sentinel marking end of stream.
_EOF = -1

#: ``ChunkRing.get`` return marker for "nothing arrived within timeout"
#: (distinct from ``None`` = end of stream).
RING_TIMEOUT = object()


@dataclass
class RingHandle:
    """Everything a spawn child needs to attach to an existing ring.

    Semaphores travel through ``Process`` args (the only channel
    multiprocessing primitives can cross a spawn boundary on); the
    shared-memory segment is re-attached by name.
    """

    name: str
    slots: int
    slot_capacity: int
    sem_free: Any
    sem_filled: Any


class ChunkRing:
    """A single-producer single-consumer ring of int64 chunks in shm.

    Layout (all int64)::

        header[4]               produced / consumed / items / reserved
        lengths[slots]          item count per slot, -1 = end of stream
        data[slots, capacity]   the chunk payloads

    ``sem_free`` / ``sem_filled`` gate slot reuse; a semaphore release
    is the producer→consumer memory barrier (POSIX semaphores order the
    preceding stores), so the consumer never observes a slot before its
    payload.  ``get`` copies the payload out and frees the slot
    immediately, maximising producer/consumer overlap.

    The parent creates rings (``ChunkRing(slots, slot_capacity)``) and
    owns the segment lifecycle (:meth:`unlink`); workers attach via
    :meth:`from_handle`, which also unregisters the segment from the
    child's ``resource_tracker`` — before Python 3.13 an attaching
    process would otherwise unlink the segment when it exits.
    """

    def __init__(
        self,
        slots: int = 8,
        slot_capacity: int = 1 << 16,
        *,
        _handle: RingHandle | None = None,
    ) -> None:
        if _handle is None:
            if slots < 1:
                raise ConfigurationError(f"slots must be >= 1, got {slots}")
            if slot_capacity < 1:
                raise ConfigurationError(
                    f"slot_capacity must be >= 1, got {slot_capacity}"
                )
            ctx = mp.get_context("spawn")
            nbytes = 8 * (_HDR_WORDS + slots + slots * slot_capacity)
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.slots = int(slots)
            self.slot_capacity = int(slot_capacity)
            self._sem_free = ctx.Semaphore(self.slots)
            self._sem_filled = ctx.Semaphore(0)
            self._owner = True
        else:
            # Attach without registering with the resource tracker: the
            # creator already registered the segment, the tracker is
            # shared across spawn children, and a second registration
            # would end in a double-unregister (pre-3.13 there is no
            # ``track=False`` to say this properly).
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            try:
                resource_tracker.register = (  # type: ignore[assignment]
                    lambda name, rtype: None
                    if rtype == "shared_memory"
                    else original_register(name, rtype)
                )
                self._shm = shared_memory.SharedMemory(name=_handle.name)
            finally:
                resource_tracker.register = original_register
            self.slots = int(_handle.slots)
            self.slot_capacity = int(_handle.slot_capacity)
            self._sem_free = _handle.sem_free
            self._sem_filled = _handle.sem_filled
            self._owner = False
        buf = self._shm.buf
        self._header = np.ndarray((_HDR_WORDS,), dtype=np.int64, buffer=buf)
        self._lengths = np.ndarray(
            (self.slots,), dtype=np.int64, buffer=buf, offset=8 * _HDR_WORDS
        )
        self._data = np.ndarray(
            (self.slots, self.slot_capacity),
            dtype=np.int64,
            buffer=buf,
            offset=8 * (_HDR_WORDS + self.slots),
        )
        if self._owner:
            self._header[:] = 0
            self._lengths[:] = 0
        self._put_cursor = 0
        self._get_cursor = 0

    @property
    def name(self) -> str:
        """OS name of the shared-memory segment."""
        return self._shm.name

    def handle(self) -> RingHandle:
        """The picklable attachment record for a spawn child."""
        return RingHandle(
            name=self._shm.name,
            slots=self.slots,
            slot_capacity=self.slot_capacity,
            sem_free=self._sem_free,
            sem_filled=self._sem_filled,
        )

    @classmethod
    def from_handle(cls, handle: RingHandle) -> "ChunkRing":
        """Attach to an existing ring inside a worker process."""
        return cls(_handle=handle)

    # -- producer side -----------------------------------------------------

    def put(self, chunk: np.ndarray, timeout: float | None = None) -> bool:
        """Publish one chunk; False when no slot freed within ``timeout``.

        Oversized chunks are a configuration error, not a silent split —
        splitting would change sub-batch boundaries and break the
        bit-identity contract.
        """
        n = int(chunk.shape[0])
        if n > self.slot_capacity:
            raise ConfigurationError(
                f"chunk of {n} items exceeds ring slot capacity "
                f"{self.slot_capacity}; raise slot_capacity or shrink chunks"
            )
        if not self._sem_free.acquire(timeout=timeout):
            return False
        slot = self._put_cursor % self.slots
        if n:
            self._data[slot, :n] = chunk
        self._lengths[slot] = n
        self._put_cursor += 1
        self._header[_HDR_PRODUCED] = self._put_cursor
        self._header[_HDR_ITEMS] += n
        self._sem_filled.release()
        return True

    def close_producer(self, timeout: float | None = None) -> bool:
        """Publish the end-of-stream sentinel."""
        if not self._sem_free.acquire(timeout=timeout):
            return False
        slot = self._put_cursor % self.slots
        self._lengths[slot] = _EOF
        self._put_cursor += 1
        self._header[_HDR_PRODUCED] = self._put_cursor
        self._sem_filled.release()
        return True

    # -- consumer side -----------------------------------------------------

    def get(self, timeout: float | None = None):
        """Next chunk; ``None`` at end of stream, :data:`RING_TIMEOUT`
        when nothing arrived within ``timeout``."""
        if not self._sem_filled.acquire(timeout=timeout):
            return RING_TIMEOUT
        slot = self._get_cursor % self.slots
        n = int(self._lengths[slot])
        self._get_cursor += 1
        self._header[_HDR_CONSUMED] = self._get_cursor
        if n == _EOF:
            self._sem_free.release()
            return None
        chunk = self._data[slot, :n].copy()
        self._sem_free.release()
        return chunk

    # -- shared ------------------------------------------------------------

    def depth(self) -> int:
        """Slots currently published but not yet consumed."""
        return int(self._header[_HDR_PRODUCED] - self._header[_HDR_CONSUMED])

    def consumed(self) -> int:
        """Total slots the consumer has taken so far.

        The parent's *progress* signal: a worker whose ``consumed()``
        advances is slow, not hung — stall detection keys off this
        rather than wall-clock alone.
        """
        return int(self._header[_HDR_CONSUMED])

    def items_published(self) -> int:
        """Total items published so far."""
        return int(self._header[_HDR_ITEMS])

    def close(self) -> None:
        """Drop this process's mapping (views first, then the segment)."""
        self._header = None  # type: ignore[assignment]
        self._lengths = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - already gone
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# -- snapshot integrity ------------------------------------------------------


def _state_digest(state: SynopsisState) -> str:
    """Content hash of a synopsis state (params + arrays + extra).

    Travels alongside every snapshot/migration payload so the receiver
    can detect in-flight corruption; a mismatch means *reject and keep
    the replay tail*, never adopt.
    """
    h = hashlib.sha256()
    h.update(state.kind.encode())
    h.update(repr(sorted(state.params.items())).encode())
    h.update(
        json.dumps(state.extra, sort_keys=True, default=str).encode()
    )
    for name in sorted(state.arrays):
        array = np.ascontiguousarray(state.arrays[name])
        h.update(name.encode())
        h.update(str(array.dtype).encode())
        h.update(repr(array.shape).encode())
        h.update(array.tobytes())
    return h.hexdigest()


def _states_digest(states: Mapping[int, SynopsisState]) -> str:
    """Combined digest over a shard-indexed batch of states."""
    h = hashlib.sha256()
    for index in sorted(states):
        h.update(str(int(index)).encode())
        h.update(_state_digest(states[index]).encode())
    return h.hexdigest()


# -- the worker process ------------------------------------------------------


def _export_metrics(registry: MetricsRegistry) -> list[tuple]:
    """Counter/gauge values as picklable rows (histograms stay local)."""
    rows: list[tuple] = []
    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            rows.append(
                ("counter", instrument.name, dict(instrument.labels),
                 instrument.value)
            )
        elif isinstance(instrument, Gauge):
            rows.append(
                ("gauge", instrument.name, dict(instrument.labels),
                 instrument.value)
            )
    return rows


class _RingSource:
    """The worker's view of its ring as a retryable chunk iterator.

    Satisfies the :class:`~repro.runtime.reliability.RetryingSource`
    re-offer contract: an injected transient failure is raised *before*
    the chunk is surrendered and the same chunk is offered again on the
    next ``__next__`` call.  ``control`` runs once per iteration (and
    per idle timeout), keeping the worker responsive to parent control
    messages even while the ring is empty.
    """

    def __init__(self, ring: ChunkRing, control, transient: dict | None) -> None:
        self._ring = ring
        self._control = control
        self._transient = dict(transient or {})
        #: 0-based count of chunks surrendered so far (= next position).
        self.position = 0
        #: Set when the parent died: stop quietly, nobody will drain us.
        self.orphaned = False
        self._pending: Any = None
        self._has_pending = False

    def __iter__(self) -> "_RingSource":
        """Iterator protocol: the source is its own iterator."""
        return self

    def __next__(self) -> np.ndarray:
        """Next chunk off the ring, injecting planned transient faults."""
        while True:
            self._control()
            if not self._has_pending:
                chunk = self._ring.get(timeout=0.05)
                if chunk is RING_TIMEOUT:
                    parent = mp.parent_process()
                    if parent is not None and not parent.is_alive():
                        self.orphaned = True
                        raise StopIteration
                    continue
                if chunk is None:
                    raise StopIteration
                self._pending = chunk
                self._has_pending = True
            remaining = self._transient.get(self.position, 0)
            if remaining > 0:
                self._transient[self.position] = remaining - 1
                from repro.errors import TransientSourceError

                raise TransientSourceError(
                    f"injected transient ring fault at chunk {self.position} "
                    f"({remaining - 1} more to come)"
                )
            chunk = self._pending
            self._pending = None
            self._has_pending = False
            self.position += 1
            return chunk


def _worker_main(
    worker_id: int,
    handle: RingHandle,
    group_params: dict,
    conn,
    sync_every: int,
    backend_name: str,
    faults: dict | None = None,
    initial: tuple | None = None,
) -> None:
    """Worker body: drain the ring into a shard-local group.

    Spawn-safe top-level function.  The group has the *full* shard
    layout; the parent only ever sends keys owned by this worker's
    shards, so every other shard stays pristine (the precondition for
    the drain merge's identity fast path).  ``backend_name`` is the
    parent's active kernel backend — spawn children re-import from
    scratch, so the selection must travel explicitly for the whole
    fleet to compute on the same backend.

    ``faults`` are the picklable hooks from
    :meth:`~repro.runtime.reliability.FaultPlan.worker_faults_for`
    (crash/exit/hang at a local chunk position, poison payload swap,
    transient ring errors, snapshot corruption).  Faults are one-shot
    per process *generation*: a respawned replacement runs fault-free,
    otherwise a ``crash_after`` would re-fire on restore forever.

    ``initial`` is ``(state, chunks_done, items_done)`` for a respawned
    replacement: the group restores from the parent's last accepted
    snapshot and chunk counting resumes from there, so the retained
    tail the parent replays lands at exactly the right positions.
    """
    set_backend(backend_name)
    ring = ChunkRing.from_handle(handle)
    registry = install_registry(MetricsRegistry())
    faults = dict(faults or {})
    if initial is not None:
        state, chunks_done, items_done = initial
        group = ShardedASketch.from_state(state)
        chunks_done = int(chunks_done)
        items_done = int(items_done)
    else:
        group = ShardedASketch(**group_params)
        chunks_done = 0
        items_done = 0
    dead_letters = DeadLetterQueue(capacity=64)
    snapshots_sent = 0
    sync_target: int | None = None

    def send_snapshot(tag: str = "snapshot") -> None:
        nonlocal snapshots_sent
        state = group.state()
        digest = _state_digest(state)
        snapshots_sent += 1
        if (
            tag == "snapshot"
            and faults.get("corrupt_snapshot_at") == snapshots_sent
        ):
            # In-flight corruption: the digest was computed over the
            # true state, then a payload array is flipped — the parent
            # must detect the mismatch and reject.
            for name in sorted(state.arrays):
                array = state.arrays[name]
                if array.size:
                    corrupted = array.copy()
                    corrupted.reshape(-1)[0] += 1
                    state.arrays[name] = corrupted
                    break
        conn.send(
            (
                tag,
                int(chunks_done),
                int(items_done),
                state,
                digest,
                _export_metrics(registry),
            )
        )

    def handle_control() -> None:
        nonlocal sync_target
        while conn.poll():
            message = conn.recv()
            tag = message[0]
            if tag == "sync":
                sync_target = int(message[1])
            elif tag == "migrate_out":
                # Phase one of the handoff: read-only export.  The
                # local copies are NOT reset until the parent confirms
                # the new owner adopted them (migrate_commit), so a
                # crash anywhere in between leaves this worker's
                # snapshot still carrying the shards.
                shard_list = [int(s) for s in message[1]]
                states = {
                    s: group.shards[s].state() for s in shard_list
                }
                conn.send(
                    (
                        "migrated",
                        int(chunks_done),
                        states,
                        _states_digest(states),
                    )
                )
            elif tag == "migrate_in":
                for shard, shard_state in message[1].items():
                    group.install_shard(int(shard), shard_state)
                # The adoption ack IS a full fresh snapshot: once the
                # parent accepts it, a later death of this worker
                # recovers the migrated shard from snapshot like any
                # other data — no special mid-migration state survives.
                send_snapshot("adopted")
            elif tag == "migrate_commit":
                for shard in message[1]:
                    group.export_shard(int(shard))  # discard: reset
                send_snapshot("migrate_committed")
        if sync_target is not None and chunks_done >= sync_target:
            send_snapshot()
            sync_target = None

    source = _RingSource(ring, handle_control, faults.get("transient"))
    retrying = RetryingSource(
        source,
        default_policy=RetryPolicy(
            max_retries=8, base_delay=0.001, multiplier=2.0,
            max_delay=0.05, jitter=0.5,
        ),
        seed=int(faults.get("seed", 0)) * 131 + worker_id,
    )
    try:
        for chunk in retrying:
            position = chunks_done
            if "crash_after" in faults and position >= faults["crash_after"]:
                os._exit(17)  # injected mid-stream kill -9, no cleanup
            if "exit_after" in faults and position >= faults["exit_after"]:
                sys.exit(3)  # premature "clean" exit, no final snapshot
            if "hang_after" in faults and position >= faults["hang_after"]:
                while True:  # alive but stalled: the slow/hung case
                    time.sleep(0.05)
                    parent = mp.parent_process()
                    if parent is None or not parent.is_alive():
                        os._exit(0)
            if faults.get("poison_at") == position:
                chunk = np.asarray(chunk, dtype=np.float64) + 0.5
            try:
                array = coerce_chunk(chunk, position)
            except PoisonChunkError as exc:
                # Quarantine and continue — the ResilientEngine
                # semantics inside a worker.  The position still
                # counts: the parent's retained-tail pruning is keyed
                # to chunks *handled*, ingested or not.
                dead_letters.quarantine(position, chunk, exc.reason)
                conn.send(("quarantine", int(position), exc.reason))
                chunks_done += 1
                handle_control()
                continue
            group.process_batch(array)
            chunks_done += 1
            items_done += int(array.shape[0])
            if chunks_done % sync_every == 0:
                send_snapshot()
            handle_control()
        if not source.orphaned:
            send_snapshot()
            conn.send(("done", int(chunks_done), int(items_done)))
    except Exception as error:  # surface, then die visibly
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:
            pass
        sys.exit(1)
    finally:
        uninstall_registry()
        ring.close()
        conn.close()


# -- the parent-side runtime -------------------------------------------------


@dataclass
class _WorkerSlot:
    """Parent-side bookkeeping for one worker process."""

    index: int
    process: Any
    ring: ChunkRing
    conn: Any
    sent_chunks: int = 0
    sent_items: int = 0
    acked_chunks: int = 0
    retained: deque = field(default_factory=deque)
    snapshot_state: SynopsisState | None = None
    snapshot_chunks: int = 0
    snapshot_items: int = 0
    status: str = "ok"
    inline_group: ShardedASketch | None = None
    metrics_last: dict = field(default_factory=dict)
    done: bool = False
    error: str | None = None
    respawns: int = 0
    stalls: int = 0
    quarantined: int = 0
    snapshot_rejects: int = 0
    #: While healing: the chunk count a replacement's snapshot must
    #: reach before the worker's shards flip back to healthy.
    heal_target: int | None = None

    @property
    def feeding_ring(self) -> bool:
        """Whether new shares still go through the shared-memory ring."""
        return self.status == "ok"


class ParallelIngestRuntime:
    """Drive one logical ShardedASketch with N worker processes.

    Parameters
    ----------
    workers:
        Worker process count; worker ``w`` initially owns shards ``s``
        with ``s % workers == w`` (ownership may move via
        :meth:`reshard`).
    shards:
        Shard count (default: one per worker).  Must be >= ``workers``.
    total_bytes, filter_items, filter_kind, num_hashes, seed:
        The :class:`~repro.runtime.sharding.ShardedASketch` layout —
        identical to what a sequential run would build, which is what
        the bit-identity guarantee is measured against.
    slots, slot_capacity:
        Ring geometry per worker (``slot_capacity`` must cover the
        largest per-worker chunk share).
    sync_every:
        Worker snapshot cadence in chunks; bounds both the retained
        replay tail in the parent and the data a standby failover loses
        to its one-sided fallback.
    failover:
        ``"inline"`` (exact in-parent recovery, bit-identity preserved)
        or ``"standby"`` (PR-3 degradation: frozen snapshot + standby
        Count-Min via :meth:`ShardSupervisor.fail_shard`).  This is the
        *terminal* tier; with ``respawn=True`` it is reached only after
        the respawn budget is spent.
    respawn:
        Enable the first recovery tier: dead/hung workers are replaced
        by fresh processes restored from snapshot + retained-tail
        replay (exact, transient ``healing`` state).
    respawn_policy:
        :class:`~repro.runtime.reliability.RetryPolicy` bounding
        respawns per worker (``max_retries``) and pacing the backoff
        between attempts.
    auto_reshard:
        Watch routing skew and move shards between workers online via
        :class:`~repro.runtime.adaptive.ReshardController`.
    reshard_skew_threshold, reshard_min_window_items,
    reshard_cooldown_windows:
        Controller bounds: minimum observed-window skew that triggers a
        move, minimum items per observation window, and windows to hold
        off after a migration.
    load_shed:
        Instead of failing over a stalled worker, quarantine the
        overflowing share to :attr:`dead_letters` and keep going.
        Sacrifices bit-identity *and* the one-sided guarantee for the
        shed keys until the dead letters are replayed.
    dead_letter_capacity:
        Parent-side dead-letter queue capacity (shed shares and
        worker-quarantined payloads).
    stall_timeout:
        Seconds without any ring progress before a worker counts as
        stalled (default: ``put_timeout``).  Progress resets the clock:
        slow workers are waited on, hung workers are not.
    standby_hashes, standby_bytes:
        Standby sizing, forwarded to :class:`ShardSupervisor`.
    fault_plan:
        A :class:`~repro.runtime.reliability.FaultPlan` whose
        cross-process faults (``worker_crash``/``worker_exit``/
        ``worker_hang``/``worker_poison``/``worker_transient``/
        ``corrupt_snapshot``) are acted out inside the workers.
    inject_crash:
        Legacy shorthand for ``FaultPlan(worker_crash=...)``.
    put_timeout, drain_timeout:
        Seconds the parent waits on a stuck ring slot / on drain
        messages before declaring the worker hung and failing it over.
    """

    FAILOVER_MODES = ("inline", "standby")

    def __init__(
        self,
        workers: int,
        *,
        shards: int | None = None,
        total_bytes: int = 32 * 1024,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        num_hashes: int = 8,
        seed: int = 0,
        slots: int = 8,
        slot_capacity: int = 1 << 16,
        sync_every: int = 8,
        failover: str = "inline",
        respawn: bool = False,
        respawn_policy: RetryPolicy | None = None,
        auto_reshard: bool = False,
        reshard_skew_threshold: float = 1.5,
        reshard_min_window_items: int = 2048,
        reshard_cooldown_windows: int = 2,
        load_shed: bool = False,
        dead_letter_capacity: int = 64,
        stall_timeout: float | None = None,
        standby_hashes: int = 4,
        standby_bytes: int | None = None,
        fault_plan: FaultPlan | None = None,
        inject_crash: dict[int, int] | None = None,
        put_timeout: float = 60.0,
        drain_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        shards = workers if shards is None else int(shards)
        if shards < workers:
            raise ConfigurationError(
                f"need at least one shard per worker: shards={shards} < "
                f"workers={workers}"
            )
        if sync_every < 1:
            raise ConfigurationError(
                f"sync_every must be >= 1, got {sync_every}"
            )
        if failover not in self.FAILOVER_MODES:
            raise ConfigurationError(
                f"failover must be one of {self.FAILOVER_MODES}, "
                f"got {failover!r}"
            )
        if reshard_skew_threshold <= 1.0:
            raise ConfigurationError(
                "reshard_skew_threshold must exceed 1.0, got "
                f"{reshard_skew_threshold}"
            )
        self.workers = int(workers)
        self.group_params = {
            "shards": shards,
            "total_bytes": int(total_bytes),
            "filter_items": int(filter_items),
            "filter_kind": filter_kind,
            "num_hashes": int(num_hashes),
            "seed": int(seed),
        }
        self.slots = int(slots)
        self.slot_capacity = int(slot_capacity)
        self.sync_every = int(sync_every)
        self.failover = failover
        self.respawn = bool(respawn)
        self.respawn_policy = respawn_policy or RetryPolicy(
            max_retries=3, base_delay=0.05, multiplier=2.0,
            max_delay=1.0, jitter=0.25,
        )
        self.auto_reshard = bool(auto_reshard)
        self.reshard_skew_threshold = float(reshard_skew_threshold)
        self.reshard_min_window_items = int(reshard_min_window_items)
        self.reshard_cooldown_windows = int(reshard_cooldown_windows)
        self.load_shed = bool(load_shed)
        self.stall_timeout = stall_timeout
        self.standby_hashes = int(standby_hashes)
        self.standby_bytes = standby_bytes
        self.fault_plan = fault_plan
        self.inject_crash = dict(inject_crash or {})
        self.put_timeout = float(put_timeout)
        self.drain_timeout = float(drain_timeout)
        #: The combined result (populated by :meth:`run`).
        self.supervisor: ShardSupervisor | None = None
        self.stats = EngineStats()
        #: Parent-side quarantine: load-shed shares plus payloads of
        #: chunks workers quarantined (recovered from the retained tail
        #: when still available).
        self.dead_letters = DeadLetterQueue(capacity=dead_letter_capacity)
        #: Completed shard migrations (reshard moves applied).
        self.migrations = 0
        #: Chunk shares shed to the dead-letter queue under load.
        self.shed_chunks = 0
        self._slots: list[_WorkerSlot] = []
        self._assignment = np.array(
            [s % self.workers for s in range(shards)], dtype=np.int64
        )
        self._shard_items = np.zeros(shards, dtype=np.int64)
        self._respawn_rng = random.Random(int(seed) * 31337 + 7)
        #: shards exported from a worker but not yet commit-acked there
        #: — stripped from that worker's snapshot on failover so a
        #: mid-migration death cannot double-count them.
        self._exports_pending: dict[int, set[int]] = {}

    def shards_of(self, worker: int) -> list[int]:
        """Shard indices currently owned by one worker."""
        return [int(s) for s in np.nonzero(self._assignment == worker)[0]]

    def shard_item_counts(self) -> np.ndarray:
        """Cumulative items routed per shard this run (copy).

        The :class:`~repro.runtime.adaptive.ReshardController` reads
        this to compute per-worker load under the current assignment.
        """
        return self._shard_items.copy()

    @property
    def respawn_count(self) -> int:
        """Total worker respawns across the fleet."""
        return sum(slot.respawns for slot in self._slots)

    @property
    def stall_count(self) -> int:
        """Total stall detections across the fleet."""
        return sum(slot.stalls for slot in self._slots)

    @property
    def quarantined_count(self) -> int:
        """Total chunks quarantined inside workers."""
        return sum(slot.quarantined for slot in self._slots)

    # -- lifecycle ---------------------------------------------------------

    @contextlib.contextmanager
    def _pinned_pythonpath(self):
        """Pin the package root into PYTHONPATH around spawn starts.

        Spawn re-imports modules in a fresh interpreter: sys.path edits
        made in-process (benchmark scripts, test harnesses) are not
        inherited, so the package root must travel via the environment.
        """
        import repro

        package_root = str(Path(repro.__file__).resolve().parents[1])
        previous = os.environ.get("PYTHONPATH")
        entries = (previous or "").split(os.pathsep) if previous else []
        if package_root not in entries:
            os.environ["PYTHONPATH"] = os.pathsep.join(
                [package_root, *entries]
            )
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = previous

    def _worker_faults(self, index: int) -> dict | None:
        hooks: dict | None = None
        if self.fault_plan is not None:
            hooks = self.fault_plan.worker_faults_for(index)
        if index in self.inject_crash:
            hooks = dict(hooks or {"seed": 0})
            hooks.setdefault("crash_after", int(self.inject_crash[index]))
        return hooks

    def _launch(
        self,
        index: int,
        *,
        initial: tuple | None = None,
        faults: dict | None = None,
    ) -> tuple[Any, Any, ChunkRing]:
        """Start one worker process with a fresh ring and pipe."""
        ctx = mp.get_context("spawn")
        ring = ChunkRing(self.slots, self.slot_capacity)
        try:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    ring.handle(),
                    self.group_params,
                    child_conn,
                    self.sync_every,
                    active_backend().name,
                    faults,
                    initial,
                ),
                daemon=True,
                name=f"repro-ingest-{index}",
            )
            process.start()
        except BaseException:
            # A failed start would otherwise leak this ring: it only
            # enters _slots (and _shutdown's sweep) after the process
            # is up.
            ring.close()
            ring.unlink()
            raise
        child_conn.close()
        return process, parent_conn, ring

    def _start_workers(self) -> None:
        with self._pinned_pythonpath():
            for index in range(self.workers):
                process, conn, ring = self._launch(
                    index, faults=self._worker_faults(index)
                )
                self._slots.append(
                    _WorkerSlot(
                        index=index, process=process, ring=ring, conn=conn,
                    )
                )

    def _shutdown(self) -> None:
        for slot in self._slots:
            try:
                slot.conn.close()
            except OSError:
                pass
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=10.0)
            slot.ring.close()
            slot.ring.unlink()
        registry = current_registry()
        if registry is not None:
            registry.gauge("parallel_workers_alive").set(0)

    # -- message handling --------------------------------------------------

    def _apply_worker_metrics(self, slot: _WorkerSlot, rows: list) -> None:
        registry = current_registry()
        if registry is None:
            return
        for kind, name, labels, value in rows:
            labelled = {**labels, "worker": str(slot.index)}
            if kind == "counter":
                key = (name, tuple(sorted(labelled.items())))
                last = slot.metrics_last.get(key, 0.0)
                if value > last:
                    registry.counter(name, **labelled).inc(value - last)
                slot.metrics_last[key] = value
            else:
                registry.gauge(name, **labelled).set(value)

    #: Message tags carrying a full group snapshot (handled alike).
    _SNAPSHOT_TAGS = ("snapshot", "adopted", "migrate_committed")

    def _handle_message(self, slot: _WorkerSlot, message: tuple) -> None:
        tag = message[0]
        if tag in self._SNAPSHOT_TAGS:
            _, chunks_done, items_done, state, digest, metric_rows = message
            if _state_digest(state) != digest:
                # Corrupted in flight: reject, keep the previous
                # snapshot AND the retained tail it still covers.
                slot.snapshot_rejects += 1
                registry = current_registry()
                if registry is not None:
                    registry.counter(
                        "parallel_snapshot_rejects_total",
                        worker=str(slot.index),
                    ).inc()
                trace_point(
                    "snapshot_reject",
                    worker=slot.index,
                    chunks=int(chunks_done),
                )
                self._apply_worker_metrics(slot, metric_rows)
                return
            slot.snapshot_state = state
            slot.snapshot_chunks = int(chunks_done)
            slot.snapshot_items = int(items_done)
            # The snapshot covers the first chunks_done FIFO chunks this
            # worker received — drop exactly that prefix of the retained
            # replay tail.
            while slot.acked_chunks < slot.snapshot_chunks and slot.retained:
                slot.retained.popleft()
                slot.acked_chunks += 1
            self._apply_worker_metrics(slot, metric_rows)
            if (
                slot.heal_target is not None
                and slot.snapshot_chunks >= slot.heal_target
            ):
                self._complete_healing(slot)
        elif tag == "quarantine":
            _, position, reason = message
            slot.quarantined += 1
            payload = None
            offset = int(position) - slot.acked_chunks
            if 0 <= offset < len(slot.retained):
                payload = slot.retained[offset]
            self.dead_letters.quarantine(
                int(position), payload, f"worker {slot.index}: {reason}"
            )
        elif tag == "done":
            slot.done = True
        elif tag == "error":
            slot.error = str(message[1])

    def _drain_messages(self, slot: _WorkerSlot) -> None:
        try:
            while slot.conn.poll():
                self._handle_message(slot, slot.conn.recv())
        except (EOFError, OSError):
            pass  # pipe gone; liveness check deals with the process

    def _drain_all_messages(
        self, exclude: _WorkerSlot | None = None
    ) -> None:
        """Drain every live worker's pipe.

        A snapshot can exceed the pipe buffer, so a worker may *block in
        send* until the parent reads — any parent-side wait loop must
        keep draining all pipes or two blocked sides deadlock (worker
        stuck in send, parent stuck waiting for that worker's ring).
        ``exclude`` protects a pipe another loop is reading selectively
        (see :meth:`_await_message`).
        """
        for slot in self._slots:
            if slot.feeding_ring and slot is not exclude:
                self._drain_messages(slot)

    def _check_liveness(self) -> None:
        for slot in self._slots:
            if not slot.feeding_ring:
                continue
            self._drain_messages(slot)
            if slot.process.is_alive() or slot.done:
                continue
            self._fail_worker(
                slot,
                f"worker {slot.index} died "
                f"(exitcode {slot.process.exitcode})",
            )

    # -- failover ----------------------------------------------------------

    def _complete_healing(self, slot: _WorkerSlot) -> None:
        """A replacement's snapshot caught up: shards healthy again."""
        slot.heal_target = None
        if self.supervisor is None:
            return
        for shard in self.shards_of(slot.index):
            self.supervisor.heal_shard(shard)
        trace_point("worker_healed", worker=slot.index)

    def _record_stall(self, slot: _WorkerSlot, waited: float, what: str):
        """Build the typed stall error and record its telemetry."""
        slot.stalls += 1
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "parallel_worker_stalls_total", worker=str(slot.index)
            ).inc()
        trace_point(
            "worker_stalled", worker=slot.index, waited_seconds=waited,
            what=what,
        )
        return WorkerStalledError(
            f"worker {slot.index} stalled: no progress on {what} for "
            f"{waited:.1f}s",
            worker=slot.index,
            waited_seconds=waited,
        )

    def _stall(
        self,
        slot: _WorkerSlot,
        waited: float,
        what: str,
        *,
        allow_respawn: bool = True,
    ) -> None:
        """Record a stall and fail the worker over (hung ≠ dead, but
        both leave the ring unserved)."""
        error = self._record_stall(slot, waited, what)
        slot.error = slot.error or str(error)
        self._fail_worker(slot, str(error), allow_respawn=allow_respawn)

    def _fail_worker(
        self, slot: _WorkerSlot, reason: str, *, allow_respawn: bool = True
    ) -> None:
        """Recover a dead/hung worker's traffic, walking the tiers:
        respawn (if enabled and budgeted), then inline/standby."""
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "parallel_worker_failures_total", worker=str(slot.index)
            ).inc()
        self._drain_messages(slot)  # salvage any final snapshot in flight
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=10.0)
        if (
            self.respawn
            and allow_respawn
            and slot.status == "ok"
            and not slot.done
        ):
            if self._respawn_worker(slot, reason):
                return
            # The replacement is unusable too: salvage whatever
            # snapshot it managed (accepted snapshots already pruned
            # the retained tail consistently), then fall through.
            self._drain_messages(slot)
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=10.0)
            self._drain_messages(slot)
        pending = list(slot.retained)
        slot.retained.clear()
        assert self.supervisor is not None
        owned = self.shards_of(slot.index)
        # Shards exported to a new owner but not yet commit-acked by
        # this worker still sit in its snapshot — discard them before
        # any merge/replay, or the handoff double-counts.
        stripped = self._exports_pending.get(slot.index, set())
        if self.failover == "inline":
            if slot.snapshot_state is not None:
                group = ShardedASketch.from_state(slot.snapshot_state)
            else:
                group = ShardedASketch(**self.group_params)
            for shard in stripped:
                group.export_shard(shard)
            for share in pending:
                group.process_batch(share)
            slot.inline_group = group
            slot.status = "inlined"
            # Inline recovery is exact: any healing shards are whole.
            for shard in owned:
                self.supervisor.heal_shard(shard)
        else:
            if slot.snapshot_state is not None:
                group = ShardedASketch.from_state(slot.snapshot_state)
                for shard in stripped:
                    group.export_shard(shard)
                self.supervisor.group.merge(group)
            for shard_index in owned:
                self.supervisor.fail_shard(shard_index, reason)
            for share in pending:
                if share.size:
                    self.supervisor.process_batch(share)
            slot.status = "failed"
        slot.heal_target = None
        slot.error = slot.error or reason
        slot.ring.close()
        slot.ring.unlink()

    def _respawn_worker(self, slot: _WorkerSlot, reason: str) -> bool:
        """Tier-one recovery: replace the process, restore, replay.

        Returns False when the respawn budget is spent or the
        replacement itself fails during replay — the caller then falls
        through to the terminal failover tier, which remains correct
        because accepted replacement snapshots prune the retained tail
        consistently with the state they carry.
        """
        policy = self.respawn_policy
        if slot.respawns >= policy.max_retries:
            return False
        attempt = slot.respawns
        slot.respawns += 1
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "worker_respawns_total", worker=str(slot.index)
            ).inc()
        trace_point(
            "worker_respawn", worker=slot.index, attempt=attempt,
            reason=reason,
        )
        if self.supervisor is not None:
            for shard in self.shards_of(slot.index):
                self.supervisor.begin_healing(
                    shard, f"worker {slot.index} respawning: {reason}"
                )
        time.sleep(min(policy.delay_for(attempt, self._respawn_rng), 1.0))
        initial = None
        if slot.snapshot_state is not None:
            initial = (
                slot.snapshot_state,
                slot.snapshot_chunks,
                slot.snapshot_items,
            )
        # Injected faults are one-shot per process generation: the
        # replacement runs fault-free (a crash_after would re-fire on
        # restore and loop the respawn budget away for nothing).
        with self._pinned_pythonpath():
            process, conn, ring = self._launch(
                slot.index, initial=initial, faults=None
            )
        try:
            slot.conn.close()
        except OSError:
            pass
        slot.ring.close()
        slot.ring.unlink()
        slot.process = process
        slot.conn = conn
        slot.ring = ring
        slot.metrics_last = {}
        slot.done = False
        slot.error = None
        slot.heal_target = slot.sent_chunks
        for share in slot.retained:
            if not self._replay_into(slot, share):
                return False
        try:
            # Ask for a snapshot at the caught-up position: its arrival
            # completes the healing cycle.
            slot.conn.send(("sync", slot.sent_chunks))
        except (OSError, BrokenPipeError):
            return False
        return True

    def _replay_into(self, slot: _WorkerSlot, share: np.ndarray) -> bool:
        """Feed one retained share to a replacement's fresh ring."""
        deadline = time.monotonic() + self.put_timeout
        while not slot.ring.put(share, timeout=0.25):
            self._drain_all_messages()
            if not slot.process.is_alive():
                return False
            if time.monotonic() > deadline:
                return False
        return True

    # -- backpressure / feeding --------------------------------------------

    def _put_with_failover(self, slot: _WorkerSlot, put, *, sheddable):
        """Drive one ring publish under backpressure.

        ``put(timeout)`` is retried while draining pipes.  Outcomes:
        ``"ok"`` (published), ``"shed"`` (stalled and load-shedding is
        on), ``"rerouted"`` (the worker was failed over — the slot is
        now respawned/inlined/failed and the caller must re-dispatch).
        Progress on the ring (``consumed()`` advancing) resets the
        stall clock: a slow worker is waited on indefinitely, only a
        worker making *no* progress within ``stall_timeout`` is
        declared stalled.
        """
        budget = (
            self.stall_timeout
            if self.stall_timeout is not None
            else self.put_timeout
        )
        last_progress = time.monotonic()
        progressed = slot.ring.consumed()
        while True:
            if put(0.25):
                return "ok"
            self._drain_all_messages()
            if not slot.process.is_alive():
                self._fail_worker(
                    slot,
                    f"worker {slot.index} died "
                    f"(exitcode {slot.process.exitcode})",
                )
                return "rerouted"
            now = time.monotonic()
            consumed = slot.ring.consumed()
            if consumed > progressed:
                progressed = consumed
                last_progress = now
            waited = now - last_progress
            if waited > budget:
                if sheddable and self.load_shed:
                    return "shed"
                self._stall(slot, waited, "ring")
                return "rerouted"

    def _shed(self, slot: _WorkerSlot, share: np.ndarray) -> None:
        """Quarantine an overflowing share instead of blocking/failing.

        The share is neither sent nor retained, so the final synopsis
        under-counts its keys until the dead letters are replayed —
        :meth:`health` reports the run degraded while any shed chunks
        exist.
        """
        self.shed_chunks += 1
        if share.size:
            self.dead_letters.quarantine(
                slot.sent_chunks,
                share,
                f"load-shed: worker {slot.index} ring made no progress",
            )
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "load_shed_chunks_total", worker=str(slot.index)
            ).inc()
        trace_point(
            "load_shed", worker=slot.index, items=int(share.shape[0])
        )

    def _feed(self, slot: _WorkerSlot, share: np.ndarray) -> None:
        """Route one chunk share to a worker (or its failover path)."""
        if slot.status == "inlined":
            assert slot.inline_group is not None
            slot.inline_group.process_batch(share)
            return
        if slot.status == "failed":
            if share.size:
                assert self.supervisor is not None
                self.supervisor.process_batch(share)
            return
        outcome = self._put_with_failover(
            slot,
            lambda timeout: slot.ring.put(share, timeout=timeout),
            sheddable=True,
        )
        if outcome == "ok":
            slot.sent_chunks += 1
            slot.sent_items += int(share.shape[0])
            slot.retained.append(share)
            registry = current_registry()
            if registry is not None and share.size:
                registry.counter(
                    "parallel_worker_items_total", worker=str(slot.index)
                ).inc(int(share.shape[0]))
        elif outcome == "shed":
            self._shed(slot, share)
        else:  # rerouted: the slot changed tier (or was respawned)
            self._feed(slot, share)

    # -- driving -----------------------------------------------------------

    def run(
        self,
        chunks: Iterable[np.ndarray],
        *,
        checkpoint_store: CheckpointStore | None = None,
        checkpoint_every: int | None = None,
    ) -> EngineStats:
        """Ingest a chunk stream across the worker fleet and combine.

        Returns :class:`EngineStats` whose ``wall_seconds`` covers the
        whole pipeline — feeding, worker ingest, and the drain merge —
        which is the number real-vs-model speedups are measured on.
        The combined result is :attr:`supervisor`.
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_store is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_store"
            )
        self.stats = EngineStats()
        self._slots = []
        self.migrations = 0
        self.shed_chunks = 0
        self._exports_pending = {}
        shards = self.group_params["shards"]
        self._assignment = np.array(
            [s % self.workers for s in range(shards)], dtype=np.int64
        )
        self._shard_items = np.zeros(shards, dtype=np.int64)
        self.supervisor = ShardSupervisor(
            standby_hashes=self.standby_hashes,
            standby_bytes=self.standby_bytes,
            **self.group_params,
        )
        controller = None
        if self.auto_reshard and self.workers > 1:
            from repro.runtime.adaptive import ReshardController

            controller = ReshardController(
                self,
                skew_threshold=self.reshard_skew_threshold,
                min_window_items=self.reshard_min_window_items,
                cooldown_windows=self.reshard_cooldown_windows,
            )
        self.reshard_controller = controller
        registry = current_registry()
        if registry is not None:
            stamp_backend(registry)
        start = time.perf_counter()
        chunks_since_checkpoint = 0
        try:
            # Inside the try so a mid-start failure still sweeps the
            # workers and rings already launched.
            self._start_workers()
            router = self.supervisor.group
            for chunk in chunks:
                chunk = coerce_chunk(chunk, self.stats.chunks_ingested)
                owners = router.owners_of(chunk)
                if owners.size:
                    self._shard_items += np.bincount(
                        owners, minlength=shards
                    )
                if registry is not None:
                    self._record_routing_metrics(registry, owners)
                worker_of = self._assignment[owners]
                for slot in self._slots:
                    self._feed(slot, chunk[worker_of == slot.index])
                self.stats.tuples_ingested += int(chunk.shape[0])
                self.stats.chunks_ingested += 1
                chunks_since_checkpoint += 1
                self._check_liveness()
                if controller is not None:
                    controller.observe(self.stats.chunks_ingested)
                if registry is not None:
                    self._record_fleet_metrics(registry)
                if (
                    checkpoint_every is not None
                    and chunks_since_checkpoint >= checkpoint_every
                ):
                    self.checkpoint(checkpoint_store)
                    chunks_since_checkpoint = 0
            self._drain()
            if checkpoint_store is not None and chunks_since_checkpoint > 0:
                checkpoint_store.save(
                    self.supervisor,
                    chunk_index=self.stats.chunks_ingested,
                    tuples_ingested=self.stats.tuples_ingested,
                    extra=self._health_extra(),
                )
        finally:
            self._shutdown()
        self.stats.wall_seconds = time.perf_counter() - start
        if registry is not None:
            registry.gauge("engine_items_per_s").set(
                1000.0 * self.stats.wall_throughput_items_per_ms
            )
        return self.stats

    def _record_routing_metrics(
        self, registry: MetricsRegistry, owners: np.ndarray
    ) -> None:
        if owners.size == 0:
            return
        shares = np.bincount(owners, minlength=self.group_params["shards"])
        for index, share in enumerate(shares.tolist()):
            if share:
                registry.counter(
                    "shard_items_total", shard=str(index)
                ).inc(share)
        balanced = owners.size / self.group_params["shards"]
        registry.gauge("shard_skew").set(float(shares.max()) / balanced)
        registry.counter("engine_tuples_total").inc(int(owners.size))
        registry.counter("engine_chunks_total").inc()

    def _record_fleet_metrics(self, registry: MetricsRegistry) -> None:
        alive = 0
        for slot in self._slots:
            if slot.feeding_ring and slot.process.is_alive():
                alive += 1
                registry.gauge(
                    "parallel_ring_depth", worker=str(slot.index)
                ).set(slot.ring.depth())
        registry.gauge("parallel_workers_alive").set(alive)

    def _await_snapshots(self, target_of) -> None:
        """Block until every ring-fed worker's snapshot covers its target.

        ``target_of(slot)`` gives the chunk count the snapshot must
        reach.  Workers that die while we wait are failed over on the
        spot; a failover resets the deadline (a respawned replacement
        legitimately needs time to catch back up).  Workers making no
        progress past ``drain_timeout`` raise the typed stall path.
        """
        deadline = time.monotonic() + self.drain_timeout
        while True:
            waiting = [
                slot
                for slot in self._slots
                if slot.feeding_ring
                and slot.snapshot_chunks < target_of(slot)
            ]
            if not waiting:
                return
            self._drain_all_messages()
            failed_over = False
            for slot in waiting:
                if (
                    slot.snapshot_chunks < target_of(slot)
                    and not slot.process.is_alive()
                ):
                    self._fail_worker(
                        slot,
                        f"worker {slot.index} died "
                        f"(exitcode {slot.process.exitcode})",
                    )
                    failed_over = True
            if failed_over:
                deadline = time.monotonic() + self.drain_timeout
                continue
            if time.monotonic() > deadline:
                for slot in waiting:
                    if slot.feeding_ring:
                        self._stall(slot, self.drain_timeout, "snapshot")
                deadline = time.monotonic() + self.drain_timeout
                continue
            time.sleep(0.005)

    def _await_message(
        self, slot: _WorkerSlot, tag: str, timeout: float
    ):
        """Wait for one specific control reply from one worker.

        Other messages from the same worker are handled inline; other
        workers' pipes are kept drained (deadlock avoidance).  Returns
        the matching message, or ``None`` after failing the worker over
        (death or stall) — the caller re-examines ``slot.status`` and
        adapts.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                if slot.conn.poll(0.02):
                    message = slot.conn.recv()
                    if (
                        isinstance(message, tuple)
                        and message
                        and message[0] == tag
                    ):
                        return message
                    self._handle_message(slot, message)
                    continue
            except (EOFError, OSError):
                pass
            self._drain_all_messages(exclude=slot)
            if not slot.process.is_alive():
                self._fail_worker(
                    slot,
                    f"worker {slot.index} died "
                    f"(exitcode {slot.process.exitcode})",
                )
                return None
            if time.monotonic() > deadline:
                self._stall(slot, timeout, tag)
                return None

    def _quiesce(self) -> None:
        """Sync every ring-fed worker to its sent position.

        After this returns, every live worker's accepted snapshot
        covers exactly the chunks the parent has sent it and all
        retained tails are empty — the precondition for both
        checkpointing and shard migration.
        """
        for slot in self._slots:
            if slot.feeding_ring:
                try:
                    slot.conn.send(("sync", slot.sent_chunks))
                except (OSError, BrokenPipeError):
                    pass  # liveness handling in _await_snapshots
        self._await_snapshots(lambda slot: slot.sent_chunks)

    def _drain(self) -> None:
        """End of stream: EOF every ring, collect finals, merge."""
        assert self.supervisor is not None
        for slot in self._slots:
            while slot.feeding_ring:
                outcome = self._put_with_failover(
                    slot,
                    lambda timeout, slot=slot: slot.ring.close_producer(
                        timeout=timeout
                    ),
                    sheddable=False,
                )
                if outcome == "ok":
                    break
                # rerouted: a respawned slot has a fresh ring that
                # still needs its EOF; an inlined/failed slot exits
                # via feeding_ring.
        self._await_snapshots(lambda slot: slot.sent_chunks)
        registry = current_registry()
        merge_start = time.perf_counter()
        for slot in self._slots:
            if slot.status == "ok" and slot.snapshot_state is not None:
                self.supervisor.group.merge(
                    ShardedASketch.from_state(slot.snapshot_state)
                )
            elif slot.status == "inlined":
                assert slot.inline_group is not None
                self.supervisor.group.merge(slot.inline_group)
            # failed: frozen snapshot + standby were folded in at failure
        merge_elapsed = time.perf_counter() - merge_start
        if registry is not None:
            registry.histogram("parallel_merge_seconds").observe(
                merge_elapsed
            )

    # -- elastic resharding -------------------------------------------------

    def reshard(self, plan: Mapping[int, int]) -> int:
        """Move shard ownership between workers online.

        ``plan`` maps shard index → destination worker.  The protocol
        per move is quiesce → export (read-only) → install (acked with
        a full fresh snapshot) → commit (source resets its copy, acked
        with a full fresh snapshot), and is crash-consistent at every
        step:

        * source dies before export: nothing moved, ownership unchanged;
        * source dies after export, before its commit ack: the parent
          strips the exported shards from the source's snapshot before
          any fallback merge (``_exports_pending``), so the destination
          copy is the only one counted;
        * destination dies before adopting: its replacement restores a
          pre-install snapshot and the install is retried;
        * destination dies after adopting: the adoption ack *was* a
          fresh snapshot, so failover recovers the migrated shard like
          any other data.

        Shards currently on a ``failed`` worker cannot move (their
        exact state is gone); moves targeting a failed worker are
        rejected.  Returns the number of shards actually moved.
        """
        if self.supervisor is None or not self._slots:
            raise ConfigurationError(
                "reshard requires a running fleet (call it during run(), "
                "e.g. from the chunk generator or the reshard controller)"
            )
        shards = self.group_params["shards"]
        moves: dict[int, tuple[int, int]] = {}
        for shard, destination in plan.items():
            shard = int(shard)
            destination = int(destination)
            if not 0 <= shard < shards:
                raise ConfigurationError(
                    f"shard {shard} out of range for {shards} shards"
                )
            if not 0 <= destination < self.workers:
                raise ConfigurationError(
                    f"worker {destination} out of range for "
                    f"{self.workers} workers"
                )
            source = int(self._assignment[shard])
            if source == destination:
                continue
            if self._slots[destination].status == "failed":
                raise ConfigurationError(
                    f"cannot move shard {shard} to failed worker "
                    f"{destination}"
                )
            moves[shard] = (source, destination)
        if not moves:
            return 0
        self._quiesce()
        by_source: dict[int, list[int]] = {}
        for shard, (source, _) in moves.items():
            by_source.setdefault(source, []).append(shard)
        moved = 0
        registry = current_registry()
        for source, shard_list in sorted(by_source.items()):
            source_slot = self._slots[source]
            states = self._export_shards(source_slot, shard_list)
            if states is None:
                continue  # source unusable; ownership unchanged
            self._exports_pending[source] = set(states)
            try:
                installed: list[int] = []
                for shard in sorted(states):
                    destination = moves[shard][1]
                    self._install_shard(
                        self._slots[destination], shard, states[shard]
                    )
                    self._assignment[shard] = destination
                    installed.append(shard)
                    moved += 1
                    self.migrations += 1
                    if registry is not None:
                        registry.counter(
                            "reshard_migrations_total", shard=str(shard)
                        ).inc()
                    trace_point(
                        "reshard_migration",
                        shard=shard,
                        source=source,
                        destination=destination,
                    )
                self._commit_export(source_slot, installed)
            finally:
                self._exports_pending.pop(source, None)
        return moved

    def _export_shards(
        self, slot: _WorkerSlot, shard_list: list[int]
    ) -> dict[int, SynopsisState] | None:
        """Phase one: read the moving shards' states off their owner.

        Read-only — the owner's copies are reset only at commit.
        Returns ``None`` when the owner is terminally failed (its exact
        shard state is gone; the move is skipped).
        """
        def from_inline() -> dict[int, SynopsisState]:
            assert slot.inline_group is not None
            inline_shards = slot.inline_group.shards
            return {s: inline_shards[s].state() for s in shard_list}

        for _ in range(3):
            if slot.status == "inlined":
                return from_inline()
            if slot.status == "failed":
                return None
            try:
                slot.conn.send(("migrate_out", list(shard_list)))
            except (OSError, BrokenPipeError):
                pass
            reply = self._await_message(slot, "migrated", self.drain_timeout)
            if reply is None:
                continue  # slot changed tier or respawned; adapt
            _, _, states, digest = reply
            states = {int(s): state for s, state in states.items()}
            if _states_digest(states) != digest:
                continue  # corrupted in flight; ask again
            return states
        # Retries exhausted: force the worker off the ring tier so the
        # export can come from its recovered state instead.
        self._stall(slot, self.drain_timeout, "migrate_out",
                    allow_respawn=False)
        if slot.status == "inlined":
            return from_inline()
        return None

    def _install_shard(
        self, slot: _WorkerSlot, shard: int, state: SynopsisState
    ) -> None:
        """Phase two: hand one shard's state to its new owner.

        Adapts to whatever tier the destination is on (or falls to
        mid-install): a ring worker adopts via ``migrate_in`` and acks
        with a fresh snapshot; an inlined worker installs in-parent; a
        worker that failed mid-install has the state merged into the
        combined group and the shard marked failed — the data is never
        dropped.
        """
        assert self.supervisor is not None
        while True:
            if slot.status == "inlined":
                assert slot.inline_group is not None
                slot.inline_group.install_shard(shard, state)
                return
            if slot.status == "failed":
                carrier = ShardedASketch(**self.group_params)
                carrier.install_shard(shard, state)
                self.supervisor.group.merge(carrier)
                self.supervisor.fail_shard(
                    shard,
                    f"migrated to worker {slot.index} after its failure",
                )
                return
            try:
                slot.conn.send(("migrate_in", {int(shard): state}))
            except (OSError, BrokenPipeError):
                pass
            reply = self._await_message(slot, "adopted", self.drain_timeout)
            if reply is None:
                # Destination died or stalled mid-install.  If it never
                # adopted, its replacement restores a pre-install
                # snapshot and the retry installs cleanly; if it had
                # adopted but the ack was lost, the replacement's
                # restored snapshot predates the install too (the ack
                # IS the post-install snapshot), so the retry cannot
                # double-install.
                continue
            self._handle_message(slot, reply)
            return

    def _commit_export(
        self, slot: _WorkerSlot, shard_list: list[int]
    ) -> None:
        """Phase three: the old owner resets its copies of moved shards.

        Until the commit ack (a fresh post-reset snapshot) is accepted,
        ``_exports_pending`` keeps the moved shards stripped from any
        failover use of the old owner's state.
        """
        if not shard_list:
            return
        for _ in range(3):
            if slot.status == "failed":
                return  # snapshot was stripped at failover
            if slot.status == "inlined":
                assert slot.inline_group is not None
                for shard in shard_list:
                    slot.inline_group.export_shard(shard)
                return
            try:
                slot.conn.send(("migrate_commit", list(shard_list)))
            except (OSError, BrokenPipeError):
                pass
            reply = self._await_message(
                slot, "migrate_committed", self.drain_timeout
            )
            if reply is None:
                continue  # tier change or respawn (pre-commit state): retry
            self._handle_message(slot, reply)
            return
        # The worker still owns live copies of handed-off shards: force
        # it off the ring tier (the failover strips the pending exports).
        self._stall(slot, self.drain_timeout, "migrate_commit",
                    allow_respawn=False)
        if slot.status == "inlined":
            assert slot.inline_group is not None
            for shard in shard_list:
                slot.inline_group.export_shard(shard)

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self, store: CheckpointStore) -> dict:
        """Quiesce, snapshot every worker, save the combined state.

        The parent has stopped feeding when this runs (it is called
        between chunks), so each worker drains its ring to exactly
        ``sent_chunks`` and answers the sync request with a snapshot at
        that position; the merged clone saved to ``store`` therefore
        covers every chunk ingested so far — the same exactly-once
        replay point semantics as :class:`CheckpointStore` sequential
        checkpoints.  The journal record's ``extra`` carries the
        self-healing counters for ``cli health``.
        """
        assert self.supervisor is not None
        self._quiesce()
        clone = ShardSupervisor.from_state(self.supervisor.state())
        for slot in self._slots:
            if slot.status == "ok" and slot.snapshot_state is not None:
                clone.group.merge(
                    ShardedASketch.from_state(slot.snapshot_state)
                )
            elif slot.status == "inlined":
                assert slot.inline_group is not None
                clone.group.merge(
                    ShardedASketch.from_state(slot.inline_group.state())
                )
        return store.save(
            clone,
            chunk_index=self.stats.chunks_ingested,
            tuples_ingested=self.stats.tuples_ingested,
            extra=self._health_extra(),
        )

    # -- health -------------------------------------------------------------

    def _health_extra(self) -> dict:
        """The self-healing counters journaled with every checkpoint."""
        return {
            "worker_respawns": self.respawn_count,
            "reshard_migrations": self.migrations,
            "load_shed_chunks": self.shed_chunks,
            "worker_stalls": self.stall_count,
            "quarantined_chunks": self.quarantined_count,
            "snapshot_rejects": sum(
                slot.snapshot_rejects for slot in self._slots
            ),
            "failed_shards": (
                self.supervisor.failed_shards if self.supervisor else []
            ),
            "healing_shards": (
                self.supervisor.healing_shards if self.supervisor else []
            ),
        }

    def health(self) -> dict:
        """Whole-fleet lifecycle snapshot (JSON-safe).

        Extends :meth:`ShardSupervisor.health` with the per-worker view
        and the self-healing counters; shed or quarantined chunks
        escalate an otherwise-``ok`` fleet to ``degraded`` (data is
        sitting in a dead-letter queue, not in the synopsis).
        """
        if self.supervisor is not None:
            base = self.supervisor.health()
        else:
            base = {
                "status": "ok",
                "failed_shards": [],
                "healing_shards": [],
                "shards": [],
            }
        status = base["status"]
        if status == "ok" and (
            self.shed_chunks
            or self.quarantined_count
            or self.dead_letters.quarantined
        ):
            status = "degraded"
        return {
            **base,
            "status": status,
            "workers": self.worker_health(),
            **self._health_extra(),
        }

    def worker_health(self) -> list[dict]:
        """Per-worker liveness/progress snapshot (JSON-safe)."""
        return [
            {
                "worker": slot.index,
                "status": slot.status,
                "alive": slot.process.is_alive(),
                "pid": slot.process.pid,
                "exitcode": slot.process.exitcode,
                "sent_chunks": slot.sent_chunks,
                "sent_items": slot.sent_items,
                "snapshot_chunks": slot.snapshot_chunks,
                "shards": self.shards_of(slot.index),
                "respawns": slot.respawns,
                "stalls": slot.stalls,
                "quarantined": slot.quarantined,
                "snapshot_rejects": slot.snapshot_rejects,
                "healing": slot.heal_target is not None,
                "error": slot.error,
            }
            for slot in self._slots
        ]

    def shard_health(self) -> list[dict]:
        """Per-shard status from the combined supervisor.

        After a ``standby`` failover the dead worker's shards read
        ``failed`` here; during a respawn they read ``healing`` —
        process liveness surfaced through the same
        :meth:`ShardSupervisor.shard_health` view sequential
        deployments use.
        """
        if self.supervisor is None:
            return []
        return self.supervisor.shard_health()


def parallel_ingest(
    chunks: Iterable[np.ndarray],
    workers: int,
    **params: Any,
) -> tuple[ShardSupervisor, EngineStats]:
    """One-shot convenience: run a fleet over ``chunks``, return result.

    ``params`` are :class:`ParallelIngestRuntime` keyword arguments.
    Returns the combined :class:`ShardSupervisor` (queryable, mergeable,
    persistable) and the run's :class:`EngineStats`.
    """
    runtime = ParallelIngestRuntime(workers, **params)
    stats = runtime.run(chunks)
    assert runtime.supervisor is not None
    return runtime.supervisor, stats
