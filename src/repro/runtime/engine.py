"""Ingestion engine with periodic consumers over a synopsis.

The engine is synopsis-agnostic: anything with ``process_stream`` works
(ASketch, plain sketches, Space Saving, a sharded group).  Synopses that
also expose a vectorised ``process_batch`` (ASketch, ShardedASketch) are
driven through it by default — each chunk becomes one batched ingest
call instead of a per-item Python loop.  Consumers are callbacks fired
every ``period`` ingested tuples — the "continuous query" pattern of the
paper's application scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

import numpy as np

from repro.errors import ConfigurationError, PoisonChunkError
from repro.kernels import stamp_backend
from repro.obs.registry import current_registry
from repro.obs.trace import current_tracer, trace_span


def coerce_chunk(
    chunk,
    chunk_index: int,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """Validate one ingest chunk and return it as a 1-D ``int64`` array.

    The synopses model integer-keyed turnstile streams, so anything a
    lossy ``np.asarray(chunk, dtype=np.int64)`` would silently mangle is
    rejected as poison instead: float keys (fractional values truncate,
    NaN/inf coerce to garbage), object/string dtypes, boolean payloads,
    and non-1-D shapes.  When per-key ``counts`` accompany the chunk
    they must be integral and non-negative — negative counts belong to
    the strict-turnstile *deletion* API, not bulk ingest.

    Raises :class:`~repro.errors.PoisonChunkError` carrying
    ``chunk_index`` so callers can quarantine the exact offender.
    """
    array = np.asarray(chunk)
    if array.dtype == object:
        raise PoisonChunkError(
            "object dtype (mixed or non-numeric keys)", chunk_index=chunk_index
        )
    if not np.issubdtype(array.dtype, np.integer):
        detail = f"dtype {array.dtype} is not an integer type"
        if np.issubdtype(array.dtype, np.floating):
            bad = "NaN keys" if np.isnan(array).any() else "fractional keys"
            detail = f"float keys (coercion would truncate; found {bad})"
        raise PoisonChunkError(detail, chunk_index=chunk_index)
    if array.ndim != 1:
        raise PoisonChunkError(
            f"expected a 1-D key array, got shape {array.shape}",
            chunk_index=chunk_index,
        )
    if counts is not None:
        counts = np.asarray(counts)
        if counts.dtype == object or not np.issubdtype(counts.dtype, np.integer):
            raise PoisonChunkError(
                f"counts dtype {counts.dtype} is not an integer type",
                chunk_index=chunk_index,
            )
        if counts.ndim != 1 or counts.shape[0] != array.shape[0]:
            raise PoisonChunkError(
                f"counts shape {counts.shape} does not match "
                f"keys shape {array.shape}",
                chunk_index=chunk_index,
            )
        if (counts < 0).any():
            raise PoisonChunkError(
                "negative counts outside the strict-turnstile model",
                chunk_index=chunk_index,
            )
    return np.ascontiguousarray(array, dtype=np.int64)


class SupportsIngest(Protocol):
    """Anything the engine can drive."""

    def process_stream(self, keys: np.ndarray) -> None: ...


class SupportsBatchIngest(Protocol):
    """A synopsis with the vectorised chunk path (ASketch and friends)."""

    def process_batch(
        self, keys: np.ndarray, counts: np.ndarray | None = None
    ) -> None: ...


@dataclass
class EngineStats:
    """Running ingestion statistics.

    ``wall_seconds`` clocks synopsis ingest calls only;
    ``consumer_seconds`` separately clocks time spent inside consumer
    callbacks, so slow consumers no longer hide inside an unmetered gap.
    """

    tuples_ingested: int = 0
    chunks_ingested: int = 0
    wall_seconds: float = 0.0
    consumer_seconds: float = 0.0
    consumer_firings: int = 0

    @property
    def wall_throughput_items_per_ms(self) -> float:
        """Ingest throughput in items/ms over **ingest-only** wall time.

        Consumer callback time (``consumer_seconds``) is excluded — this
        measures how fast the synopsis absorbs tuples, not how fast the
        whole pipeline (ingest + continuous queries) turns around.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.tuples_ingested / self.wall_seconds / 1000.0


@dataclass
class _Consumer:
    name: str
    period: int
    callback: Callable[[int], None]
    next_due: int = field(init=False)

    def __post_init__(self) -> None:
        self.next_due = self.period


class StreamEngine:
    """Drive a synopsis from a chunked source with periodic consumers.

    Parameters
    ----------
    synopsis:
        The summary to feed (ASketch, a sketch, ShardedASketch, ...).
    batched:
        Ingest mode.  ``None`` (default) uses the synopsis's vectorised
        ``process_batch`` when it has one and falls back to
        ``process_stream`` otherwise; ``True`` requires ``process_batch``
        (raising :class:`ConfigurationError` if absent); ``False`` forces
        the scalar per-item path — useful when per-item exchange timing
        must match a scalar reference run exactly (the batched path
        reorders exchanges at chunk granularity, see
        :meth:`repro.core.asketch.ASketch.process_batch`).
    """

    def __init__(
        self, synopsis: SupportsIngest, batched: bool | None = None
    ) -> None:
        self.synopsis = synopsis
        process_batch = getattr(synopsis, "process_batch", None)
        if batched and process_batch is None:
            raise ConfigurationError(
                f"{type(synopsis).__name__} has no process_batch; "
                "use batched=False or a batch-capable synopsis"
            )
        self.batched = (
            process_batch is not None if batched is None else bool(batched)
        )
        self._ingest = process_batch if self.batched else synopsis.process_stream
        self.stats = EngineStats()
        self._consumers: list[_Consumer] = []

    def every(
        self, period: int, callback: Callable[[int], None], name: str = ""
    ) -> None:
        """Register ``callback(tuples_so_far)`` to fire every ``period``
        ingested tuples (aligned to chunk boundaries)."""
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self._consumers.append(
            _Consumer(name=name or f"consumer-{len(self._consumers)}",
                      period=period, callback=callback)
        )

    def run(self, chunks: Iterable[np.ndarray]) -> EngineStats:
        """Ingest every chunk, firing due consumers between chunks.

        Each chunk is validated through :func:`coerce_chunk` before it
        reaches the synopsis; malformed payloads (float/object dtypes,
        NaN keys, wrong shape) raise
        :class:`~repro.errors.PoisonChunkError` carrying the offending
        chunk's index instead of being silently truncated to ``int64``.

        With a metrics registry installed (:mod:`repro.obs`), every
        chunk records engine-level counters (tuples, chunks, per-chunk
        latency, running items/s) and, with a trace sink installed, an
        ``ingest`` span; the synopsis state is unaffected either way.
        """
        ingest = self._ingest
        registry = current_registry()
        if registry is not None:
            # Which compute backend served this run — every perf number
            # recorded below is meaningless without it.
            stamp_backend(registry)
        traced = current_tracer() is not None
        for chunk in chunks:
            chunk_index = self.stats.chunks_ingested
            chunk = coerce_chunk(chunk, chunk_index)
            n_items = int(chunk.shape[0])
            if traced:
                with trace_span("ingest", chunk_index=chunk_index,
                                items=n_items):
                    start = time.perf_counter()
                    ingest(chunk)
                    elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                ingest(chunk)
                elapsed = time.perf_counter() - start
            self.stats.wall_seconds += elapsed
            self.stats.tuples_ingested += n_items
            self.stats.chunks_ingested += 1
            if registry is not None:
                registry.counter("engine_tuples_total").inc(n_items)
                registry.counter("engine_chunks_total").inc()
                registry.histogram("engine_chunk_seconds").observe(elapsed)
                registry.gauge("engine_items_per_s").set(
                    1000.0 * self.stats.wall_throughput_items_per_ms
                )
            self._fire_due_consumers()
        return self.stats

    def _fire_due_consumers(self) -> None:
        if not self._consumers:
            return
        position = self.stats.tuples_ingested
        fired_before = self.stats.consumer_firings
        start = time.perf_counter()
        for consumer in self._consumers:
            while consumer.next_due <= position:
                consumer.callback(position)
                consumer.next_due += consumer.period
                self.stats.consumer_firings += 1
        self.stats.consumer_seconds += time.perf_counter() - start
        registry = current_registry()
        if registry is not None:
            fired = self.stats.consumer_firings - fired_before
            if fired:
                registry.counter("engine_consumer_firings_total").inc(fired)


class TopKBoard:
    """A consumer keeping the history of periodic top-k snapshots."""

    def __init__(self, synopsis, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._synopsis = synopsis
        self.k = k
        #: (tuples_ingested, top-k list) per firing.
        self.snapshots: list[tuple[int, list[tuple[int, int]]]] = []

    def __call__(self, position: int) -> None:
        self.snapshots.append((position, self._synopsis.top_k(self.k)))

    @property
    def latest(self) -> list[tuple[int, int]]:
        """The most recent snapshot (empty before the first firing)."""
        if not self.snapshots:
            return []
        return self.snapshots[-1][1]


class ThresholdAlert:
    """A consumer raising alerts for keys crossing a frequency threshold.

    Each key alerts at most once (the load-balancer / DDoS pattern:
    flag, then hand off to a slow path).
    """

    def __init__(self, synopsis, threshold: int) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        self._synopsis = synopsis
        self.threshold = threshold
        #: (tuples_ingested, key, estimate) per alert, in firing order.
        self.alerts: list[tuple[int, int, int]] = []
        self._alerted: set[int] = set()

    def __call__(self, position: int) -> None:
        for key, estimate in self._synopsis.heavy_hitters(self.threshold):
            if key not in self._alerted:
                self._alerted.add(key)
                self.alerts.append((position, key, estimate))

    @property
    def alerted_keys(self) -> set[int]:
        """Keys that have alerted so far (each alerts at most once)."""
        return set(self._alerted)
