"""Fault-tolerant ingestion: crash recovery, retries, shard degradation.

The paper's application scenarios — continuous top-k boards, DDoS
threshold alerts — only hold up in production if the synopsis survives
process crashes and bad input without losing or corrupting counts.
This module wraps :class:`~repro.runtime.engine.StreamEngine` with the
reliability layer a long-running collector needs:

* **Exact crash recovery** — :class:`ResilientEngine` checkpoints the
  synopsis every ``checkpoint_every`` chunks through the PR-2 state
  protocol.  Writes are atomic (tmp + fsync + rename, see
  :func:`repro.persistence.save_synopsis`), generations rotate, and a
  chunk-position journal records how much of the source each checkpoint
  covers.  :meth:`ResilientEngine.resume` restores the newest valid
  generation (falling back a generation when the latest is corrupt) and
  replays exactly the un-checkpointed suffix, so the recovered synopsis
  is *bit-identical* — equal :meth:`state` — to an uninterrupted run.
* **Deterministic fault injection** — :class:`FaultPlan` describes
  crashes at chunk boundaries, transient source errors, poison chunks,
  checkpoint corruption, and shard failures, all seeded, so the
  recovery test suite can prove the guarantees above rather than hope
  for them.
* **Resilient sources** — :class:`RetryingSource` retries transient
  source failures with exponential backoff + deterministic jitter under
  per-error-class :class:`RetryPolicy` budgets, raising
  :class:`~repro.errors.RetryExhaustedError` when a budget is spent.
  Chunks that fail validation (float/NaN keys, object dtypes, negative
  counts) are quarantined in a :class:`DeadLetterQueue` instead of
  being silently coerced into the synopsis.
* **Graceful shard degradation** — :class:`ShardSupervisor` isolates a
  faulting shard of a :class:`~repro.runtime.sharding.ShardedASketch`,
  routes its keys to a standby Count-Min fallback (estimates stay
  one-sided, flagged ``degraded``), and surfaces a ``health()``
  snapshot (per-shard status, checkpoint lag, retry and quarantine
  counters) through the engine.

Replay semantics: synopsis **state** is exactly-once (the journal pins
the replay point), while consumer callbacks between the last checkpoint
and the crash fire again on replay — at-least-once, the standard
contract for side effects under checkpoint/replay recovery.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.errors import (
    ConfigurationError,
    PoisonChunkError,
    RecoveryError,
    RetryExhaustedError,
    ShardFailedError,
    StreamFormatError,
    TransientSourceError,
)
from repro.obs.registry import current_registry
from repro.obs.trace import trace_span
from repro.persistence import _fsync_directory, load_synopsis, save_synopsis
from repro.runtime.engine import EngineStats, StreamEngine, coerce_chunk
from repro.runtime.sharding import ShardedASketch
from repro.sketches.count_min import CountMinSketch
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    unpack_nested,
)


class SimulatedCrash(BaseException):
    """An injected process death (``kill -9`` at a chunk boundary).

    Deliberately **not** a :class:`~repro.errors.ReproError` — and not
    even an :class:`Exception` — so no recovery machinery or blanket
    ``except Exception`` can swallow it: a real crash gives the process
    no chance to clean up, and the harness models exactly that.  Only
    the test driving the fault plan catches it.
    """


# -- retrying sources --------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff budget for one class of transient source errors.

    ``delay_for(attempt)`` grows exponentially from ``base_delay`` by
    ``multiplier`` per attempt, capped at ``max_delay``, plus
    multiplicative jitter in ``[0, jitter)`` drawn from the caller's
    seeded RNG — deterministic for a fixed seed, decorrelated across
    retry storms.
    """

    max_retries: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Sleep duration before retry number ``attempt`` (0-based)."""
        backoff = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return backoff * (1.0 + self.jitter * rng.random())


class RetryingSource:
    """Iterator wrapper retrying transient failures with backoff.

    Wraps any chunk iterator whose ``__next__`` may raise a retryable
    error (socket hiccup, NFS stall) and can be called again afterwards
    — the contract of real transport readers.  Plain generators do
    *not* satisfy it (they close on raise); wrap the transport object,
    not a generator over it.

    ``policies`` maps exception types to :class:`RetryPolicy` budgets
    (matched by ``isinstance``, most-derived registration wins);
    :class:`~repro.errors.TransientSourceError` is always retryable
    under ``default_policy``.  Non-retryable exceptions propagate
    untouched.  When a budget is spent the last failure is chained
    beneath :class:`~repro.errors.RetryExhaustedError`.
    """

    def __init__(
        self,
        chunks: Iterable[np.ndarray] | Iterator[np.ndarray],
        *,
        policies: dict[type, RetryPolicy] | None = None,
        default_policy: RetryPolicy | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._iterator = iter(chunks)
        self._policies = dict(policies or {})
        self._default = default_policy or RetryPolicy()
        self._rng = random.Random(seed)
        self._sleep = sleep
        #: Total retry attempts made (across all chunks).
        self.retries = 0
        #: Chunks successfully delivered downstream.
        self.chunks_delivered = 0
        #: Total seconds of backoff requested (sums the sleep arguments).
        self.backoff_seconds = 0.0

    def _policy_for(self, error: Exception) -> RetryPolicy | None:
        best: tuple[int, RetryPolicy] | None = None
        for exc_type, policy in self._policies.items():
            if isinstance(error, exc_type):
                depth = len(type(error).__mro__) - len(exc_type.__mro__)
                if best is None or depth < best[0]:
                    best = (depth, policy)
        if best is not None:
            return best[1]
        if isinstance(error, TransientSourceError):
            return self._default
        return None

    def __iter__(self) -> "RetryingSource":
        """Iterator protocol: the source is its own iterator."""
        return self

    def __next__(self) -> np.ndarray:
        """Fetch the next chunk, retrying transient failures."""
        attempt = 0
        while True:
            try:
                chunk = next(self._iterator)
            except StopIteration:
                raise
            except Exception as error:
                policy = self._policy_for(error)
                if policy is None:
                    raise
                if attempt >= policy.max_retries:
                    raise RetryExhaustedError(
                        f"source failed {attempt + 1} times fetching chunk "
                        f"{self.chunks_delivered}: {error}",
                        chunk_index=self.chunks_delivered,
                        attempts=attempt + 1,
                    ) from error
                delay = policy.delay_for(attempt, self._rng)
                attempt += 1
                self.retries += 1
                self.backoff_seconds += delay
                registry = current_registry()
                if registry is not None:
                    registry.counter(
                        "source_retries_total",
                        error=type(error).__name__,
                    ).inc()
                    registry.counter(
                        "source_backoff_seconds_total"
                    ).inc(delay)
                self._sleep(delay)
            else:
                self.chunks_delivered += 1
                return chunk


# -- dead-letter quarantine --------------------------------------------------


@dataclass
class DeadLetter:
    """One quarantined chunk: where it sat in the source and why."""

    chunk_index: int
    reason: str
    payload: Any


class DeadLetterQueue:
    """Bounded quarantine for poison chunks.

    Holds up to ``capacity`` offending payloads with their source
    positions and validation failures for offline inspection; beyond
    capacity only the drop counter grows (the payloads are discarded,
    never ingested).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._letters: list[DeadLetter] = []
        #: Quarantined chunks dropped because the queue was full.
        self.dropped = 0
        #: Total chunks quarantined (kept + dropped).
        self.quarantined = 0

    def quarantine(self, chunk_index: int, payload: Any, reason: str) -> None:
        """Record one poison chunk (payload kept while capacity allows)."""
        self.quarantined += 1
        dropped = len(self._letters) >= self.capacity
        if dropped:
            self.dropped += 1
        else:
            self._letters.append(DeadLetter(chunk_index, reason, payload))
        registry = current_registry()
        if registry is not None:
            registry.counter("dlq_quarantined_total").inc()
            if dropped:
                registry.counter("dlq_dropped_total").inc()
            registry.gauge("dlq_depth").set(len(self._letters))

    @property
    def letters(self) -> list[DeadLetter]:
        """The retained dead letters, in quarantine order."""
        return list(self._letters)

    def chunk_indices(self) -> list[int]:
        """Source positions of the retained dead letters."""
        return [letter.chunk_index for letter in self._letters]

    def __len__(self) -> int:
        """Number of retained dead letters."""
        return len(self._letters)


# -- deterministic fault injection -------------------------------------------


def corrupt_file(path: str | Path, seed: int = 0, span: int = 64) -> None:
    """Deterministically flip a run of bytes in the middle of a file.

    The fault harness's model of bit rot / torn writes: ``span`` bytes
    starting at a seed-chosen offset are XORed with ``0xFF``, which
    breaks both the journal checksum and the npz container.  Corrupting
    an empty file is a no-op.
    """
    target = Path(path)
    blob = bytearray(target.read_bytes())
    if not blob:
        return
    rng = random.Random(seed)
    span = max(1, min(span, len(blob)))
    start = rng.randrange(0, len(blob) - span + 1)
    for offset in range(start, start + span):
        blob[offset] ^= 0xFF
    target.write_bytes(bytes(blob))


@dataclass
class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    All positions are 0-based source-chunk indices.  The plan is applied
    in two places: :meth:`wrap` turns a chunk iterable into a
    :class:`FaultySource` injecting *source-side* faults (transient
    errors, poison payloads), while :class:`ResilientEngine` applies the
    *engine-side* faults (crash at a chunk boundary, checkpoint
    corruption, shard failure) at the recorded positions.

    Attributes
    ----------
    seed:
        Drives every random choice (poison variant, corruption offset).
    crash_at_chunk:
        Raise :class:`SimulatedCrash` immediately before ingesting this
        chunk — exactly ``crash_at_chunk`` chunks have been ingested.
    transient_errors:
        ``{chunk_index: failures}`` — the source raises
        :class:`~repro.errors.TransientSourceError` that many times
        before successfully yielding the chunk.
    poison_chunks:
        Chunk indices whose payload is replaced with poison (float,
        NaN-bearing, or object-dtype keys, variant chosen by ``seed``).
    corrupt_checkpoint_after:
        After this many checkpoint writes (1-based), corrupt the newest
        snapshot file — exercising the fall-back-one-generation path.
    fail_shard:
        ``(chunk_index, shard_index)`` — inject a shard failure into the
        engine's :class:`ShardSupervisor` just before that chunk, so the
        shard's ingest raises and the supervisor must degrade.

    Cross-process faults (acted out *inside* the worker processes of
    :class:`~repro.runtime.parallel.ParallelIngestRuntime`; every
    position counts that worker's locally processed chunks):

    worker_crash:
        ``{worker_id: after_chunks}`` — the worker dies hard
        (``os._exit``, modelling ``kill -9``) while holding an
        unprocessed chunk.
    worker_exit:
        ``{worker_id: after_chunks}`` — the worker exits "cleanly" but
        prematurely (``sys.exit``), without sending a final snapshot.
    worker_hang:
        ``{worker_id: after_chunks}`` — the worker stops consuming its
        ring and sleeps forever: alive but stalled, the case parent-side
        stall detection (not liveness polling) must catch.
    worker_poison:
        ``{worker_id: chunk_position}`` — the worker's chunk at that
        position is replaced with a poison payload before validation,
        exercising the in-worker dead-letter quarantine path.
    worker_transient:
        ``{worker_id: {chunk_position: failures}}`` — the worker's ring
        source raises :class:`~repro.errors.TransientSourceError` that
        many times before surrendering the chunk, exercising the
        in-worker :class:`RetryingSource` path.
    corrupt_snapshot:
        ``{worker_id: snapshot_number}`` — that worker's Nth snapshot
        (1-based) is corrupted in flight; the parent must detect the
        digest mismatch, reject the snapshot, and keep the retained
        replay tail that the rejected snapshot would have pruned.
    """

    seed: int = 0
    crash_at_chunk: int | None = None
    transient_errors: dict[int, int] = field(default_factory=dict)
    poison_chunks: frozenset[int] | set[int] = field(default_factory=frozenset)
    corrupt_checkpoint_after: int | None = None
    fail_shard: tuple[int, int] | None = None
    worker_crash: dict[int, int] = field(default_factory=dict)
    worker_exit: dict[int, int] = field(default_factory=dict)
    worker_hang: dict[int, int] = field(default_factory=dict)
    worker_poison: dict[int, int] = field(default_factory=dict)
    worker_transient: dict[int, dict[int, int]] = field(default_factory=dict)
    corrupt_snapshot: dict[int, int] = field(default_factory=dict)

    def worker_faults_for(self, worker: int) -> dict[str, Any] | None:
        """The picklable fault hooks one worker process must act out.

        Returns ``None`` when this plan holds no faults for ``worker``,
        so fault-free workers pay no plumbing at all.
        """
        hooks: dict[str, Any] = {}
        if worker in self.worker_crash:
            hooks["crash_after"] = int(self.worker_crash[worker])
        if worker in self.worker_exit:
            hooks["exit_after"] = int(self.worker_exit[worker])
        if worker in self.worker_hang:
            hooks["hang_after"] = int(self.worker_hang[worker])
        if worker in self.worker_poison:
            hooks["poison_at"] = int(self.worker_poison[worker])
        if worker in self.worker_transient:
            hooks["transient"] = {
                int(k): int(v)
                for k, v in self.worker_transient[worker].items()
            }
        if worker in self.corrupt_snapshot:
            hooks["corrupt_snapshot_at"] = int(self.corrupt_snapshot[worker])
        if not hooks:
            return None
        hooks["seed"] = int(self.seed)
        return hooks

    def wrap(self, chunks: Iterable[np.ndarray]) -> "FaultySource":
        """The source-side view of this plan over a chunk iterable."""
        return FaultySource(chunks, self)

    def poison_payload(self, chunk: np.ndarray, chunk_index: int) -> Any:
        """The poison replacing ``chunk``, chosen by ``(seed, index)``."""
        rng = random.Random(self.seed * 1_000_003 + chunk_index)
        variant = rng.randrange(3)
        base = np.asarray(chunk, dtype=np.float64)
        if base.size == 0:
            base = np.zeros(1, dtype=np.float64)
        if variant == 0:  # fractional keys: int64 coercion would truncate
            return base + 0.5
        if variant == 1:  # NaN keys
            poisoned = base.copy()
            poisoned[rng.randrange(poisoned.size)] = np.nan
            return poisoned
        return [int(v) for v in base[:-1]] + ["poison"]  # object dtype


class FaultySource:
    """A chunk iterator acting out a :class:`FaultPlan`'s source faults.

    Transient failures are raised *before* the chunk is surrendered and
    the same chunk is re-offered on the next ``__next__`` call — the
    retry contract :class:`RetryingSource` expects.  Poison chunks are
    substituted at their planned positions.
    """

    def __init__(self, chunks: Iterable[np.ndarray], plan: FaultPlan) -> None:
        self._iterator = iter(chunks)
        self._plan = plan
        self._index = 0
        self._pending: Any = None
        self._has_pending = False
        self._failures_left: dict[int, int] = dict(plan.transient_errors)

    def __iter__(self) -> "FaultySource":
        """Iterator protocol: the source is its own iterator."""
        return self

    def __next__(self) -> Any:
        """Yield the next chunk, injecting planned source faults."""
        if not self._has_pending:
            self._pending = next(self._iterator)
            self._has_pending = True
        index = self._index
        remaining = self._failures_left.get(index, 0)
        if remaining > 0:
            self._failures_left[index] = remaining - 1
            raise TransientSourceError(
                f"injected transient failure fetching chunk {index} "
                f"({remaining - 1} more to come)"
            )
        chunk = self._pending
        self._pending = None
        self._has_pending = False
        self._index += 1
        if index in self._plan.poison_chunks:
            return self._plan.poison_payload(chunk, index)
        return chunk


# -- checkpoint store --------------------------------------------------------


class CheckpointStore:
    """Rotating atomic checkpoints plus a chunk-position journal.

    Layout inside ``directory``::

        gen-00000041.npz   # synopsis snapshot (atomic tmp+fsync+rename)
        journal.jsonl      # one record per checkpoint, append + fsync

    Each journal record pins a snapshot to its stream position::

        {"generation": 41, "snapshot": "gen-00000041.npz",
         "chunk_index": 96, "tuples_ingested": 480000,
         "engine_chunks": 96, "sha256": "..."}

    ``chunk_index`` counts *source* chunks fully handled (ingested or
    quarantined) when the snapshot was taken — the replay point.  The
    write order (snapshot first, then journal line) means a crash
    between the two leaves an orphan snapshot that is simply never
    referenced; a torn journal line is skipped on read.  Only the
    newest ``keep`` snapshots are retained, so recovery can always fall
    back at least one generation when the latest file is corrupt.
    """

    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, directory: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    @property
    def journal_path(self) -> Path:
        """Path of the append-only journal file."""
        return self.directory / self.JOURNAL_NAME

    def snapshot_path(self, generation: int) -> Path:
        """Path of one generation's snapshot archive."""
        return self.directory / f"gen-{generation:08d}.npz"

    def journal_records(self) -> list[dict]:
        """All parseable journal records, oldest first.

        Unparseable lines (a torn final append from a crash mid-write)
        are skipped rather than fatal.
        """
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "generation" in record:
                records.append(record)
        return records

    def last_record(self) -> dict | None:
        """The newest journal record, or None for an empty store."""
        records = self.journal_records()
        return records[-1] if records else None

    def save(
        self,
        synopsis: Any,
        *,
        chunk_index: int,
        tuples_ingested: int,
        engine_chunks: int | None = None,
        extra: dict | None = None,
    ) -> dict:
        """Checkpoint a synopsis at a stream position; returns the record.

        The snapshot is written atomically, hashed, journaled, and old
        generations beyond ``keep`` are pruned.  With a metrics
        registry installed, each save records its duration, snapshot
        bytes and journal fsync; with a trace sink installed it is
        wrapped in a ``checkpoint`` span.
        """
        records = self.journal_records()
        generation = (records[-1]["generation"] + 1) if records else 0
        snapshot = self.snapshot_path(generation)
        start = time.perf_counter()
        with trace_span("checkpoint", generation=generation,
                        chunk_index=int(chunk_index)):
            save_synopsis(synopsis, snapshot)
            blob = snapshot.read_bytes()
            digest = hashlib.sha256(blob).hexdigest()
            record = {
                "generation": generation,
                "snapshot": snapshot.name,
                "chunk_index": int(chunk_index),
                "tuples_ingested": int(tuples_ingested),
                "engine_chunks": int(
                    chunk_index if engine_chunks is None else engine_chunks
                ),
                "sha256": digest,
            }
            if extra:
                record["extra"] = extra
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            _fsync_directory(self.directory)
        elapsed = time.perf_counter() - start
        registry = current_registry()
        if registry is not None:
            registry.counter("checkpoints_total").inc()
            registry.counter("checkpoint_bytes_total").inc(len(blob))
            registry.counter("journal_fsyncs_total").inc()
            registry.histogram("checkpoint_seconds").observe(elapsed)
        self._prune(records + [record])
        return record

    def _prune(self, records: list[dict]) -> None:
        live = {record["generation"] for record in records[-self.keep :]}
        for record in records[: -self.keep]:
            if record["generation"] in live:
                continue
            try:
                self.snapshot_path(record["generation"]).unlink()
            except OSError:
                pass

    def load_latest(self) -> tuple[Any, dict] | None:
        """Restore the newest valid checkpoint, falling back on corrupt ones.

        Walks the journal newest-first; a generation whose snapshot is
        missing, fails its checksum, or fails to load is skipped and the
        previous generation is tried.  Returns ``(synopsis, record)``,
        or ``None`` when the journal is empty.  Raises
        :class:`~repro.errors.RecoveryError` when checkpoints exist but
        none is recoverable.
        """
        records = self.journal_records()
        if not records:
            return None
        failures: list[str] = []
        for record in reversed(records):
            path = self.directory / record.get("snapshot", "")
            try:
                blob = path.read_bytes()
            except OSError as exc:
                failures.append(f"gen {record['generation']}: {exc}")
                continue
            expected = record.get("sha256")
            if expected and hashlib.sha256(blob).hexdigest() != expected:
                failures.append(
                    f"gen {record['generation']}: checksum mismatch "
                    f"(corrupt snapshot {path.name})"
                )
                continue
            try:
                synopsis = load_synopsis(path)
            except (StreamFormatError, OSError, ValueError, KeyError) as exc:
                failures.append(f"gen {record['generation']}: {exc}")
                continue
            return synopsis, record
        raise RecoveryError(
            f"no recoverable checkpoint in {self.directory}: "
            + "; ".join(failures)
        )


# -- shard supervision -------------------------------------------------------


class ShardSupervisor:
    """Degrade a :class:`ShardedASketch` gracefully under shard failure.

    Wraps a shard group with per-shard fault isolation: an exception
    escaping one shard's ingest marks that shard ``failed``, freezes its
    pre-failure counters (still queryable), and routes all subsequent
    traffic for its key range to a standby Count-Min sketch.  Point
    estimates for a degraded shard are ``frozen + standby`` — both
    one-sided over their respective sub-streams, so the sum stays a
    one-sided over-estimate of the true count; the group keeps
    answering queries and **no shard failure ever escapes ingest**.

    Degradation trade-off: the failed shard's *filter* stops adapting,
    so :meth:`top_k` / :meth:`heavy_hitters` reflect only counts
    absorbed before the failure for that partition (point queries stay
    fully covered via the standby).

    Constructible three ways: wrap an existing group
    (``ShardSupervisor(group)``), build the group in place
    (``ShardSupervisor(shards=4, total_bytes=...)``), or restore from a
    checkpoint (:meth:`from_state` — supervisors are first-class
    synopses, registered as kind ``"shard-supervisor"``).
    """

    SYNOPSIS_KIND = "shard-supervisor"

    #: Shard lifecycle states surfaced through :meth:`shard_health`.
    #: ``ok → healing → ok`` is the transient-recovery loop (a worker
    #: respawn in flight); ``failed`` is the terminal standby tier.
    STATUS_OK = "ok"
    STATUS_HEALING = "healing"
    STATUS_FAILED = "failed"

    def __init__(
        self,
        group: ShardedASketch | None = None,
        *,
        standby_hashes: int = 4,
        standby_bytes: int | None = None,
        **group_params: Any,
    ) -> None:
        if group is None:
            if not group_params:
                raise ConfigurationError(
                    "pass a ShardedASketch or its construction parameters"
                )
            group = ShardedASketch(**group_params)
        elif group_params:
            raise ConfigurationError(
                "pass either a group instance or construction parameters, "
                "not both"
            )
        self.group = group
        if standby_hashes < 1:
            raise ConfigurationError(
                f"standby_hashes must be >= 1, got {standby_hashes}"
            )
        self.standby_hashes = int(standby_hashes)
        self.standby_bytes = int(
            group.total_bytes if standby_bytes is None else standby_bytes
        )
        self._status = [self.STATUS_OK] * len(group)
        self._errors: dict[int, str] = {}
        self._forced: set[int] = set()
        self._standbys: dict[int, CountMinSketch] = {}
        self._standby_tuples: dict[int, int] = {}

    # -- failure bookkeeping ----------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.group):
            raise ConfigurationError(
                f"shard index {index} out of range for {len(self.group)} shards"
            )

    def inject_failure(self, index: int) -> None:
        """Arm a fault: the shard's next ingest raises ``ShardFailedError``.

        The failure flows through the regular isolation path (catch,
        mark, reroute), so fault-injection tests exercise exactly the
        code real faults would.
        """
        self._check_index(index)
        self._forced.add(index)

    def fail_shard(self, index: int, reason: str) -> None:
        """Mark a shard failed from outside the ingest path.

        The cross-process hook: when a shard lives in a *worker process*
        (see :mod:`repro.runtime.parallel`) the failure signal is the
        worker's death, observed by the parent — there is no in-band
        exception for :meth:`process_batch` to catch.  The shard is
        marked exactly as an ingest-path failure would mark it; all
        subsequent traffic for its key range goes to the standby.
        """
        self._check_index(index)
        self._mark_failed(index, ShardFailedError(reason))

    def begin_healing(self, index: int, reason: str) -> None:
        """Mark a shard as transiently degraded with recovery in flight.

        The respawn hook: the shard's worker died but a replacement is
        being restored from snapshot + replay.  Unlike :meth:`fail_shard`
        the shard's data is *not* lost — it lives in the parent's
        retained tail — so the shard keeps its regular (non-standby)
        ingest/query routing and only the health view degrades.  A
        shard already ``failed`` stays failed (healing never un-fails).
        """
        self._check_index(index)
        if self._status[index] == self.STATUS_FAILED:
            return
        self._status[index] = self.STATUS_HEALING
        self._errors[index] = reason
        self._record_transition(index, self.STATUS_HEALING)

    def heal_shard(self, index: int) -> None:
        """Complete a healing cycle: the shard is healthy again.

        Only meaningful from ``healing`` (a ``failed`` shard cannot be
        healed — its exact state is gone; it stays on the standby tier).
        """
        self._check_index(index)
        if self._status[index] != self.STATUS_HEALING:
            return
        self._status[index] = self.STATUS_OK
        self._errors.pop(index, None)
        self._record_transition(index, self.STATUS_OK)

    def _record_transition(self, index: int, to_status: str) -> None:
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "shard_health_transitions_total",
                shard=str(index),
                to=to_status,
            ).inc()
            registry.gauge("shards_failed").set(len(self.failed_shards))
            registry.gauge("shards_healing").set(len(self.healing_shards))

    def _mark_failed(self, index: int, error: Exception) -> None:
        self._status[index] = self.STATUS_FAILED
        self._errors[index] = f"{type(error).__name__}: {error}"
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "shard_failures_total",
                shard=str(index),
                reason=type(error).__name__,
            ).inc()
        self._record_transition(index, self.STATUS_FAILED)

    @property
    def degraded(self) -> bool:
        """Whether any shard is off its healthy state (incl. healing)."""
        return any(status != self.STATUS_OK for status in self._status)

    @property
    def failed_shards(self) -> list[int]:
        """Indices of shards terminally running on their standby."""
        return [
            index
            for index, status in enumerate(self._status)
            if status == self.STATUS_FAILED
        ]

    @property
    def healing_shards(self) -> list[int]:
        """Indices of shards with a recovery (respawn/replay) in flight."""
        return [
            index
            for index, status in enumerate(self._status)
            if status == self.STATUS_HEALING
        ]

    def _standby_for(self, index: int) -> CountMinSketch:
        standby = self._standbys.get(index)
        if standby is None:
            standby = CountMinSketch(
                self.standby_hashes,
                total_bytes=self.standby_bytes,
                seed=self.group.seed * 7919 + index,
            )
            self._standbys[index] = standby
            self._standby_tuples.setdefault(index, 0)
        return standby

    def shard_health(self) -> list[dict]:
        """Per-shard status snapshot (JSON-safe)."""
        return [
            {
                "shard": index,
                "status": status,
                "error": self._errors.get(index),
                "standby_tuples": self._standby_tuples.get(index, 0),
            }
            for index, status in enumerate(self._status)
        ]

    def health(self) -> dict:
        """Whole-group lifecycle snapshot (JSON-safe).

        ``status`` walks the degradation ladder: ``"ok"`` (every shard
        healthy), ``"healing"`` (recoveries in flight, none terminal —
        exact state will be restored), ``"degraded"`` (at least one
        shard is on its one-sided standby tier for good).
        """
        if self.failed_shards:
            status = "degraded"
        elif self.healing_shards:
            status = "healing"
        else:
            status = "ok"
        return {
            "status": status,
            "failed_shards": self.failed_shards,
            "healing_shards": self.healing_shards,
            "shards": self.shard_health(),
        }

    # -- ingestion ---------------------------------------------------------

    def _ingest_share(
        self,
        index: int,
        shard: Any,
        share: np.ndarray,
        share_counts: np.ndarray | None,
        scalar: bool,
    ) -> None:
        if self._status[index] != self.STATUS_FAILED:
            try:
                if index in self._forced:
                    raise ShardFailedError(
                        f"injected failure on shard {index}"
                    )
                if scalar and share_counts is None:
                    shard.process_stream(share)
                else:
                    shard.process_batch(share, share_counts)
                return
            except Exception as error:  # isolate: degrade, never propagate
                self._mark_failed(index, error)
        standby = self._standby_for(index)
        if share_counts is None:
            standby.update_batch(share)
            self._standby_tuples[index] += int(share.shape[0])
        else:
            standby.update_batch_weighted(share, share_counts)
            self._standby_tuples[index] += int(share_counts.sum())

    def process_batch(
        self, keys: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Partition a chunk by owner and batch-ingest with isolation.

        Healthy shards get their shares through the group's vectorised
        path; a share whose shard raises is rerouted to that shard's
        standby (including the failing share itself — the forced raise
        happens before any counter moves, so nothing is half-applied).
        """
        keys = np.asarray(keys, dtype=np.int64)
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
        owners = self.group.owners_of(keys)
        for index, shard in enumerate(self.group.shards):
            mask = owners == index
            if not mask.any():
                continue
            self._ingest_share(
                index,
                shard,
                keys[mask],
                None if counts is None else counts[mask],
                scalar=False,
            )

    def process_stream(self, keys: np.ndarray) -> None:
        """Scalar-path ingest with the same per-shard isolation."""
        keys = np.asarray(keys, dtype=np.int64)
        owners = self.group.owners_of(keys)
        for index, shard in enumerate(self.group.shards):
            mask = owners == index
            if not mask.any():
                continue
            self._ingest_share(index, shard, keys[mask], None, scalar=True)

    def update(self, key: int, amount: int = 1) -> int:
        """Route one weighted update, failing over to the standby."""
        index = self.group.shard_of(key)
        shard = self.group.shards[index]
        if self._status[index] != self.STATUS_FAILED:
            try:
                if index in self._forced:
                    raise ShardFailedError(f"injected failure on shard {index}")
                return int(shard.update(key, amount))
            except Exception as error:
                self._mark_failed(index, error)
        self._standby_for(index).update(key, amount)
        self._standby_tuples[index] += int(amount)
        return self.query(key)

    # -- queries -----------------------------------------------------------

    def query(self, key: int) -> int:
        """One-sided point estimate; failed shards answer frozen+standby."""
        index = self.group.shard_of(key)
        if self._status[index] != self.STATUS_FAILED:
            return self.group.query(key)
        try:
            frozen = int(self.group.shards[index].query(key))
        except Exception:  # shard too corrupt even to read: standby only
            frozen = 0
        standby = self._standbys.get(index)
        return frozen + (int(standby.estimate(key)) if standby else 0)

    estimate = query

    def query_batch(self, keys: Iterable[int]) -> list[int]:
        """Vectorised owner-partitioned point queries with degradation."""
        if not isinstance(keys, np.ndarray):
            keys = list(keys)
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return []
        if not self.failed_shards:
            return self.group.query_batch(keys)
        owners = self.group.owners_of(keys)
        answers = np.zeros(keys.shape[0], dtype=np.int64)
        for index, shard in enumerate(self.group.shards):
            mask = owners == index
            if not mask.any():
                continue
            share = keys[mask]
            try:
                answers[mask] = shard.query_batch(share)
            except Exception:
                answers[mask] = 0
            if self._status[index] == self.STATUS_FAILED:
                standby = self._standbys.get(index)
                if standby is not None:
                    answers[mask] += np.asarray(
                        standby.estimate_batch(share), dtype=np.int64
                    )
        return [int(v) for v in answers]

    estimate_batch = query_batch

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """Global top-k via the shard filters (see degradation note above)."""
        return self.group.top_k(k)

    def heavy_hitters(self, threshold: int) -> list[tuple[int, int]]:
        """Global threshold query via the shard filters."""
        return self.group.heavy_hitters(threshold)

    # -- stats -------------------------------------------------------------

    @property
    def total_mass(self) -> int:
        """Aggregate stream mass: group plus all standby traffic."""
        return int(self.group.total_mass) + sum(
            standby.total_count() for standby in self._standbys.values()
        )

    @property
    def size_bytes(self) -> int:
        """Logical bytes: the group plus any instantiated standbys."""
        return int(self.group.size_bytes) + sum(
            standby.size_bytes for standby in self._standbys.values()
        )

    def __len__(self) -> int:
        """Number of shards supervised."""
        return len(self.group)

    # -- synopsis protocol -------------------------------------------------

    def state(self) -> SynopsisState:
        """Supervisor parameters, group state, standbys, and statuses."""
        arrays: dict[str, np.ndarray] = {}
        group_state = self.group.state()
        arrays.update(prefix_arrays("group", group_state.arrays))
        standbys_meta: dict[str, Any] = {}
        for index, standby in sorted(self._standbys.items()):
            standby_state = standby.state()
            arrays.update(
                prefix_arrays(f"standby{index}", standby_state.arrays)
            )
            standbys_meta[str(index)] = pack_nested(standby_state)
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "standby_hashes": self.standby_hashes,
                "standby_bytes": self.standby_bytes,
            },
            arrays=arrays,
            extra={
                "group": pack_nested(group_state),
                "standbys": standbys_meta,
                "status": list(self._status),
                "errors": {str(i): msg for i, msg in self._errors.items()},
                "forced": sorted(self._forced),
                "standby_tuples": {
                    str(i): n for i, n in self._standby_tuples.items()
                },
            },
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "ShardSupervisor":
        """Rebuild a supervisor (group, standbys, statuses) from state."""
        group = ShardedASketch.from_state(
            unpack_nested(state.extra["group"], state.arrays, "group")
        )
        supervisor = cls(
            group,
            standby_hashes=int(state.params["standby_hashes"]),
            standby_bytes=int(state.params["standby_bytes"]),
        )
        supervisor._status = list(state.extra.get("status", supervisor._status))
        supervisor._errors = {
            int(i): msg for i, msg in state.extra.get("errors", {}).items()
        }
        supervisor._forced = {int(i) for i in state.extra.get("forced", [])}
        supervisor._standby_tuples = {
            int(i): int(n)
            for i, n in state.extra.get("standby_tuples", {}).items()
        }
        for index_str, metadata in state.extra.get("standbys", {}).items():
            supervisor._standbys[int(index_str)] = CountMinSketch.from_state(
                unpack_nested(metadata, state.arrays, f"standby{index_str}")
            )
        return supervisor

    def merge(self, other: "ShardSupervisor") -> None:
        """Shard-wise merge of two supervised groups with equal layout.

        Groups merge through :meth:`ShardedASketch.merge`; standbys
        merge cell-wise where both sides have one, are adopted where
        only ``other`` does.  A shard failed on either side is failed in
        the result.  ``other`` is consumed.
        """
        if not isinstance(other, ShardSupervisor):
            raise ConfigurationError(
                f"cannot merge ShardSupervisor with {type(other).__name__}"
            )
        if (
            self.standby_hashes != other.standby_hashes
            or self.standby_bytes != other.standby_bytes
        ):
            raise ConfigurationError(
                "supervisors must share standby sizing to merge"
            )
        self.group.merge(other.group)
        for index, theirs in other._standbys.items():
            mine = self._standbys.get(index)
            if mine is None:
                self._standbys[index] = theirs
            else:
                mine.merge(theirs)
            self._standby_tuples[index] = self._standby_tuples.get(
                index, 0
            ) + other._standby_tuples.get(index, 0)
        for index, status in enumerate(other._status):
            if status == self.STATUS_FAILED or (
                status == self.STATUS_HEALING
                and self._status[index] == self.STATUS_OK
            ):
                # failed wins over everything; healing only over ok.
                self._status[index] = status
                self._errors.setdefault(
                    index, other._errors.get(index, "failed in merged peer")
                )
        self._forced |= other._forced


# -- the resilient engine ----------------------------------------------------


class ResilientEngine:
    """Crash-safe, fault-isolating wrapper around :class:`StreamEngine`.

    Composes the pieces of this module into one ingestion runtime:

    * the source is wrapped in a :class:`RetryingSource` (transient
      failures retried with backoff, budgets per error class);
    * every chunk is validated before it can touch the synopsis; poison
      chunks land in :attr:`dead_letters` and ingestion continues;
    * with a ``checkpoint_dir``, the synopsis is checkpointed atomically
      every ``checkpoint_every`` chunks (plus once at end of stream) and
      :meth:`resume` restores the newest valid generation and replays
      exactly the un-checkpointed source suffix — the recovered synopsis
      state is identical to an uninterrupted run's;
    * a :class:`ShardSupervisor` synopsis degrades per shard instead of
      failing, and :meth:`health` surfaces the whole picture.

    Consumers registered via :meth:`every` fire at absolute stream
    positions, so a consumer due at position ``p`` fires in the resumed
    run iff it had not already fired before the restored checkpoint
    (callbacks between checkpoint and crash replay — at-least-once).
    """

    def __init__(
        self,
        synopsis: Any = None,
        *,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 64,
        keep_generations: int = 2,
        batched: bool | None = None,
        retry_policies: dict[type, RetryPolicy] | None = None,
        default_retry_policy: RetryPolicy | None = None,
        retry_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        dead_letter_capacity: int = 64,
    ) -> None:
        if synopsis is None and checkpoint_dir is None:
            raise ConfigurationError(
                "provide a synopsis, a checkpoint_dir to resume from, or both"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.synopsis = synopsis
        self.checkpoint_every = int(checkpoint_every)
        self.batched = batched
        self._store = (
            CheckpointStore(checkpoint_dir, keep=keep_generations)
            if checkpoint_dir is not None
            else None
        )
        self._retry_policies = dict(retry_policies or {})
        self._default_retry_policy = default_retry_policy
        self._retry_seed = int(retry_seed)
        self._sleep = sleep
        #: Quarantine of rejected chunks (see :class:`DeadLetterQueue`).
        self.dead_letters = DeadLetterQueue(capacity=dead_letter_capacity)
        self._consumer_specs: list[tuple[int, Callable[[int], None], str]] = []
        self._engine: StreamEngine | None = None
        self._source: RetryingSource | None = None
        self._last_record: dict | None = None
        self._chunks_since_checkpoint = 0
        self._checkpoints_written = 0
        self._source_chunks_seen = 0

    @property
    def store(self) -> CheckpointStore | None:
        """The checkpoint store (None when running checkpoint-free)."""
        return self._store

    @property
    def stats(self) -> EngineStats:
        """Ingestion statistics of the current / most recent drive."""
        return self._engine.stats if self._engine is not None else EngineStats()

    def every(
        self, period: int, callback: Callable[[int], None], name: str = ""
    ) -> None:
        """Register ``callback(tuples_so_far)`` every ``period`` tuples.

        Consumers survive :meth:`resume`: they are re-registered on the
        rebuilt inner engine with their schedule fast-forwarded past the
        restored position.
        """
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self._consumer_specs.append((period, callback, name))

    # -- driving -----------------------------------------------------------

    def run(
        self,
        chunks: Iterable[np.ndarray],
        fault_plan: FaultPlan | None = None,
    ) -> EngineStats:
        """Ingest a chunk source from the beginning (checkpointing as
        configured); ``fault_plan`` injects deterministic faults."""
        return self._drive(chunks, start_chunk=0, restored=None,
                           fault_plan=fault_plan)

    def resume(
        self,
        chunks: Iterable[np.ndarray],
        fault_plan: FaultPlan | None = None,
    ) -> EngineStats:
        """Recover from the newest valid checkpoint and finish the stream.

        ``chunks`` must re-yield the same source from the beginning; the
        prefix covered by the restored checkpoint is skipped and only
        the un-checkpointed suffix is replayed, leaving the synopsis
        state identical to an uninterrupted run.  With an empty store
        (crash before the first checkpoint) the run starts from scratch,
        which requires a fresh ``synopsis`` to have been provided.
        Raises :class:`~repro.errors.RecoveryError` when checkpoints
        exist but none is recoverable, or when there is neither a
        checkpoint nor a fresh synopsis.
        """
        if self._store is None:
            raise ConfigurationError("resume requires a checkpoint_dir")
        with trace_span("recover", directory=str(self._store.directory)):
            loaded = self._store.load_latest()
        if loaded is None:
            if self.synopsis is None:
                raise RecoveryError(
                    f"nothing to resume: {self._store.directory} has no "
                    "checkpoints and no fresh synopsis was provided"
                )
            return self._drive(chunks, start_chunk=0, restored=None,
                               fault_plan=fault_plan)
        synopsis, record = loaded
        self.synopsis = synopsis
        self._last_record = record
        start_chunk = int(record["chunk_index"])
        registry = current_registry()
        if registry is not None:
            registry.counter("recoveries_total").inc()
            registry.gauge("recovery_restored_chunk_index").set(start_chunk)
        stats = self._drive(
            chunks,
            start_chunk=start_chunk,
            restored=record,
            fault_plan=fault_plan,
        )
        if registry is not None:
            # Replay length: source chunks re-ingested past the
            # restored checkpoint to catch back up.
            registry.gauge("recovery_replay_chunks").set(
                self._source_chunks_seen - start_chunk
            )
        return stats

    def _drive(
        self,
        chunks: Iterable[np.ndarray],
        start_chunk: int,
        restored: dict | None,
        fault_plan: FaultPlan | None,
    ) -> EngineStats:
        if self.synopsis is None:
            raise ConfigurationError("no synopsis to drive")
        engine = StreamEngine(self.synopsis, batched=self.batched)
        self._engine = engine
        if restored is not None:
            engine.stats.tuples_ingested = int(restored["tuples_ingested"])
            engine.stats.chunks_ingested = int(
                restored.get("engine_chunks", restored["chunk_index"])
            )
        for period, callback, name in self._consumer_specs:
            engine.every(period, callback, name)
        if restored is not None:
            position = engine.stats.tuples_ingested
            for consumer in engine._consumers:
                # Fast-forward past firings already delivered before the
                # checkpoint (checkpoints are taken after consumers fire).
                consumer.next_due = (
                    position // consumer.period + 1
                ) * consumer.period

        source: Iterator[Any] = iter(chunks)
        if fault_plan is not None:
            source = fault_plan.wrap(source)
        retrying = RetryingSource(
            source,
            policies=self._retry_policies,
            default_policy=self._default_retry_policy,
            seed=self._retry_seed,
            sleep=self._sleep,
        )
        self._source = retrying
        self._chunks_since_checkpoint = 0

        index = 0
        for chunk in retrying:
            if index < start_chunk:  # replayed prefix already checkpointed
                index += 1
                self._source_chunks_seen = index
                continue
            if fault_plan is not None:
                self._apply_engine_faults(fault_plan, index)
            try:
                array = coerce_chunk(chunk, index)
            except PoisonChunkError as exc:
                self.dead_letters.quarantine(index, chunk, exc.reason)
                index += 1
                self._source_chunks_seen = index
                self._chunks_since_checkpoint += 1
                continue
            engine.run([array])
            index += 1
            self._source_chunks_seen = index
            self._chunks_since_checkpoint += 1
            if (
                self._store is not None
                and self._chunks_since_checkpoint >= self.checkpoint_every
            ):
                self._checkpoint(index, engine, fault_plan)
        if self._store is not None and self._chunks_since_checkpoint > 0:
            self._checkpoint(index, engine, fault_plan)
        return engine.stats

    def _apply_engine_faults(self, plan: FaultPlan, index: int) -> None:
        if plan.fail_shard is not None and plan.fail_shard[0] == index:
            if not isinstance(self.synopsis, ShardSupervisor):
                raise ConfigurationError(
                    "fail_shard fault injection requires a ShardSupervisor "
                    f"synopsis, got {type(self.synopsis).__name__}"
                )
            self.synopsis.inject_failure(plan.fail_shard[1])
        if plan.crash_at_chunk is not None and plan.crash_at_chunk == index:
            raise SimulatedCrash(
                f"injected crash at chunk boundary {index} "
                f"({index} chunks ingested)"
            )

    def _checkpoint(
        self, chunk_index: int, engine: StreamEngine, plan: FaultPlan | None
    ) -> None:
        assert self._store is not None
        record = self._store.save(
            self.synopsis,
            chunk_index=chunk_index,
            tuples_ingested=engine.stats.tuples_ingested,
            engine_chunks=engine.stats.chunks_ingested,
        )
        self._last_record = record
        self._chunks_since_checkpoint = 0
        self._checkpoints_written += 1
        if (
            plan is not None
            and plan.corrupt_checkpoint_after is not None
            and self._checkpoints_written == plan.corrupt_checkpoint_after
        ):
            corrupt_file(
                self._store.snapshot_path(record["generation"]),
                seed=plan.seed,
            )

    # -- observability -----------------------------------------------------

    def health(self) -> dict:
        """A JSON-safe snapshot of the runtime's condition.

        Keys: ``status`` (``"ok"``/``"degraded"`` — degraded when any
        shard failed over or chunks were quarantined), ingestion
        counters, the last checkpoint record (or None),
        ``checkpoint_lag_chunks`` (chunks handled since that
        checkpoint), retry/backoff counters from the source wrapper,
        quarantine counters, and per-shard statuses when the synopsis is
        supervised.
        """
        stats = self.stats
        shards = (
            self.synopsis.shard_health()
            if isinstance(self.synopsis, ShardSupervisor)
            else None
        )
        degraded = bool(
            (shards and any(s["status"] != "ok" for s in shards))
            or self.dead_letters.quarantined
        )
        checkpoint = None
        if self._last_record is not None:
            checkpoint = {
                key: self._last_record[key]
                for key in ("generation", "chunk_index", "tuples_ingested")
            }
        return {
            "status": "degraded" if degraded else "ok",
            "tuples_ingested": stats.tuples_ingested,
            "chunks_ingested": stats.chunks_ingested,
            "source_chunks_seen": self._source_chunks_seen,
            "checkpoint": checkpoint,
            "checkpoint_lag_chunks": self._chunks_since_checkpoint,
            "retries": self._source.retries if self._source else 0,
            "backoff_seconds": (
                self._source.backoff_seconds if self._source else 0.0
            ),
            "quarantined": self.dead_letters.quarantined,
            "quarantine_dropped": self.dead_letters.dropped,
            "shards": shards,
        }
