"""A small streaming runtime around the synopses.

The paper's systems context is continuous ingestion: tuples arrive in
batches from a source, a summary absorbs them, and consumers read
periodic snapshots (top-k boards, threshold alerts).  This package
provides that operational shell:

* :class:`~repro.runtime.engine.StreamEngine` — drives any synopsis from
  a chunk iterator, metering throughput and firing registered callbacks
  (every N tuples) with consistent snapshots;
* :class:`~repro.runtime.engine.TopKBoard` and
  :class:`~repro.runtime.engine.ThresholdAlert` — the two consumer types
  the paper's applications (§1) describe;
* :class:`~repro.runtime.sharding.ShardedASketch` — hash-partitioned
  ingestion across several ASketch shards (each key owned by exactly one
  shard, so queries need no merging), the standard scale-out layout for
  a multi-core collector.
"""

from repro.runtime.engine import (
    EngineStats,
    StreamEngine,
    ThresholdAlert,
    TopKBoard,
)
from repro.runtime.sharding import ShardedASketch

__all__ = [
    "EngineStats",
    "ShardedASketch",
    "StreamEngine",
    "ThresholdAlert",
    "TopKBoard",
]
