"""A small streaming runtime around the synopses.

The paper's systems context is continuous ingestion: tuples arrive in
batches from a source, a summary absorbs them, and consumers read
periodic snapshots (top-k boards, threshold alerts).  This package
provides that operational shell:

* :class:`~repro.runtime.engine.StreamEngine` — drives any synopsis from
  a chunk iterator, metering throughput and firing registered callbacks
  (every N tuples) with consistent snapshots;
* :class:`~repro.runtime.engine.TopKBoard` and
  :class:`~repro.runtime.engine.ThresholdAlert` — the two consumer types
  the paper's applications (§1) describe;
* :class:`~repro.runtime.sharding.ShardedASketch` — hash-partitioned
  ingestion across several ASketch shards (each key owned by exactly one
  shard, so queries need no merging), the standard scale-out layout for
  a multi-core collector;
* :mod:`~repro.runtime.reliability` — the fault-tolerance layer:
  :class:`~repro.runtime.reliability.ResilientEngine` (atomic
  checkpoints + exact crash recovery), :class:`~repro.runtime.
  reliability.RetryingSource` (backoff retries, dead-letter
  quarantine), :class:`~repro.runtime.reliability.ShardSupervisor`
  (graceful shard degradation), and the deterministic
  :class:`~repro.runtime.reliability.FaultPlan` injection harness the
  recovery tests are built on;
* :class:`~repro.runtime.adaptive.AdaptiveController` — closes the
  observability loop: watches windowed filter hit-rate / exchange rate
  / shard skew and re-tunes the staged filter online through
  ``resize_filter()``;
* :mod:`~repro.runtime.parallel` — true multicore ingest:
  :class:`~repro.runtime.parallel.ParallelIngestRuntime` runs N worker
  processes over shared-memory chunk rings, each ingesting its shards'
  keys, recombined through the synopsis ``merge()`` protocol into a
  result bit-identical to a single-process run (with cross-process
  failover reusing the supervisor semantics).
"""

from repro.runtime.adaptive import AdaptiveController
from repro.runtime.engine import (
    EngineStats,
    StreamEngine,
    ThresholdAlert,
    TopKBoard,
    coerce_chunk,
)
from repro.runtime.parallel import (
    ChunkRing,
    ParallelIngestRuntime,
    parallel_ingest,
)
from repro.runtime.reliability import (
    CheckpointStore,
    DeadLetter,
    DeadLetterQueue,
    FaultPlan,
    FaultySource,
    ResilientEngine,
    RetryingSource,
    RetryPolicy,
    ShardSupervisor,
    SimulatedCrash,
    corrupt_file,
)
from repro.runtime.sharding import ShardedASketch

__all__ = [
    "AdaptiveController",
    "CheckpointStore",
    "ChunkRing",
    "DeadLetter",
    "DeadLetterQueue",
    "EngineStats",
    "FaultPlan",
    "FaultySource",
    "ParallelIngestRuntime",
    "ResilientEngine",
    "RetryPolicy",
    "RetryingSource",
    "ShardSupervisor",
    "ShardedASketch",
    "SimulatedCrash",
    "StreamEngine",
    "ThresholdAlert",
    "TopKBoard",
    "coerce_chunk",
    "corrupt_file",
    "parallel_ingest",
]
