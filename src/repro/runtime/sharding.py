"""Hash-partitioned ASketch shards (key-ownership scale-out).

Unlike the §6.3 kernel group — where every kernel sees its *own* stream
and point queries sum across kernels — a sharded deployment routes each
key to exactly one shard by hash.  Queries then touch a single shard
(no merging, no summing of independent errors), and each shard's filter
adapts to its own partition's heavy hitters.  This is the layout a
multi-core collector over one ingress stream typically uses.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.hashing import make_hash_family
from repro.obs.registry import MetricsRegistry, current_registry
from repro.hashing.families import encode_key_array, key_to_int
from repro.synopses.protocol import (
    SynopsisState,
    pack_nested,
    prefix_arrays,
    unpack_nested,
)


class ShardedASketch:
    """Route keys to ASketch shards by a dedicated partition hash.

    Parameters
    ----------
    shards:
        Number of partitions.
    total_bytes:
        Budget **per shard** (matching how per-core synopses are sized
        in §6.3's experiments).
    filter_items, filter_kind, num_hashes, seed:
        Forwarded to each shard's ASketch.
    sketch_backend:
        Back-stage sketch for every shard (any backend
        :class:`~repro.core.asketch.ASketch` accepts — ``"count-min"``
        default, ``"fcm"``, ``"count-sketch"``, ``"sf-sketch"``,
        ``"salsa-cm"``).
    """

    def __init__(
        self,
        shards: int,
        total_bytes: int,
        filter_items: int = 32,
        filter_kind: str = "relaxed-heap",
        num_hashes: int = 8,
        seed: int = 0,
        sketch_backend: str = "count-min",
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.total_bytes = int(total_bytes)
        self.filter_items = int(filter_items)
        self.filter_kind = filter_kind
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.sketch_backend = sketch_backend
        self._router = make_hash_family("carter-wegman", shards, seed + 999)
        # Every shard shares one sketch seed: key ownership is exclusive,
        # so shards never alias each other's keys into shared cells, and
        # identical hash geometry is what lets :meth:`reduce` collapse
        # the group into a single ASketch by cell-wise sketch addition.
        self._shards = [
            ASketch(
                total_bytes=total_bytes,
                filter_items=filter_items,
                filter_kind=filter_kind,
                num_hashes=num_hashes,
                seed=seed * 6151,
                sketch_backend=sketch_backend,
            )
            for _ in range(shards)
        ]

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[ASketch]:
        """The per-partition ASketches (read access)."""
        return list(self._shards)

    def shard_of(self, key: int) -> int:
        """The shard index owning a key."""
        return self._router(key_to_int(key))

    def owners_of(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of`: the owner index for each key.

        This is the routing decision the ingest/query paths use; it is
        public so wrappers (e.g. the reliability layer's
        :class:`~repro.runtime.reliability.ShardSupervisor`) can
        partition chunks identically without re-deriving the router.
        """
        keys = np.asarray(keys, dtype=np.int64)
        return self._router.hash_array(encode_key_array(keys))

    # -- ingestion --------------------------------------------------------

    def _record_shard_metrics(
        self, registry: MetricsRegistry, owners: np.ndarray
    ) -> None:
        """Record one chunk's per-shard routing into the registry.

        Emits per-shard item counters plus a ``shard_skew`` gauge — the
        chunk's largest share over the balanced share (1.0 = perfectly
        even routing), the live signal for partition hot spots.
        """
        if owners.size == 0:
            return
        shares = np.bincount(owners, minlength=len(self._shards))
        for index, share in enumerate(shares.tolist()):
            if share:
                registry.counter(
                    "shard_items_total", shard=str(index)
                ).inc(share)
        balanced = owners.size / len(self._shards)
        registry.gauge("shard_skew").set(float(shares.max()) / balanced)

    def process_stream(self, keys: np.ndarray) -> None:
        """Partition a chunk by owner and feed each shard its share.

        Within a shard, relative arrival order is preserved (stable
        partitioning), which is all the exchange policy depends on.
        """
        keys = np.asarray(keys, dtype=np.int64)
        owners = self._router.hash_array(encode_key_array(keys))
        registry = current_registry()
        if registry is not None:
            self._record_shard_metrics(registry, owners)
        for index, shard in enumerate(self._shards):
            share = keys[owners == index]
            if share.size:
                shard.process_stream(share)

    def process_batch(
        self, keys: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Partition a chunk by owner and batch-ingest each shard's share.

        Stable partitioning preserves first-appearance order within a
        shard, so each shard sees exactly the chunk-granularity exchange
        semantics of :meth:`repro.core.asketch.ASketch.process_batch`.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
        owners = self._router.hash_array(encode_key_array(keys))
        registry = current_registry()
        if registry is not None:
            self._record_shard_metrics(registry, owners)
        for index, shard in enumerate(self._shards):
            mask = owners == index
            if mask.any():
                shard.process_batch(
                    keys[mask], None if counts is None else counts[mask]
                )

    def update(self, key: int, amount: int = 1) -> int:
        """Route one weighted update to its owner shard."""
        return self._shards[self.shard_of(key)].update(key, amount)

    def remove(self, key: int, amount: int = 1) -> None:
        """Route a deletion to its owner shard."""
        self._shards[self.shard_of(key)].remove(key, amount)

    # -- queries ----------------------------------------------------------

    def query(self, key: int) -> int:
        """Point query against the single owner shard (no merging)."""
        return self._shards[self.shard_of(key)].query(key)

    estimate = query

    def query_batch(self, keys: Iterable[int]) -> list[int]:
        """Owner-shard point queries for many keys.

        Partitions the batch by owner and runs each shard's vectorised
        ``query_batch`` once, scattering answers back into input order.
        """
        if not isinstance(keys, np.ndarray):
            keys = list(keys)
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return []
        owners = self._router.hash_array(encode_key_array(keys))
        answers = np.empty(keys.shape[0], dtype=np.int64)
        for index, shard in enumerate(self._shards):
            mask = owners == index
            if mask.any():
                answers[mask] = shard.query_batch(keys[mask])
        return [int(v) for v in answers]

    estimate_batch = query_batch

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """Global top-k: union the shard filters and rank.

        Sound because key ownership is exclusive — each shard's filter
        holds the heavy hitters of exactly its own keys.
        """
        merged: list[tuple[int, int]] = []
        for shard in self._shards:
            merged.extend(shard.top_k(shard.filter.capacity))
        merged.sort(key=lambda pair: pair[1], reverse=True)
        return merged[:k]

    def heavy_hitters(self, threshold: int) -> list[tuple[int, int]]:
        """Global threshold query via the per-shard filters."""
        found: list[tuple[int, int]] = []
        for shard in self._shards:
            found.extend(shard.heavy_hitters(threshold))
        found.sort(key=lambda pair: pair[1], reverse=True)
        return found

    # -- stats ------------------------------------------------------------

    @property
    def total_mass(self) -> int:
        """Aggregate stream mass across all shards."""
        return sum(shard.total_mass for shard in self._shards)

    @property
    def size_bytes(self) -> int:
        """Total logical bytes across all shards."""
        return sum(shard.size_bytes for shard in self._shards)

    # -- merge / reduce ----------------------------------------------------

    def merge(self, other: "ShardedASketch") -> None:
        """Shard-wise merge of two groups with identical layout.

        Requires the same shard count and seed (so both groups route any
        key to the same shard index); each shard pair then merges through
        :meth:`repro.core.asketch.ASketch.merge`, preserving the
        one-sided guarantee per partition.  ``other`` is consumed.
        """
        if not isinstance(other, ShardedASketch):
            raise ConfigurationError(
                f"cannot merge ShardedASketch with {type(other).__name__}"
            )
        if len(self) != len(other) or self.seed != other.seed:
            raise ConfigurationError(
                "shard groups must share shard count and seed to merge"
            )
        for mine, theirs in zip(self._shards, other._shards):
            mine.merge(theirs)

    def _check_shard_index(self, index: int) -> None:
        if not 0 <= index < len(self._shards):
            raise ConfigurationError(
                f"shard index {index} out of range for "
                f"{len(self._shards)} shards"
            )

    def export_shard(self, index: int) -> SynopsisState:
        """Extract one shard's state, resetting the shard to pristine.

        The sending half of the elastic-resharding handoff (see
        :meth:`repro.runtime.parallel.ParallelIngestRuntime.reshard`):
        the returned state travels to the shard's new owner while this
        group's copy becomes indistinguishable from freshly built — so
        the shard stays non-pristine on exactly one side of any later
        merge, preserving the bit-exact identity fast path.
        """
        self._check_shard_index(index)
        state = self._shards[index].state()
        self._shards[index] = ASketch(
            total_bytes=self.total_bytes,
            filter_items=self.filter_items,
            filter_kind=self.filter_kind,
            num_hashes=self.num_hashes,
            seed=self.seed * 6151,
            sketch_backend=self.sketch_backend,
        )
        return state

    def install_shard(self, index: int, state: SynopsisState) -> None:
        """Adopt a transferred shard state (receiving half of a handoff).

        The local copy of the shard must still be pristine — installing
        over absorbed traffic would double-count that traffic, exactly
        the corruption the resharding protocol exists to rule out, so
        it is rejected loudly.
        """
        self._check_shard_index(index)
        if self._shards[index].total_mass != 0:
            raise ConfigurationError(
                f"cannot install shard {index}: local copy already holds "
                f"{self._shards[index].total_mass} mass (double ownership)"
            )
        self._shards[index] = ASketch.from_state(state)

    def reduce(self) -> ASketch:
        """Collapse the group into one stand-alone ASketch.

        Non-destructive: every shard is cloned through its state before
        merging, so the group keeps serving queries afterwards.  The
        shared sketch seed (see ``__init__``) makes the shards cell-wise
        mergeable; the result carries the union of the shard filters
        (capped at one filter's capacity, keeping the highest estimates)
        and one-sided estimates over the whole routed stream.
        """
        clones = [ASketch.from_state(shard.state()) for shard in self._shards]
        reduced = clones[0]
        for clone in clones[1:]:
            reduced.merge(clone)
        return reduced

    # -- synopsis protocol -------------------------------------------------

    SYNOPSIS_KIND = "sharded-asketch"

    def state(self) -> SynopsisState:
        """Group parameters plus every shard's nested state."""
        arrays: dict[str, np.ndarray] = {}
        shard_metadata = []
        for index, shard in enumerate(self._shards):
            shard_state = shard.state()
            arrays.update(prefix_arrays(f"shard{index}", shard_state.arrays))
            shard_metadata.append(pack_nested(shard_state))
        return SynopsisState(
            kind=self.SYNOPSIS_KIND,
            params={
                "shards": len(self._shards),
                "total_bytes": self.total_bytes,
                "filter_items": self.filter_items,
                "filter_kind": self.filter_kind,
                "num_hashes": self.num_hashes,
                "seed": self.seed,
                "sketch_backend": self.sketch_backend,
            },
            arrays=arrays,
            extra={"shards": shard_metadata},
        )

    @classmethod
    def from_state(cls, state: SynopsisState) -> "ShardedASketch":
        group = cls(**state.params)
        group._shards = [
            ASketch.from_state(
                unpack_nested(metadata, state.arrays, f"shard{index}")
            )
            for index, metadata in enumerate(state.extra["shards"])
        ]
        return group
