"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e . --no-use-pep517`` editable-install path used by the
offline reproduction environment.
"""

from setuptools import setup

setup()
