"""Unit tests for the Lossy Counting extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.counters.lossy_counting import LossyCounting
from repro.errors import ConfigurationError


class TestConstruction:
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5, 2.0])
    def test_bad_epsilon_rejected(self, epsilon):
        with pytest.raises(ConfigurationError):
            LossyCounting(epsilon)

    def test_window_size(self):
        assert LossyCounting(0.01).window_size == 100
        assert LossyCounting(0.003).window_size == 334


class TestGuarantees:
    def test_undercount_bounded(self, skewed_stream):
        epsilon = 0.002
        lossy = LossyCounting(epsilon)
        n = 20000
        lossy.update_batch(skewed_stream.keys[:n])
        exact: dict[int, int] = {}
        for key in skewed_stream.keys[:n].tolist():
            exact[key] = exact.get(key, 0) + 1
        for key, true in exact.items():
            estimate = lossy.estimate(key)
            assert estimate <= true
            assert true - estimate <= epsilon * n + lossy.window_size

    def test_frequent_items_survive(self, skewed_stream):
        epsilon = 0.005
        lossy = LossyCounting(epsilon)
        n = 20000
        lossy.update_batch(skewed_stream.keys[:n])
        support = 0.02
        frequent = {key for key, _ in lossy.frequent_items(support)}
        for key, count in skewed_stream.prefix(n).exact.top_k(50):
            if count >= support * n:
                assert key in frequent

    def test_pruning_shrinks_state(self, rng):
        lossy = LossyCounting(0.01)
        keys = rng.integers(0, 100_000, size=30_000)  # nearly all distinct
        lossy.update_batch(np.asarray(keys))
        # Without pruning there would be ~30K entries.
        assert len(lossy) < 5_000

    def test_frequent_items_sorted(self):
        lossy = LossyCounting(0.01)
        data = [1] * 50 + [2] * 30 + [3] * 10
        lossy.update_batch(np.array(data))
        items = lossy.frequent_items(0.05)
        counts = [count for _, count in items]
        assert counts == sorted(counts, reverse=True)
