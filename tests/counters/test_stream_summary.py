"""Unit tests for the Stream-Summary bucket-list structure."""

from __future__ import annotations

import pytest

from repro.counters.stream_summary import StreamSummary
from repro.errors import CapacityError


class TestBasics:
    def test_empty_summary(self):
        summary = StreamSummary(4)
        assert len(summary) == 0
        assert not summary.is_full
        assert summary.min_count == 0
        assert 5 not in summary

    def test_insert_and_lookup(self):
        summary = StreamSummary(4)
        summary.insert(10, 3)
        assert 10 in summary
        assert summary.count_of(10) == 3
        assert summary.count_of(11) is None

    def test_capacity_zero_rejected(self):
        with pytest.raises(CapacityError):
            StreamSummary(0)

    def test_insert_when_full_rejected(self):
        summary = StreamSummary(2)
        summary.insert(1, 1)
        summary.insert(2, 1)
        with pytest.raises(CapacityError):
            summary.insert(3, 1)

    def test_duplicate_insert_rejected(self):
        summary = StreamSummary(3)
        summary.insert(1, 1)
        with pytest.raises(CapacityError):
            summary.insert(1, 5)

    def test_payload_roundtrip(self):
        summary = StreamSummary(3)
        summary.insert(1, 4, payload=99)
        assert summary.payload_of(1) == 99
        summary.set_payload(1, 42)
        assert summary.payload_of(1) == 42


class TestMinTracking:
    def test_min_item_is_smallest(self):
        summary = StreamSummary(4)
        summary.insert(1, 10)
        summary.insert(2, 3)
        summary.insert(3, 7)
        key, count, _ = summary.min_item()
        assert (key, count) == (2, 3)

    def test_min_updates_after_increment(self):
        summary = StreamSummary(3)
        summary.insert(1, 1)
        summary.insert(2, 2)
        summary.increment(1, 5)  # 1 -> 6
        key, count, _ = summary.min_item()
        assert (key, count) == (2, 2)

    def test_min_item_empty_raises(self):
        with pytest.raises(CapacityError):
            StreamSummary(2).min_item()

    def test_evict_min_removes(self):
        summary = StreamSummary(3)
        summary.insert(1, 5)
        summary.insert(2, 1)
        key, count, _ = summary.evict_min()
        assert (key, count) == (2, 1)
        assert 2 not in summary
        assert len(summary) == 1

    def test_ties_share_bucket(self):
        summary = StreamSummary(4)
        for key in range(4):
            summary.insert(key, 7)
        key, count, _ = summary.min_item()
        assert count == 7
        assert key in range(4)


class TestIncrementDecrement:
    def test_increment_returns_new_count(self):
        summary = StreamSummary(2)
        summary.insert(5, 1)
        assert summary.increment(5, 3) == 4
        assert summary.count_of(5) == 4

    def test_many_increments_keep_order(self):
        summary = StreamSummary(3)
        summary.insert(1, 1)
        summary.insert(2, 1)
        summary.insert(3, 1)
        for _ in range(10):
            summary.increment(1)
        for _ in range(5):
            summary.increment(2)
        ordered = [key for key, _, _ in summary.items()]
        assert ordered == [3, 2, 1]  # ascending count

    def test_decrement(self):
        summary = StreamSummary(2)
        summary.insert(1, 10)
        assert summary.decrement(1, 4) == 6
        key, count, _ = summary.min_item()
        assert (key, count) == (1, 6)

    def test_decrement_below_zero_rejected(self):
        summary = StreamSummary(2)
        summary.insert(1, 2)
        with pytest.raises(CapacityError):
            summary.decrement(1, 3)

    def test_decrement_can_change_min(self):
        summary = StreamSummary(3)
        summary.insert(1, 10)
        summary.insert(2, 5)
        summary.decrement(1, 8)  # 1 -> 2, now the minimum
        key, count, _ = summary.min_item()
        assert (key, count) == (1, 2)


class TestRemove:
    def test_remove_returns_state(self):
        summary = StreamSummary(3)
        summary.insert(1, 6, payload="p")
        count, payload = summary.remove(1)
        assert (count, payload) == (6, "p")
        assert 1 not in summary

    def test_remove_missing_raises_keyerror(self):
        summary = StreamSummary(2)
        with pytest.raises(KeyError):
            summary.remove(9)

    def test_remove_last_item_empties_bucket_chain(self):
        summary = StreamSummary(2)
        summary.insert(1, 3)
        summary.remove(1)
        assert summary.min_count == 0
        summary.insert(2, 1)  # structure still usable
        assert summary.count_of(2) == 1


class TestTopK:
    def test_top_k_descending(self):
        summary = StreamSummary(5)
        for key, count in [(1, 5), (2, 9), (3, 2), (4, 7)]:
            summary.insert(key, count)
        assert summary.top_k(3) == [(2, 9), (4, 7), (1, 5)]

    def test_top_k_larger_than_size(self):
        summary = StreamSummary(3)
        summary.insert(1, 1)
        assert summary.top_k(10) == [(1, 1)]


class TestOpsAccounting:
    def test_pointer_derefs_charged(self):
        summary = StreamSummary(4)
        before = summary.ops.pointer_derefs
        summary.insert(1, 1)
        summary.increment(1)
        assert summary.ops.pointer_derefs > before

    def test_hashtable_ops_charged(self):
        summary = StreamSummary(4)
        before = summary.ops.hashtable_ops
        summary.insert(1, 1)
        _ = 1 in summary
        assert summary.ops.hashtable_ops >= before + 2


class TestStressConsistency:
    def test_random_ops_match_reference_dict(self, rng):
        """The structure must track an exact dict under mixed workloads."""
        summary = StreamSummary(16)
        reference: dict[int, int] = {}
        for _ in range(3000):
            key = int(rng.integers(0, 40))
            if key in reference:
                summary.increment(key)
                reference[key] += 1
            elif len(reference) < 16:
                summary.insert(key, 1)
                reference[key] = 1
            else:
                evicted_key, evicted_count, _ = summary.evict_min()
                assert reference.pop(evicted_key) == evicted_count
                assert evicted_count == min(
                    set(reference.values()) | {evicted_count}
                )
                summary.insert(key, 1)
                reference[key] = 1
        for key, count in reference.items():
            assert summary.count_of(key) == count
