"""Unit tests for the Misra-Gries frequent-items counter."""

from __future__ import annotations

import pytest

from repro.counters.misra_gries import MisraGries
from repro.errors import CapacityError


class TestBasics:
    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            MisraGries(0)

    def test_counts_exact_within_capacity(self):
        mg = MisraGries(8)
        for key in [1, 2, 1, 1, 3]:
            mg.update(key)
        assert mg.count_of(1) == 3
        assert mg.count_of(2) == 1
        assert mg.count_of(4) is None

    def test_decrement_all_on_overflow(self):
        mg = MisraGries(2)
        mg.update(1)
        mg.update(2)
        mg.update(3)  # full: every counter decremented, 3 not inserted
        assert len(mg) == 0
        assert mg.total_decrements == 1

    def test_surviving_counts_after_decrement(self):
        mg = MisraGries(2)
        for _ in range(5):
            mg.update(1)
        mg.update(2)
        mg.update(3)  # decrement-all: 1 -> 4, 2 evicted
        assert mg.count_of(1) == 4
        assert mg.count_of(2) is None
        assert len(mg) == 1

    def test_freed_slots_reusable(self):
        mg = MisraGries(2)
        mg.update(1)
        mg.update(2)
        mg.update(3)  # clears both
        mg.update(4)
        assert mg.is_frequent(4)
        assert len(mg) == 1


class TestGuarantees:
    def test_undercount_bounded_by_decrements(self, skewed_stream):
        mg = MisraGries(32)
        for key in skewed_stream.keys[:20000].tolist():
            mg.update(key)
        exact = {}
        for key in skewed_stream.keys[:20000].tolist():
            exact[key] = exact.get(key, 0) + 1
        for key, count in mg.items():
            assert count <= exact[key]
            assert exact[key] - count <= mg.total_decrements

    def test_heavy_items_monitored(self, skewed_stream):
        """Items with frequency > N/(k+1) must be monitored."""
        k = 32
        n = 20000
        mg = MisraGries(k)
        keys = skewed_stream.keys[:n].tolist()
        for key in keys:
            mg.update(key)
        counts: dict[int, int] = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        for key, count in counts.items():
            if count > n / (k + 1):
                assert mg.is_frequent(key), (key, count)

    def test_items_sorted_descending(self):
        mg = MisraGries(8)
        data = [1] * 5 + [2] * 3 + [3] * 7
        for key in data:
            mg.update(key)
        items = mg.items()
        counts = [count for _, count in items]
        assert counts == sorted(counts, reverse=True)


class TestWeightedAndOps:
    def test_weighted_update(self):
        mg = MisraGries(4)
        mg.update(1, 10)
        assert mg.count_of(1) == 10

    def test_probe_costs_charged(self):
        mg = MisraGries(32)
        before = mg.ops.filter_probe_blocks
        mg.update(5)
        assert mg.ops.filter_probe_blocks == before + 2  # ceil(32/16)

    def test_mg_ops_charged_for_sweep(self):
        mg = MisraGries(4)
        for key in range(4):
            mg.update(key)
        before = mg.ops.mg_ops
        mg.update(99)  # triggers decrement-all
        assert mg.ops.mg_ops >= before + 1 + 4
