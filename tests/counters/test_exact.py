"""Unit tests for the exact ground-truth counter."""

from __future__ import annotations

import pytest

from repro.counters.exact import ExactCounter
from repro.errors import NegativeCountError


class TestCounting:
    def test_update_and_lookup(self):
        counter = ExactCounter()
        counter.update(1)
        counter.update(1, 4)
        assert counter.count_of(1) == 5
        assert counter.count_of(2) == 0
        assert counter.estimate(1) == 5  # sketch-interface alias

    def test_total_and_distinct(self):
        counter = ExactCounter()
        counter.update(1, 3)
        counter.update(2, 2)
        assert counter.total == 5
        assert counter.distinct == 2
        assert len(counter) == 2

    def test_batch_matches_loop(self, rng):
        keys = rng.integers(0, 50, size=2000)
        batched = ExactCounter()
        batched.update_batch(keys)
        looped = ExactCounter()
        for key in keys.tolist():
            looped.update(int(key))
        assert dict(batched.items()) == dict(looped.items())
        assert batched.total == looped.total == 2000

    def test_contains(self):
        counter = ExactCounter()
        counter.update(7)
        assert 7 in counter
        assert 8 not in counter


class TestDeletion:
    def test_delete_to_zero_removes_key(self):
        counter = ExactCounter()
        counter.update(1, 3)
        counter.update(1, -3)
        assert counter.count_of(1) == 0
        assert 1 not in counter
        assert counter.total == 0

    def test_delete_below_zero_rejected(self):
        counter = ExactCounter()
        counter.update(1, 2)
        with pytest.raises(NegativeCountError):
            counter.update(1, -3)


class TestRanking:
    def test_top_k(self):
        counter = ExactCounter()
        for key, count in [(1, 5), (2, 9), (3, 1)]:
            counter.update(key, count)
        assert counter.top_k(2) == [(2, 9), (1, 5)]

    def test_keys_by_frequency_breaks_ties_by_key(self):
        counter = ExactCounter()
        for key in [3, 1, 2]:
            counter.update(key, 4)
        assert counter.keys_by_frequency() == [1, 2, 3]
