"""Unit tests for Space Saving, including its published guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.counters.exact import ExactCounter
from repro.counters.space_saving import BYTES_PER_ITEM, SpaceSaving
from repro.errors import ConfigurationError


class TestConstruction:
    def test_capacity_or_bytes_required(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving()
        with pytest.raises(ConfigurationError):
            SpaceSaving(capacity=4, total_bytes=1000)

    def test_bytes_budget_derives_capacity(self):
        summary = SpaceSaving(total_bytes=1000)
        assert summary.capacity == 1000 // BYTES_PER_ITEM
        assert summary.size_bytes == summary.capacity * BYTES_PER_ITEM

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(total_bytes=BYTES_PER_ITEM - 1)

    def test_bad_estimate_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(capacity=4, estimate_mode="median")


class TestCounting:
    def test_within_capacity_counts_exact(self):
        summary = SpaceSaving(capacity=8)
        for key in [1, 2, 1, 3, 1, 2]:
            summary.update(key)
        assert summary.estimate(1) == 3
        assert summary.estimate(2) == 2
        assert summary.estimate(3) == 1

    def test_eviction_adopts_min_count(self):
        summary = SpaceSaving(capacity=2)
        summary.update(1)
        summary.update(1)
        summary.update(2)
        summary.update(3)  # evicts 2 (count 1); 3 enters with count 2
        assert 2 not in summary
        assert summary.estimate(3) == 2
        assert summary.guaranteed_count(3) == 1  # count - error

    def test_overestimation_guarantee(self, skewed_stream):
        """Monitored counts are within min_count of the truth (one-sided)."""
        summary = SpaceSaving(capacity=64)
        summary.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        for key, count in summary.top_k(64):
            true = exact.count_of(key)
            assert count >= true
            assert count - true <= len(skewed_stream) / 64

    def test_heavy_hitters_monitored(self, skewed_stream):
        """Items above N/k are guaranteed to be monitored."""
        capacity = 64
        summary = SpaceSaving(capacity=capacity)
        summary.update_batch(skewed_stream.keys)
        threshold = len(skewed_stream) / capacity
        for key, count in skewed_stream.exact.top_k(20):
            if count > threshold:
                assert key in summary


class TestEstimateModes:
    def test_min_mode_returns_min_for_unmonitored(self):
        summary = SpaceSaving(capacity=2, estimate_mode="min")
        for key in [1, 1, 2, 2]:
            summary.update(key)
        assert summary.estimate(999) == 2

    def test_zero_mode_returns_zero_for_unmonitored(self):
        summary = SpaceSaving(capacity=2, estimate_mode="zero")
        for key in [1, 1, 2, 2]:
            summary.update(key)
        assert summary.estimate(999) == 0

    def test_zero_mode_less_error_on_tail(self, skewed_stream):
        """The paper's Figure 11 ordering: zero beats min on skewed data."""
        zero = SpaceSaving(capacity=64, estimate_mode="zero")
        minimum = SpaceSaving(capacity=64, estimate_mode="min")
        zero.update_batch(skewed_stream.keys)
        minimum.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        tail_keys = [key for key, _ in exact.top_k(800)[500:800]]
        zero_error = sum(
            abs(zero.estimate(k) - exact.count_of(k)) for k in tail_keys
        )
        min_error = sum(
            abs(minimum.estimate(k) - exact.count_of(k)) for k in tail_keys
        )
        assert zero_error < min_error


class TestTopK:
    def test_topk_recovers_true_heavy_hitters(self, skewed_stream):
        summary = SpaceSaving(capacity=128)
        summary.update_batch(skewed_stream.keys)
        reported = {key for key, _ in summary.top_k(10)}
        truth = {key for key, _ in skewed_stream.exact.top_k(10)}
        assert len(reported & truth) >= 8

    def test_len_and_contains(self):
        summary = SpaceSaving(capacity=4)
        summary.update(1)
        assert len(summary) == 1
        assert 1 in summary
        assert 2 not in summary


class TestWeightedUpdates:
    def test_weighted_update(self):
        summary = SpaceSaving(capacity=4)
        summary.update(1, 10)
        summary.update(1, 5)
        assert summary.estimate(1) == 15

    def test_update_returns_monitored_count(self):
        summary = SpaceSaving(capacity=4)
        assert summary.update(1) == 1
        assert summary.update(1) == 2


class TestAgainstExact:
    def test_total_monitored_mass_bounded(self, rng):
        """Monitored mass never exceeds stream mass + k*min (sanity)."""
        keys = rng.integers(0, 100, size=5000)
        summary = SpaceSaving(capacity=16)
        exact = ExactCounter()
        summary.update_batch(np.asarray(keys))
        exact.update_batch(np.asarray(keys))
        monitored_mass = sum(count for _, count in summary.top_k(16))
        assert monitored_mass <= exact.total + 16 * (exact.total / 16)
