"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure17" in out
        assert out.count("\n") == 21


class TestRun:
    def test_runs_small_experiment(self, capsys):
        code = main(["run", "figure3", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure3" in out
        assert "|F|=32" in out

    def test_unknown_experiment_errors(self, capsys):
        """Unknown ids fail fast with a one-line error, before any work."""
        code = main(["run", "figure99"])
        err = capsys.readouterr().err
        assert code == 2
        assert "figure99" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_options_forwarded(self, capsys):
        code = main(
            ["run", "table5", "--scale", "0.05", "--synopsis-kb", "64",
             "--filter-items", "16", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "k = 16" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCheckpointRestore:
    def test_roundtrip_asketch(self, capsys, tmp_path):
        path = tmp_path / "asketch.npz"
        code = main(
            ["checkpoint", str(path), "--method", "asketch",
             "--scale", "0.05", "--synopsis-kb", "32"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpointed asketch" in out
        assert path.exists()

        code = main(["restore", str(path), "--top-k", "5", "--query", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restored asketch" in out
        assert "  1. key=" in out
        assert "estimate(1) = " in out

    def test_checkpoint_any_registered_kind(self, capsys, tmp_path):
        path = tmp_path / "ss.npz"
        code = main(
            ["checkpoint", str(path), "--method", "space-saving-min",
             "--scale", "0.05"]
        )
        assert code == 0
        assert "checkpointed space-saving" in capsys.readouterr().out
        code = main(["restore", str(path), "--top-k", "3"])
        assert code == 0
        assert "restored space-saving" in capsys.readouterr().out

    def test_checkpoint_unknown_method(self, capsys, tmp_path):
        code = main(
            ["checkpoint", str(tmp_path / "x.npz"), "--method", "bloom"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "bloom" in err

    def test_restore_missing_metadata(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "bare.npz"
        np.savez_compressed(path, table=np.zeros(4, dtype=np.int64))
        code = main(["restore", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "error during restore" in err

    def test_restore_top_k_unsupported(self, capsys, tmp_path):
        path = tmp_path / "cms.npz"
        code = main(
            ["checkpoint", str(path), "--method", "count-min",
             "--scale", "0.05"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["restore", str(path), "--top-k", "5"])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not answer top-k" in captured.err
