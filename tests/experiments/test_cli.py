"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure17" in out
        assert out.count("\n") == 21


class TestRun:
    def test_runs_small_experiment(self, capsys):
        code = main(["run", "figure3", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure3" in out
        assert "|F|=32" in out

    def test_unknown_experiment_errors(self, capsys):
        code = main(["run", "figure99"])
        err = capsys.readouterr().err
        assert code == 1
        assert "figure99" in err

    def test_options_forwarded(self, capsys):
        code = main(
            ["run", "table5", "--scale", "0.05", "--synopsis-kb", "64",
             "--filter-items", "16", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "k = 16" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
