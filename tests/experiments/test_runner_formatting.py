"""Edge-case tests for the result formatter."""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import _format_cell, format_result


class TestFormatCell:
    def test_zero_float(self):
        assert _format_cell(0.0) == "0"

    def test_large_float_thousands_separator(self):
        assert _format_cell(26739.4) == "26,739"

    def test_mid_float_two_decimals(self):
        assert _format_cell(3.14159) == "3.14"

    def test_tiny_float_scientific(self):
        assert _format_cell(0.0000004) == "4e-07"

    def test_infinity(self):
        assert _format_cell(float("inf")) == "inf"

    def test_int_thousands_separator(self):
        assert _format_cell(1234567) == "1,234,567"

    def test_string_passthrough(self):
        assert _format_cell("Count-Min") == "Count-Min"


class TestFormatResult:
    def test_alignment_and_sections(self):
        result = ExperimentResult(
            experiment_id="x",
            title="Title",
            columns=["name", "value"],
            rows=[{"name": "long-method-name", "value": 1}],
            notes=["note one", "note two"],
        )
        text = format_result(result)
        lines = text.splitlines()
        assert lines[0] == "== x: Title =="
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert text.count("note:") == 2

    def test_empty_rows_render_header_only(self):
        result = ExperimentResult(
            experiment_id="x", title="T", columns=["a"], rows=[]
        )
        text = format_result(result)
        assert "a" in text
