"""Tests for the experiment config, registry and result plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownExperimentError
from repro.experiments import ExperimentConfig, experiment_ids, get_experiment
from repro.experiments.registry import describe
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import format_result


class TestConfig:
    def test_scale_multiplies_sizes(self):
        config = ExperimentConfig(scale=0.5)
        assert config.stream_size == 200_000
        assert config.distinct == 50_000

    def test_sweep_sizes_halved(self):
        config = ExperimentConfig(scale=1.0)
        assert config.sweep_stream_size == config.stream_size // 2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale=0)

    def test_invalid_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(runs=0)

    def test_with_scale_copies(self):
        config = ExperimentConfig(seed=7)
        scaled = config.with_scale(0.1)
        assert scaled.seed == 7
        assert scaled.scale == 0.1
        assert config.scale == 1.0

    def test_queries_scale_down(self):
        assert ExperimentConfig(scale=0.1).queries == 2000


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = experiment_ids()
        for table in range(1, 8):
            assert f"table{table}" in ids
        for figure in (3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17):
            assert f"figure{figure}" in ids
        assert len(ids) == 21

    def test_unknown_id_raises(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("figure99")

    def test_descriptions_nonempty(self):
        for experiment_id in experiment_ids():
            assert describe(experiment_id)

    def test_every_experiment_resolves(self):
        for experiment_id in experiment_ids():
            assert callable(get_experiment(experiment_id))


class TestResultAndFormatting:
    def _result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            columns=["name", "value"],
            rows=[
                {"name": "a", "value": 1.5},
                {"name": "b", "value": 120000.0},
            ],
            notes=["a note"],
        )

    def test_column_accessor(self):
        assert self._result().column("name") == ["a", "b"]

    def test_row_for(self):
        assert self._result().row_for("name", "b")["value"] == 120000.0
        with pytest.raises(KeyError):
            self._result().row_for("name", "zz")

    def test_format_contains_everything(self):
        text = format_result(self._result())
        assert "demo" in text
        assert "a note" in text
        assert "120,000" in text
        assert "1.50" in text
