"""Tests for the shared experiment machinery (method factory, phases)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    METHOD_LABELS,
    build_method,
    full_stream,
    measure_query_phase,
    measure_update_phase,
    modeled_throughput,
    query_set,
    real_stream,
    sketch_bytes_of,
    sweep_stream,
    total_ops,
)
from repro.experiments.config import ExperimentConfig

CONFIG = ExperimentConfig(scale=0.05, seed=2)


class TestBuildMethod:
    @pytest.mark.parametrize("name", sorted(METHOD_LABELS))
    def test_every_method_buildable(self, name):
        method = build_method(name, CONFIG)
        assert hasattr(method, "process_stream")
        assert hasattr(method, "estimate_batch")

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            build_method("bloom", CONFIG)

    def test_same_budget_for_all(self):
        for name in ("count-min", "fcm", "holistic-udaf", "asketch"):
            method = build_method(name, CONFIG)
            assert method.size_bytes <= CONFIG.synopsis_bytes
            assert method.size_bytes > CONFIG.synopsis_bytes * 0.95


class TestOpsPlumbing:
    def test_total_ops_merges_asketch(self):
        asketch = build_method("asketch", CONFIG)
        asketch.process_stream(np.arange(500, dtype=np.int64))
        ops = total_ops(asketch)
        assert ops.filter_probes > 0
        assert ops.hash_evals > 0

    def test_total_ops_merges_hudaf_sketch(self):
        hudaf = build_method("holistic-udaf", CONFIG)
        hudaf.process_stream(np.arange(500, dtype=np.int64))
        ops = total_ops(hudaf)
        assert ops.hash_evals > 0  # lives on the internal sketch

    def test_sketch_bytes_of(self):
        asketch = build_method("asketch", CONFIG)
        assert sketch_bytes_of(asketch) == asketch.sketch.size_bytes
        cms = build_method("count-min", CONFIG)
        assert sketch_bytes_of(cms) == cms.size_bytes


class TestPhases:
    def test_update_phase_counts_items(self):
        method = build_method("count-min", CONFIG)
        keys = np.arange(2000, dtype=np.int64)
        phase = measure_update_phase(method, keys)
        assert phase.n_items == 2000
        assert phase.ops.items == 2000
        assert phase.ops.hash_evals == 2000 * CONFIG.num_hashes
        assert phase.wall_seconds > 0

    def test_query_phase_isolated_from_update(self):
        method = build_method("asketch", CONFIG)
        keys = np.arange(2000, dtype=np.int64)
        measure_update_phase(method, keys)
        query_phase, estimates = measure_query_phase(method, keys[:100])
        assert query_phase.ops.items == 100
        assert len(estimates) == 100
        # Update-phase hashes must not leak into the query phase record.
        assert query_phase.ops.sketch_cell_writes == 0

    def test_modeled_throughput_positive(self):
        method = build_method("count-min", CONFIG)
        phase = measure_update_phase(method, np.arange(500, dtype=np.int64))
        assert modeled_throughput(phase, method) > 0


class TestStreamsAndQueries:
    def test_streams_cached(self):
        first = sweep_stream(CONFIG, 1.5)
        second = sweep_stream(CONFIG, 1.5)
        assert first is second

    def test_full_vs_sweep_sizes(self):
        assert len(full_stream(CONFIG, 1.0)) == CONFIG.stream_size
        assert len(sweep_stream(CONFIG, 1.0)) == CONFIG.sweep_stream_size

    def test_real_streams(self):
        for name in ("ip-trace", "kosarak"):
            stream = real_stream(CONFIG, name)
            assert stream.name == name
            assert len(stream) == CONFIG.stream_size
        with pytest.raises(ConfigurationError):
            real_stream(CONFIG, "nyc-taxi")

    def test_query_set_size(self):
        stream = sweep_stream(CONFIG, 1.0)
        queries = query_set(stream, CONFIG)
        assert len(queries) == CONFIG.queries
