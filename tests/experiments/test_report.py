"""Tests for the markdown report generator."""

from __future__ import annotations

from repro.cli import main
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import generate_report, write_report

TINY = ExperimentConfig(scale=0.05, runs=1, seed=2)


class TestGenerate:
    def test_single_section(self):
        text = generate_report(TINY, ["figure3"])
        assert "## figure3" in text
        assert "| skew |" in text
        assert "scale 0.05" in text

    def test_notes_rendered_as_quotes(self):
        text = generate_report(TINY, ["figure3"])
        assert "> Paper reading" in text

    def test_subset_respected(self):
        text = generate_report(TINY, ["figure3", "table5"])
        assert "## figure3" in text
        assert "## table5" in text
        assert "## table1" not in text


class TestWrite:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "report.md", TINY, ["figure3"])
        assert path.exists()
        assert "# ASketch reproduction report" in path.read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        output = tmp_path / "r.md"
        code = main(
            ["report", str(output), "--scale", "0.05", "--only", "figure3"]
        )
        assert code == 0
        assert output.exists()
        assert "report written" in capsys.readouterr().out

    def test_cli_report_unknown_id(self, tmp_path, capsys):
        code = main(
            ["report", str(tmp_path / "r.md"), "--only", "figure99"]
        )
        assert code == 1
        assert "figure99" in capsys.readouterr().err
