"""Smoke-run every experiment at a tiny scale and check shape invariants.

These are integration tests of the whole stack (generators -> synopses ->
metrics -> result rows); the paper's quantitative shapes are asserted
only where they are robust at the reduced scale.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentConfig, run_experiment

TINY = ExperimentConfig(scale=0.05, runs=2, seed=1)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at tiny scale and share the outputs."""
    cache = {}

    def get(experiment_id: str):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, TINY)
        return cache[experiment_id]

    return get


class TestStructure:
    @pytest.mark.parametrize(
        "experiment_id",
        [
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "figure3", "figure5", "figure6", "figure7",
            "figure8", "figure9", "figure10", "figure11", "figure12",
            "figure13", "figure14", "figure15", "figure16", "figure17",
        ],
    )
    def test_rows_match_columns(self, results, experiment_id):
        result = results(experiment_id)
        assert result.experiment_id == experiment_id
        assert result.rows, experiment_id
        for row in result.rows:
            assert list(row.keys()) == result.columns


class TestTable1Shape:
    def test_asketch_fastest_updates(self, results):
        rows = {r["method"]: r for r in results("table1").rows}
        assert (
            rows["ASketch"]["updates/ms (modeled)"]
            > rows["Count-Min"]["updates/ms (modeled)"]
        )
        assert (
            rows["ASketch"]["updates/ms (modeled)"]
            > rows["Holistic UDAFs"]["updates/ms (modeled)"]
        )

    def test_asketch_fastest_queries(self, results):
        rows = {r["method"]: r for r in results("table1").rows}
        assert (
            rows["ASketch"]["queries/ms (modeled)"]
            > 2 * rows["Count-Min"]["queries/ms (modeled)"]
        )

    def test_asketch_most_accurate(self, results):
        rows = {r["method"]: r for r in results("table1").rows}
        for method in ("Count-Min", "FCM", "Holistic UDAFs"):
            assert (
                rows["ASketch"]["observed error (%)"]
                <= rows[method]["observed error (%)"]
            )


class TestFigure3Shape:
    def test_selectivity_decreases_with_skew(self, results):
        series = results("figure3").column("|F|=32")
        assert series[0] > series[-1]
        assert series == sorted(series, reverse=True)

    def test_bigger_filter_lower_selectivity(self, results):
        for row in results("figure3").rows:
            assert row["|F|=8"] >= row["|F|=32"] >= row["|F|=128"]


class TestFigure5Shape:
    def test_asketch_gains_with_skew(self, results):
        result = results("figure5")
        first = result.rows[0]["ASketch upd/ms"]
        last = result.rows[-1]["ASketch upd/ms"]
        assert last > 3 * first

    def test_count_min_flat(self, results):
        series = results("figure5").column("Count-Min upd/ms")
        assert max(series) / min(series) < 1.05

    def test_asketch_overtakes_count_min(self, results):
        result = results("figure5")
        high_skew = result.rows[-1]
        assert high_skew["ASketch upd/ms"] > 5 * high_skew["Count-Min upd/ms"]


class TestAccuracyShapes:
    def test_figure7_asketch_beats_cms_at_high_skew(self, results):
        rows = results("figure7").rows
        last = rows[-1]  # skew 1.8
        assert last["ASketch err (%)"] <= last["Count-Min err (%)"]

    def test_figure8_filter_helps_fcm(self, results):
        rows = results("figure8").rows
        last = rows[-1]
        assert last["ASketch-FCM err (%)"] <= last["FCM err (%)"]

    def test_table5_precision_high_at_skew(self, results):
        result = results("table5")
        assert result.row_for("skew", 1.5)["precision-at-k"] >= 0.9
        assert result.row_for("skew", 2.0)["precision-at-k"] >= 0.9

    def test_table6_stream_summary_monitors_fewer(self, results):
        rows = {r["filter type"]: r for r in results("table6").rows}
        assert rows["stream-summary"]["items monitored"] == 4
        assert rows["vector"]["items monitored"] == 32


class TestExchangeAndSelectivity:
    def test_figure9_exchanges_decline(self, results):
        series = results("figure9").column("exchanges")
        assert series[0] > series[-1]
        assert series[-1] < 100

    def test_figure17_predicted_close_to_achieved(self, results):
        for row in results("figure17").rows:
            assert row["achieved N2/N"] == pytest.approx(
                row["predicted N2/N"], abs=0.12
            )


class TestParallelShapes:
    def test_figure12_speedup_band(self, results):
        rows = results("figure12").rows
        speedups = {row["skew"]: row["ASketch pipeline speedup"] for row in rows}
        midband = max(speedups[s] for s in (1.25, 1.5, 1.75, 2.0))
        assert midband > 1.4
        assert speedups[3.0] < midband

    def test_figure13_linear_scaling_and_gap(self, results):
        rows = results("figure13").rows
        first, last = rows[0], rows[-1]
        assert last["cores"] == 32
        assert last["ASketch items/ms"] > 25 * first["ASketch items/ms"]
        assert last["ASketch/CMS ratio"] > 2.0

    def test_figure14_relaxed_beats_strict(self, results):
        rows = results("figure14").rows
        mid = [row for row in rows if 0.75 <= row["skew"] <= 1.75]
        relaxed = sum(row["relaxed-heap items/ms"] for row in mid)
        strict = sum(row["strict-heap items/ms"] for row in mid)
        assert relaxed > strict


class TestSizeSensitivity:
    def test_figure15_throughput_decays_for_large_filters(self, results):
        rows = results("figure15").rows
        by_label = {row["filter size"]: row for row in rows}
        small = by_label["0.4KB (32 items)"]["items/ms (modeled)"]
        large = by_label["12.0KB (1024 items)"]["items/ms (modeled)"]
        assert small > large

    def test_figure16_tail_error_comparable(self, results):
        for row in results("figure16").rows:
            cms, asketch = row["Count-Min ARE"], row["ASketch ARE"]
            assert asketch <= cms * 3 + 1e-6

    def test_table7_worst_items_comparable(self, results):
        for row in results("table7").rows:
            cms = row["Count-Min avg top-10 error"]
            asketch = row["ASketch avg top-10 error"]
            assert asketch <= cms * 3 + 5


class TestTable2:
    def test_analytic_rows_consistent(self, results):
        result = results("table2")
        cm = result.row_for("method", "Count-Min")
        asketch = result.row_for("method", "ASketch")
        assert asketch["throughput (items/ms)"] > cm["throughput (items/ms)"]
        assert (
            asketch["expected error bound"] < cm["expected error bound"]
        )
        assert cm["error probability"] == pytest.approx(math.exp(-8))
