"""Tests for the replication-statistics helper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import ExperimentResult
from repro.experiments.stats import (
    ColumnSummary,
    replication_table,
    run_replicates,
    summarize_column,
)

TINY = ExperimentConfig(scale=0.05, runs=1, seed=5)


def fake_result(values: dict[str, float]) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="demo",
        columns=["skew", "metric"],
        rows=[{"skew": key, "metric": value} for key, value in values.items()],
    )


class TestSummarize:
    def test_mean_std_min_max(self):
        results = [
            fake_result({"a": 1.0, "b": 10.0}),
            fake_result({"a": 3.0, "b": 10.0}),
        ]
        summary = summarize_column(results, "skew", "metric")
        assert summary["a"] == ColumnSummary(2.0, pytest.approx(1.414, rel=1e-3), 1.0, 3.0, 2)
        assert summary["b"].std == 0.0

    def test_single_replicate_std_zero(self):
        summary = summarize_column([fake_result({"a": 4.0})], "skew", "metric")
        assert summary["a"].std == 0.0
        assert summary["a"].replicates == 1

    def test_non_finite_values_excluded(self):
        results = [
            fake_result({"a": 2.0}),
            fake_result({"a": float("inf")}),
        ]
        summary = summarize_column(results, "skew", "metric")
        assert summary["a"].mean == 2.0
        assert summary["a"].replicates == 1

    def test_empty_results_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_column([], "skew", "metric")


class TestRunReplicates:
    def test_distinct_seeds_distinct_results(self):
        results = run_replicates("table5", TINY, 2)
        assert len(results) == 2
        # Same structure, possibly different precision values.
        assert results[0].columns == results[1].columns

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            run_replicates("table5", TINY, 0)


class TestReplicationTable:
    def test_end_to_end(self):
        table = replication_table(
            "table5", TINY, 2, key_column="skew",
            value_column="precision-at-k",
        )
        assert table.experiment_id == "table5-replicated"
        assert len(table.rows) == 6
        for row in table.rows:
            assert 0.0 <= row["precision-at-k (mean)"] <= 1.0
            assert row["precision-at-k (min)"] <= row["precision-at-k (max)"]
