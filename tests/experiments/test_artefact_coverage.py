"""Meta-tests: every paper artefact has its experiment and benchmark."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.registry import experiment_ids

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
EXPERIMENT_DIR = REPO_ROOT / "src" / "repro" / "experiments"


class TestCoverage:
    def test_every_artefact_has_a_bench(self):
        missing = [
            experiment_id
            for experiment_id in experiment_ids()
            if not (BENCH_DIR / f"bench_{experiment_id}.py").exists()
        ]
        assert missing == []

    def test_every_artefact_has_an_experiment_module(self):
        missing = [
            experiment_id
            for experiment_id in experiment_ids()
            if not (EXPERIMENT_DIR / f"exp_{experiment_id}.py").exists()
        ]
        assert missing == []

    def test_no_orphan_experiment_modules(self):
        registered = {f"exp_{eid}.py" for eid in experiment_ids()}
        on_disk = {
            path.name
            for path in EXPERIMENT_DIR.glob("exp_*.py")
        }
        assert on_disk == registered

    @pytest.mark.parametrize("experiment_id", experiment_ids())
    def test_experiment_module_documents_the_paper_artefact(
        self, experiment_id
    ):
        """Each module's docstring names its table/figure explicitly."""
        module_path = EXPERIMENT_DIR / f"exp_{experiment_id}.py"
        text = module_path.read_text(encoding="utf-8")
        label = experiment_id.replace("table", "Table ").replace(
            "figure", "Figure "
        )
        assert label in text, f"{module_path.name} lacks '{label}'"
