"""Deletion (negative-count update) tests — the paper's Appendix A."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.counters.exact import ExactCounter
from repro.errors import NegativeCountError

@pytest.fixture(params=["vector", "strict-heap", "relaxed-heap",
                        "stream-summary"])
def asketch(request):
    return ASketch(
        total_bytes=32 * 1024, filter_items=8, filter_kind=request.param,
        seed=9,
    )


class TestFilterResidentDeletion:
    def test_delete_within_resident_mass(self, asketch):
        """new - old >= amount: only new_count is reduced (case 2)."""
        asketch.update(1, 10)  # filter resident: (10, 0)
        asketch.remove(1, 4)
        assert asketch.filter.get_counts(1) == (6, 0)
        assert asketch.query(1) == 6

    def test_delete_exactly_resident_mass(self, asketch):
        asketch.update(1, 10)
        asketch.remove(1, 10)
        assert asketch.filter.get_counts(1) == (0, 0)
        assert asketch.query(1) == 0

    def test_delete_spilling_into_sketch(self, asketch):
        """new - old < amount: the spill also reduces the sketch (case 3)."""
        # Put key 1 into the sketch first, then exchange it into the
        # filter so old_count > 0.
        asketch.update(2, 5)  # fills one slot
        for _ in range(7):
            asketch.filter.insert(1000 + _, 100, 0)  # fill remaining slots
        assert asketch.filter.is_full
        asketch.update(1, 3)   # goes to sketch
        asketch.update(1, 3)   # sketch count 6 > min new_count? min is 5.
        counts = asketch.filter.get_counts(1)
        assert counts is not None and counts[0] >= 6  # exchanged in
        new, old = counts
        assert old > 0
        asketch.update(1, 2)   # resident mass now 2
        asketch.remove(1, 5)   # spill = 3 beyond the resident 2
        new_after, old_after = asketch.filter.get_counts(1)
        assert new_after == new + 2 - 5
        assert new_after == old_after  # all resident mass consumed
        # The sketch saw a negative update for the spill.
        assert asketch.sketch.estimate(1) <= new  # reduced

    def test_delete_below_zero_rejected(self, asketch):
        asketch.update(1, 3)
        with pytest.raises(NegativeCountError):
            asketch.remove(1, 4)

    def test_negative_remove_amount_rejected(self, asketch):
        asketch.update(1, 3)
        with pytest.raises(NegativeCountError):
            asketch.remove(1, -2)


class TestSketchResidentDeletion:
    def test_delete_unmonitored_goes_to_sketch(self, asketch):
        for key in range(8):
            asketch.update(key, 50)  # fill the filter
        asketch.update(99, 5)        # 99 lives in the sketch
        asketch.remove(99, 3)
        assert asketch.query(99) >= 2
        # One-sided guarantee retained.
        assert asketch.query(99) >= 2


class TestGuaranteeUnderChurn:
    def test_one_sided_after_mixed_workload(self, rng):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8, seed=11)
        exact = ExactCounter()
        for _ in range(20000):
            key = int(rng.zipf(1.7)) % 500
            if rng.random() < 0.15 and exact.count_of(key) > 0:
                exact.update(key, -1)
                asketch.remove(key, 1)
            else:
                exact.update(key, 1)
                asketch.update(key, 1)
        for key, true in exact.items():
            assert asketch.query(key) >= true

    def test_no_exchange_on_deletion_path(self, rng):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=4, seed=12)
        for key in range(4):
            asketch.update(key, 10)
        asketch.update(50, 100)  # sketch resident with huge count
        exchanges = asketch.exchange_count
        asketch.remove(50, 1)    # would "overtake" but must not exchange
        assert asketch.exchange_count == exchanges

    def test_total_mass_tracks_deletions(self):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=4)
        asketch.update(1, 10)
        asketch.remove(1, 4)
        assert asketch.total_mass == 6
