"""Tests for synopsis persistence (checkpoint / restore)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import StreamFormatError
from repro.persistence import (
    load_asketch,
    load_count_min,
    save_asketch,
    save_count_min,
)
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(30_000, 8_000, 1.4, seed=95)


class TestCountMinRoundtrip:
    def test_state_identical(self, stream, tmp_path):
        sketch = CountMinSketch(8, total_bytes=32 * 1024, seed=4)
        sketch.update_batch(stream.keys)
        path = tmp_path / "cms.npz"
        save_count_min(sketch, path)
        restored = load_count_min(path)
        np.testing.assert_array_equal(restored.table, sketch.table)
        assert restored.num_hashes == sketch.num_hashes
        assert restored.row_width == sketch.row_width

    def test_future_behaviour_identical(self, stream, tmp_path):
        """After restore, further updates land in the same cells."""
        sketch = CountMinSketch(4, row_width=512, seed=5)
        sketch.update_batch(stream.keys[:1000])
        path = tmp_path / "cms.npz"
        save_count_min(sketch, path)
        restored = load_count_min(path)
        for key in stream.keys[1000:2000].tolist():
            sketch.update(key)
            restored.update(key)
        np.testing.assert_array_equal(restored.table, sketch.table)
        probe = stream.keys[:50]
        assert restored.estimate_batch(probe) == sketch.estimate_batch(probe)

    def test_conservative_flag_survives(self, tmp_path):
        sketch = CountMinSketch(4, row_width=64, seed=1, conservative=True)
        path = tmp_path / "cms.npz"
        save_count_min(sketch, path)
        assert load_count_min(path).conservative


class TestASketchRoundtrip:
    def test_queries_identical(self, stream, tmp_path):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=16, seed=6)
        asketch.process_stream(stream.keys)
        path = tmp_path / "asketch.npz"
        save_asketch(asketch, path)
        restored = load_asketch(path)
        probe = stream.keys[:300]
        assert restored.query_batch(probe) == asketch.query_batch(probe)
        assert restored.top_k(16) == asketch.top_k(16)

    def test_statistics_survive(self, stream, tmp_path):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=16, seed=6)
        asketch.process_stream(stream.keys)
        path = tmp_path / "asketch.npz"
        save_asketch(asketch, path)
        restored = load_asketch(path)
        assert restored.total_mass == asketch.total_mass
        assert restored.overflow_mass == asketch.overflow_mass
        assert restored.exchange_count == asketch.exchange_count
        assert restored.achieved_selectivity == asketch.achieved_selectivity

    def test_continues_identically(self, stream, tmp_path):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=16, seed=7)
        asketch.process_stream(stream.keys[:15_000])
        path = tmp_path / "asketch.npz"
        save_asketch(asketch, path)
        restored = load_asketch(path)
        asketch.process_stream(stream.keys[15_000:])
        restored.process_stream(stream.keys[15_000:])
        probe = stream.keys[:300]
        assert restored.query_batch(probe) == asketch.query_batch(probe)
        assert restored.exchange_count == asketch.exchange_count

    @pytest.mark.parametrize(
        "kind", ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
    )
    def test_all_filter_kinds(self, stream, tmp_path, kind):
        asketch = ASketch(
            total_bytes=32 * 1024, filter_items=8, filter_kind=kind, seed=8
        )
        asketch.process_stream(stream.keys[:5000])
        path = tmp_path / "asketch.npz"
        save_asketch(asketch, path)
        restored = load_asketch(path)
        assert restored.filter_kind == kind
        assert {
            (e.key, e.new_count, e.old_count)
            for e in restored.filter.entries()
        } == {
            (e.key, e.new_count, e.old_count)
            for e in asketch.filter.entries()
        }

    @pytest.mark.parametrize("backend", ["count-sketch", "fcm"])
    def test_non_count_min_backends_roundtrip(
        self, stream, tmp_path, backend
    ):
        """Every state-protocol backend is persistable, not just Count-Min."""
        asketch = ASketch(
            total_bytes=32 * 1024, filter_items=8,
            sketch_backend=backend, seed=3,
        )
        asketch.process_stream(stream.keys[:5000])
        path = tmp_path / "asketch.npz"
        save_asketch(asketch, path)
        restored = load_asketch(path)
        assert type(restored.sketch) is type(asketch.sketch)
        probe = stream.keys[:200]
        assert restored.query_batch(probe) == asketch.query_batch(probe)

    def test_backend_without_state_protocol_rejected(self, tmp_path):
        class OpaqueSketch:
            size_bytes = 0

            def update(self, key, amount=1):
                return 0

            def estimate(self, key):
                return 0

        asketch = ASketch(sketch=OpaqueSketch(), filter_items=8)
        with pytest.raises(StreamFormatError):
            save_asketch(asketch, tmp_path / "x.npz")


class TestHierarchicalRoundtrip:
    def test_state_and_queries_identical(self, stream, tmp_path):
        from repro.persistence import load_hierarchical, save_hierarchical
        from repro.sketches.hierarchical import HierarchicalCountMin

        hierarchy = HierarchicalCountMin(
            13, total_bytes=128 * 1024, num_hashes=4, seed=9
        )
        hierarchy.update_batch(stream.keys % 8192)
        path = tmp_path / "hier.npz"
        save_hierarchical(hierarchy, path)
        restored = load_hierarchical(path)
        assert restored.domain_bits == hierarchy.domain_bits
        assert restored.total == hierarchy.total
        for low, high in [(0, 8191), (100, 200), (4000, 8000)]:
            assert restored.range_count(low, high) == (
                hierarchy.range_count(low, high)
            )
        assert restored.top_k(10) == hierarchy.top_k(10)

    def test_continues_identically(self, stream, tmp_path):
        from repro.persistence import load_hierarchical, save_hierarchical
        from repro.sketches.hierarchical import HierarchicalCountMin

        hierarchy = HierarchicalCountMin(
            10, total_bytes=64 * 1024, num_hashes=4, seed=10
        )
        keys = stream.keys % 1024
        hierarchy.update_batch(keys[:10_000])
        path = tmp_path / "hier.npz"
        save_hierarchical(hierarchy, path)
        restored = load_hierarchical(path)
        hierarchy.update_batch(keys[10_000:20_000])
        restored.update_batch(keys[10_000:20_000])
        for key in range(0, 1024, 31):
            assert restored.estimate(key) == hierarchy.estimate(key)


def _write_archive(path, metadata: dict, **arrays) -> None:
    """Forge a raw archive to exercise the loader's error paths."""
    blob = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, metadata=blob, **arrays)


class TestErrorHandling:
    def test_kind_mismatch(self, tmp_path):
        sketch = CountMinSketch(4, row_width=64)
        path = tmp_path / "cms.npz"
        save_count_min(sketch, path)
        with pytest.raises(StreamFormatError):
            load_asketch(path)

    def test_hierarchical_kind_mismatch(self, tmp_path):
        from repro.persistence import load_hierarchical

        sketch = CountMinSketch(4, row_width=64)
        path = tmp_path / "cms.npz"
        save_count_min(sketch, path)
        with pytest.raises(StreamFormatError):
            load_hierarchical(path)

    def test_save_wrapper_rejects_wrong_type(self, tmp_path):
        sketch = CountMinSketch(4, row_width=64)
        with pytest.raises(StreamFormatError, match="expected a asketch"):
            save_asketch(sketch, tmp_path / "x.npz")

    def test_save_synopsis_rejects_non_synopsis(self, tmp_path):
        from repro.persistence import save_synopsis

        with pytest.raises(StreamFormatError):
            save_synopsis(object(), tmp_path / "x.npz")

    def test_missing_metadata_entry(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "bare.npz"
        np.savez_compressed(path, table=np.zeros(4, dtype=np.int64))
        with pytest.raises(StreamFormatError, match="no metadata entry"):
            load_synopsis(path)

    def test_corrupt_metadata_blob(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "corrupt.npz"
        garbage = np.frombuffer(b"\xfe\xed{{{not json", dtype=np.uint8)
        np.savez_compressed(path, metadata=garbage)
        with pytest.raises(StreamFormatError, match="corrupt") as excinfo:
            load_synopsis(path)
        assert excinfo.value.__cause__ is not None

    def test_metadata_not_an_object(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "list.npz"
        blob = np.frombuffer(b"[1, 2, 3]", dtype=np.uint8)
        np.savez_compressed(path, metadata=blob)
        with pytest.raises(StreamFormatError, match="expected a JSON object"):
            load_synopsis(path)

    def test_unsupported_version(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "future.npz"
        _write_archive(
            path, {"version": 99, "kind": "count-min", "params": {}}
        )
        with pytest.raises(StreamFormatError, match="version 99"):
            load_synopsis(path)

    def test_unknown_kind(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "alien.npz"
        _write_archive(
            path,
            {"version": 2, "kind": "bloom-filter", "params": {}, "extra": {}},
        )
        with pytest.raises(StreamFormatError, match="unknown synopsis kind"):
            load_synopsis(path)

    def test_non_string_kind(self, tmp_path):
        from repro.persistence import load_synopsis

        path = tmp_path / "badkind.npz"
        _write_archive(path, {"version": 2, "kind": 7, "params": {}})
        with pytest.raises(StreamFormatError, match="kind is 7"):
            load_synopsis(path)
