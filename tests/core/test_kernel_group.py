"""Tests for the SPMD kernel group (§6.3 semantics) and heavy hitters."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.core.kernel_group import KernelGroup
from repro.errors import ConfigurationError
from repro.streams.zipf import zipf_stream

@pytest.fixture(scope="module")
def streams():
    """Four independent streams, as in the paper's multi-stream setup."""
    return [
        zipf_stream(20_000, 5_000, 1.5, seed=70 + index)
        for index in range(4)
    ]


class TestConstruction:
    def test_zero_kernels_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelGroup(0, total_bytes=64 * 1024)

    def test_kernels_get_distinct_seeds(self):
        group = KernelGroup(3, total_bytes=64 * 1024, seed=1)
        tables = [kernel.sketch.hash_columns(12345) for kernel in group.kernels]
        assert tables[0] != tables[1] or tables[1] != tables[2]

    def test_len(self):
        assert len(KernelGroup(5, total_bytes=64 * 1024)) == 5


class TestMergedQueries:
    def test_sum_semantics_one_sided(self, streams):
        group = KernelGroup(4, total_bytes=64 * 1024, seed=2)
        total_truth: dict[int, int] = {}
        for index, stream in enumerate(streams):
            group.process_stream_on(index, stream.keys)
            for key, count in stream.exact.items():
                total_truth[key] = total_truth.get(key, 0) + count
        # Merged estimates over-estimate the merged truth.
        probe = list(total_truth)[:500]
        for key in probe:
            assert group.query(key) >= total_truth[key]

    def test_heavy_item_near_exact(self, streams):
        group = KernelGroup(4, total_bytes=64 * 1024, seed=2)
        total_truth: dict[int, int] = {}
        for index, stream in enumerate(streams):
            group.process_stream_on(index, stream.keys)
            for key, count in stream.exact.items():
                total_truth[key] = total_truth.get(key, 0) + count
        top_key = max(total_truth, key=total_truth.get)
        merged = group.query(top_key)
        assert merged >= total_truth[top_key]
        assert merged <= total_truth[top_key] * 1.02 + 8

    def test_query_batch(self, streams):
        group = KernelGroup(2, total_bytes=64 * 1024, seed=3)
        group.process_stream_on(0, streams[0].keys)
        group.process_stream_on(1, streams[1].keys)
        probe = streams[0].keys[:20]
        assert group.query_batch(probe) == [
            group.query(int(k)) for k in probe
        ]


class TestScatterAndTopK:
    def test_scatter_covers_stream(self, streams):
        group = KernelGroup(4, total_bytes=64 * 1024, seed=4)
        group.scatter_stream(streams[0].keys)
        assert group.total_mass == len(streams[0])

    def test_merged_topk_recovers_global_heavies(self, streams):
        group = KernelGroup(4, total_bytes=64 * 1024, seed=5)
        group.scatter_stream(streams[0].keys)
        reported = {key for key, _ in group.top_k(10)}
        truth = {key for key, _ in streams[0].true_top_k(10)}
        assert len(reported & truth) >= 8

    def test_combined_ops_sum(self, streams):
        group = KernelGroup(2, total_bytes=64 * 1024, seed=6)
        group.scatter_stream(streams[0].keys[:10_000])
        assert group.combined_ops().items == 10_000


class TestHeavyHitters:
    def test_threshold_query(self, skewed_stream):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=7)
        asketch.process_stream(skewed_stream.keys)
        threshold = int(0.01 * len(skewed_stream))
        reported = asketch.heavy_hitters(threshold)
        true_heavies = {
            key
            for key, count in skewed_stream.exact.items()
            if count >= threshold
        }
        reported_keys = {key for key, _ in reported}
        # Complete recall of true heavy hitters...
        assert true_heavies <= reported_keys
        # ...and every reported estimate clears the threshold.
        assert all(estimate >= threshold for _, estimate in reported)
        # Sorted descending.
        estimates = [estimate for _, estimate in reported]
        assert estimates == sorted(estimates, reverse=True)

    def test_invalid_threshold(self):
        asketch = ASketch(total_bytes=64 * 1024)
        with pytest.raises(ConfigurationError):
            asketch.heavy_hitters(0)
