"""Tests for the closed-form analysis module (§4, Theorem 1, Appendix C)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import analysis
from repro.errors import ConfigurationError


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probabilities = analysis.zipf_probabilities(1.5, 1000)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_skew_zero_is_uniform(self):
        probabilities = analysis.zipf_probabilities(0.0, 100)
        np.testing.assert_allclose(probabilities, 0.01)

    def test_top_k_mass_monotone_in_k(self):
        masses = [
            analysis.zipf_top_k_mass(1.2, 10_000, k) for k in (1, 8, 64, 512)
        ]
        assert masses == sorted(masses)

    def test_top_k_mass_bounds(self):
        assert analysis.zipf_top_k_mass(1.5, 100, 0) == 0.0
        assert analysis.zipf_top_k_mass(1.5, 100, 100) == pytest.approx(1.0)
        assert analysis.zipf_top_k_mass(1.5, 100, 1000) == pytest.approx(1.0)

    def test_invalid_distinct_rejected(self):
        with pytest.raises(ConfigurationError):
            analysis.zipf_weights(1.0, 0)


class TestFilterSelectivity:
    def test_paper_reading_skew_15(self):
        """Figure 3: at skew 1.5, top-32 of 8M items carry ~80% of mass."""
        selectivity = analysis.predicted_filter_selectivity(1.5, 8_000_000, 32)
        assert 0.10 < selectivity < 0.30

    def test_monotone_decreasing_in_skew(self):
        values = [
            analysis.predicted_filter_selectivity(skew, 100_000, 32)
            for skew in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_plateau_beyond_threshold_filter_size(self):
        """Figure 3's observation: growing |F| beyond ~32 gains little."""
        small = analysis.predicted_filter_selectivity(1.5, 1_000_000, 8)
        mid = analysis.predicted_filter_selectivity(1.5, 1_000_000, 32)
        large = analysis.predicted_filter_selectivity(1.5, 1_000_000, 128)
        assert small - mid > mid - large

    def test_near_one_at_uniform(self):
        value = analysis.predicted_filter_selectivity(0.0, 100_000, 32)
        assert value == pytest.approx(1.0 - 32 / 100_000)


class TestErrorBounds:
    def test_count_min_bound(self):
        assert analysis.count_min_error_bound(4096, 1_000_000) == (
            pytest.approx(math.e / 4096 * 1_000_000)
        )

    def test_asketch_bound_smaller_on_skew(self):
        """Table 2's point: (e/(h-s_f/w)) N2 (N2/N) << (e/h) N when
        N2 << N."""
        cm = analysis.count_min_error_bound(4096, 1_000_000)
        asketch = analysis.asketch_error_bound(
            4096, 8, 384, 1_000_000, 200_000
        )
        assert asketch < cm / 10

    def test_asketch_bound_equals_cm_at_selectivity_one(self):
        """With everything overflowing and no filter space, bounds match."""
        cm = analysis.count_min_error_bound(4096, 500_000)
        asketch = analysis.asketch_error_bound(4096, 8, 0, 500_000, 500_000)
        assert asketch == pytest.approx(cm)

    def test_filter_consuming_sketch_rejected(self):
        with pytest.raises(ConfigurationError):
            analysis.asketch_error_bound(64, 8, 64 * 8 * 4, 1000, 100)

    def test_theorem1_bound_value(self):
        """dE <= (e s_f / (w h (h - s_f/w))) N, and it is small."""
        bound = analysis.theorem1_error_increase_bound(
            4096, 8, 384, 32_000_000
        )
        manual = (
            math.e * 384 / (8 * 4096 * (4096 - 384 / 8))
        ) * 32_000_000
        assert bound == pytest.approx(manual)
        # "reasonably small even for a large size stream": < 0.1% of N.
        assert bound < 32_000_000 * 0.001

    def test_theorem1_observed_increase_within_bound(self, skewed_stream):
        """Empirical check: shrinking Count-Min by the filter bytes
        increases tail error by less than the Theorem 1 bound."""
        from repro.sketches.count_min import CountMinSketch

        total = 32 * 1024
        filter_bytes = 32 * 12
        full = CountMinSketch(8, total_bytes=total, seed=3)
        reduced = CountMinSketch(8, total_bytes=total - filter_bytes, seed=3)
        full.update_batch(skewed_stream.keys)
        reduced.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        keys = [key for key, _ in exact.top_k(800)[300:800]]
        mean_increase = np.mean(
            [reduced.estimate(k) - full.estimate(k) for k in keys]
        )
        bound = analysis.theorem1_error_increase_bound(
            full.row_width, 8, filter_bytes, exact.total
        )
        assert mean_increase <= bound


class TestThroughputModel:
    def test_predicted_update_time(self):
        assert analysis.predicted_update_time(1e-9, 10e-9, 0.2) == (
            pytest.approx(3e-9)
        )

    def test_selectivity_validated(self):
        with pytest.raises(ConfigurationError):
            analysis.predicted_update_time(1e-9, 1e-8, 1.5)

    def test_table2_rows(self):
        rows = analysis.table2_comparison(
            num_hashes=8,
            row_width=4096,
            filter_bytes=384,
            total_count=1_000_000,
            sketch_count=200_000,
            sketch_item_time=150e-9,
            filter_item_time=10e-9,
        )
        cm, asketch = rows
        assert cm.method == "Count-Min"
        assert asketch.method == "ASketch"
        assert asketch.frequency_estimation_time < cm.frequency_estimation_time
        assert asketch.stream_processing_throughput > (
            cm.stream_processing_throughput
        )
        assert asketch.frequency_estimation_error < (
            cm.frequency_estimation_error
        )
        assert cm.error_probability == pytest.approx(math.exp(-8))
        assert "top-k" in asketch.supported_queries[1]


class TestExchangeEstimates:
    def test_average_case_formula(self):
        assert analysis.expected_exchanges_uniform(32_000_000, 32, 4084) == (
            pytest.approx(32_000_000 * 32 / 4084)
        )

    def test_best_case_formula(self):
        assert analysis.best_case_exchanges_uniform(32_000_000, 4084) == (
            pytest.approx(32_000_000 / 4084)
        )

    def test_worst_case_lemmas(self):
        assert analysis.worst_case_exchanges_no_collisions(1000) == 500
        assert analysis.worst_case_exchanges_with_collisions(1000) == 1000
