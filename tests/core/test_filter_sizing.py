"""Tests for the analytic filter-size optimiser (§4's trade-off)."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    modeled_asketch_cycles_per_item,
    optimal_filter_size,
)
from repro.errors import ConfigurationError

BUDGET = 128 * 1024
DOMAIN = 100_000


class TestModeledCycles:
    def test_zero_filter_equals_count_min_cost(self):
        """With no filter everything overflows: the plain CMS cost."""
        cycles = modeled_asketch_cycles_per_item(0, 1.5, DOMAIN, BUDGET)
        assert cycles == pytest.approx(10 + 8 * (22 + 20))

    def test_u_shape_at_skew(self):
        """Cost falls then rises with filter size (Figure 15a's shape)."""
        sizes = (8, 32, 256, 1024)
        cycles = [
            modeled_asketch_cycles_per_item(s, 1.5, DOMAIN, BUDGET)
            for s in sizes
        ]
        assert cycles[1] < cycles[0]        # 32 beats 8
        assert cycles[1] < cycles[2] < cycles[3]  # then monotone worse

    def test_filter_never_helps_at_uniform(self):
        """At skew 0 the probe is pure overhead."""
        no_filter = modeled_asketch_cycles_per_item(0, 0.0, DOMAIN, BUDGET)
        with_filter = modeled_asketch_cycles_per_item(
            32, 0.0, DOMAIN, BUDGET
        )
        assert with_filter > no_filter * 0.99

    def test_budget_exhaustion_rejected(self):
        with pytest.raises(ConfigurationError):
            modeled_asketch_cycles_per_item(10_000, 1.5, DOMAIN, 4096)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            modeled_asketch_cycles_per_item(-1, 1.5, DOMAIN, BUDGET)


class TestOptimalSize:
    def test_matches_figure15_peak_at_skew_15(self):
        """The paper's measured throughput peak (32 items, Figure 15a)
        falls out of the closed-form optimisation."""
        assert optimal_filter_size(1.5, DOMAIN, BUDGET) == 32

    def test_no_filter_at_uniform(self):
        assert optimal_filter_size(0.0, DOMAIN, BUDGET) == 0

    def test_small_filter_at_high_skew(self):
        """Past skew ~2 a handful of items carries everything."""
        assert optimal_filter_size(3.0, DOMAIN, BUDGET) <= 32

    def test_monotone_band(self):
        """The optimum stays in the paper's 'small filter' band across
        the real-world skew range."""
        for skew in (1.0, 1.25, 1.5, 1.75, 2.0):
            best = optimal_filter_size(skew, DOMAIN, BUDGET)
            assert 8 <= best <= 128

    def test_tiny_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_filter_size(1.5, DOMAIN, 16, candidates=(1024,))

    def test_custom_candidates(self):
        best = optimal_filter_size(
            1.5, DOMAIN, BUDGET, candidates=(8, 1024)
        )
        assert best == 8
