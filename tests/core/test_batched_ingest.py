"""Equivalence tests for the vectorised batched ingest path.

``ASketch.process_batch`` is specified as a *chunk-granularity
reordering* of the scalar Algorithm 1 loop:

* with single-tuple chunks it must be bit-for-bit identical to
  ``process_stream`` — filter contents, sketch cells, bookkeeping,
  estimates — including full-filter exchange cascades;
* with larger chunks it must stay identical whenever no tuple overflows
  past a full filter (the chunk's misses fit in free slots), because
  then no exchange can be reordered;
* in the general case only exchange *timing* may differ, so the
  one-sided guarantee, mass conservation and the Lemma-1 style bound
  must hold for every chunking.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.core.filters import make_filter
from repro.errors import ConfigurationError, NegativeCountError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch

FILTER_KINDS = ["vector", "strict-heap", "relaxed-heap", "stream-summary"]


def build_pair(kind: str, backend: str = "count-min", filter_items: int = 4):
    """Two identically-seeded ASketches (scalar vs batched driver)."""

    def one() -> ASketch:
        if backend == "count-min":
            sketch = CountMinSketch(num_hashes=3, row_width=19, seed=7)
        elif backend == "count-min-conservative":
            sketch = CountMinSketch(
                num_hashes=3, row_width=19, seed=7, conservative=True
            )
        elif backend == "count-sketch":
            sketch = CountSketch(num_hashes=3, row_width=19, seed=7)
        else:
            raise AssertionError(backend)
        return ASketch(
            sketch=sketch, filter_items=filter_items, filter_kind=kind
        )

    return one(), one()


def filter_state(asketch: ASketch) -> dict[int, tuple[int, int]]:
    return {
        entry.key: (entry.new_count, entry.old_count)
        for entry in asketch.filter.entries()
    }


def assert_identical(scalar: ASketch, batched: ASketch, domain) -> None:
    """Full-state equality: filter, bookkeeping, and every estimate."""
    assert filter_state(scalar) == filter_state(batched)
    assert scalar.total_mass == batched.total_mass
    assert scalar.overflow_mass == batched.overflow_mass
    assert scalar.miss_events == batched.miss_events
    assert scalar.exchange_count == batched.exchange_count
    keys = sorted(set(int(k) for k in domain))
    assert scalar.query_batch(keys) == batched.query_batch(keys)


class TestSingleTupleChunks:
    """Chunk size 1 exercises every scalar branch, exchanges included."""

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_exact_equivalence_all_filters(self, kind):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 150, size=4000, dtype=np.int64)
        scalar, batched = build_pair(kind)
        scalar.process_stream(keys)
        for index in range(keys.shape[0]):
            batched.process_batch(keys[index : index + 1])
        assert scalar.exchange_count > 0  # the hard path was exercised
        assert_identical(scalar, batched, keys.tolist())

    @pytest.mark.parametrize(
        "backend", ["count-min", "count-min-conservative", "count-sketch"]
    )
    def test_exact_equivalence_all_backends(self, backend):
        rng = np.random.default_rng(12)
        keys = rng.integers(0, 120, size=3000, dtype=np.int64)
        scalar, batched = build_pair("relaxed-heap", backend)
        scalar.process_stream(keys)
        for index in range(keys.shape[0]):
            batched.process_batch(keys[index : index + 1])
        assert_identical(scalar, batched, keys.tolist())

    def test_weighted_tuples_match_scalar_updates(self):
        rng = np.random.default_rng(13)
        keys = rng.integers(0, 60, size=800, dtype=np.int64)
        counts = rng.integers(0, 9, size=800, dtype=np.int64)
        scalar, batched = build_pair("relaxed-heap")
        for key, count in zip(keys.tolist(), counts.tolist()):
            scalar.process(key, count)
        for index in range(keys.shape[0]):
            batched.process_batch(
                keys[index : index + 1], counts[index : index + 1]
            )
        assert_identical(scalar, batched, keys.tolist())

    def test_miss_trace_matches_scalar(self):
        rng = np.random.default_rng(14)
        keys = rng.integers(0, 100, size=1500, dtype=np.int64)
        scalar, batched = build_pair("vector")
        scalar.record_misses()
        batched.record_misses()
        scalar.process_stream(keys)
        for index in range(keys.shape[0]):
            batched.process_batch(keys[index : index + 1])
        assert (scalar.miss_trace() == batched.miss_trace()).all()


class TestWholeChunkEquivalence:
    """Cases where large chunks provably cannot reorder an exchange."""

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_no_overflow_streams_identical(self, kind):
        """Distinct keys fit the filter: the sketch is never touched."""
        rng = np.random.default_rng(21)
        keys = rng.integers(0, 4, size=3000, dtype=np.int64)
        scalar, batched = build_pair(kind, filter_items=4)
        scalar.process_stream(keys)
        batched.process_batch(keys)
        assert batched.miss_events == 0
        assert_identical(scalar, batched, keys.tolist())

    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 1000])
    def test_chunking_invariant_without_overflow(self, chunk_size):
        """Any chunking of a non-overflowing stream gives the same state."""
        rng = np.random.default_rng(22)
        keys = rng.integers(0, 4, size=2000, dtype=np.int64)
        reference, chunked = build_pair("relaxed-heap", filter_items=4)
        reference.process_batch(keys)
        for start in range(0, keys.shape[0], chunk_size):
            chunked.process_batch(keys[start : start + chunk_size])
        assert_identical(reference, chunked, keys.tolist())

    def test_aggregated_insert_matches_scalar_fill(self):
        """A chunk that *fills* the filter inserts first-appearance keys
        with their full chunk totals — exactly the scalar end state."""
        keys = np.array([9, 9, 7, 9, 5, 7, 3, 1], dtype=np.int64)
        scalar, batched = build_pair("vector", filter_items=4)
        scalar.process_stream(keys)
        batched.process_batch(keys)
        assert_identical(scalar, batched, keys.tolist())


class TestChunkGranularitySemantics:
    """The documented deviation: exchanges settle at chunk boundaries."""

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    @pytest.mark.parametrize("chunk_size", [17, 256, 5000])
    def test_one_sided_and_mass_conserving(self, kind, chunk_size):
        rng = np.random.default_rng(31)
        keys = rng.integers(0, 300, size=5000, dtype=np.int64)
        asketch, _ = build_pair(kind)
        for start in range(0, keys.shape[0], chunk_size):
            asketch.process_batch(keys[start : start + chunk_size])
        truth = Counter(keys.tolist())
        for key, count in truth.items():
            assert asketch.query(key) >= count
        assert asketch.total_mass == keys.shape[0]
        if isinstance(asketch.sketch, CountMinSketch):
            resident = sum(
                entry.resident_count for entry in asketch.filter.entries()
            )
            assert resident + asketch.sketch.total_count() == keys.shape[0]

    def test_estimates_never_below_scalar_truth(self):
        """Batched estimates stay valid over-estimates even when exchange
        timing diverges from the scalar run."""
        rng = np.random.default_rng(32)
        keys = rng.integers(0, 500, size=8000, dtype=np.int64)
        scalar, batched = build_pair("relaxed-heap")
        scalar.process_stream(keys)
        batched.process_batch(keys)
        truth = Counter(keys.tolist())
        for key, count in truth.items():
            assert batched.query(key) >= count
        assert scalar.total_mass == batched.total_mass

    def test_miss_trace_chunk_granularity(self):
        """In one chunk, every occurrence of an overflowing key is a
        miss — including occurrences a scalar run would have absorbed
        after a mid-chunk exchange."""
        asketch, _ = build_pair("vector", filter_items=2)
        asketch.process_batch(np.array([1, 2], dtype=np.int64))  # fills
        asketch.record_misses()
        chunk = np.array([3, 1, 3, 3], dtype=np.int64)
        asketch.process_batch(chunk)
        assert asketch.miss_trace().tolist() == [True, False, True, True]


class TestBatchValidation:
    def test_negative_counts_rejected(self):
        asketch, _ = build_pair("vector")
        with pytest.raises(NegativeCountError):
            asketch.process_batch(
                np.array([1, 2], dtype=np.int64),
                np.array([1, -1], dtype=np.int64),
            )

    def test_shape_mismatch_rejected(self):
        asketch, _ = build_pair("vector")
        with pytest.raises(ConfigurationError):
            asketch.process_batch(
                np.array([1, 2], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )

    def test_empty_chunk_is_a_noop(self):
        asketch, _ = build_pair("vector")
        asketch.process_batch(np.array([], dtype=np.int64))
        assert asketch.total_mass == 0
        assert asketch.ops.items == 0


class TestBatchedQueries:
    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_query_batch_matches_scalar_queries(self, kind):
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 200, size=4000, dtype=np.int64)
        asketch, _ = build_pair(kind)
        asketch.process_stream(keys)
        probes = list(range(0, 250))  # residents, sketch keys, unseen keys
        assert asketch.query_batch(probes) == [
            asketch.query(key) for key in probes
        ]

    def test_query_batch_accounting(self):
        """One ``ops.items`` tick per queried key, exactly like scalar."""
        asketch, _ = build_pair("vector")
        asketch.process_stream(np.arange(50, dtype=np.int64))
        before = asketch.ops.items
        asketch.query_batch(list(range(30)))
        assert asketch.ops.items == before + 30

    def test_estimate_batch_alias(self):
        asketch, _ = build_pair("relaxed-heap")
        asketch.process_stream(np.arange(20, dtype=np.int64))
        probes = [0, 5, 99]
        assert asketch.estimate_batch(probes) == asketch.query_batch(probes)


class TestFilterBulkApi:
    """The bulk filter operations the batched path is built on."""

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_keys_array_lists_residents(self, kind):
        filter_ = make_filter(kind, 8)
        for key in (3, 11, 7):
            filter_.insert(key, key, 0)
        assert sorted(filter_.keys_array().tolist()) == [3, 7, 11]

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_add_many_matches_scalar_loop(self, kind):
        bulk = make_filter(kind, 8)
        loop = make_filter(kind, 8)
        for key in range(8):
            bulk.insert(key, 1, 0)
            loop.insert(key, 1, 0)
        keys = np.array([5, 99, 0, 5, 7], dtype=np.int64)
        amounts = np.array([2, 2, 3, 1, 4], dtype=np.int64)
        mask = bulk.add_many_if_present(keys, amounts)
        expected = [
            loop.add_if_present(int(k), int(a))
            for k, a in zip(keys.tolist(), amounts.tolist())
        ]
        assert mask.tolist() == expected
        assert {
            (e.key, e.new_count, e.old_count) for e in bulk.entries()
        } == {(e.key, e.new_count, e.old_count) for e in loop.entries()}
        assert bulk.min_new_count() == loop.min_new_count()

    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_lookup_many_matches_get_new_count(self, kind):
        filter_ = make_filter(kind, 4)
        for key, count in ((2, 5), (9, 1), (4, 3)):
            filter_.insert(key, count, 0)
        keys = np.array([2, 3, 4, 9, 2], dtype=np.int64)
        mask, counts = filter_.lookup_many(keys)
        assert mask.tolist() == [True, False, True, True, True]
        assert counts[mask].tolist() == [5, 3, 1, 5]

    def test_vector_bulk_on_empty_filter(self):
        filter_ = make_filter("vector", 4)
        keys = np.array([1, 2], dtype=np.int64)
        assert filter_.add_many_if_present(keys, np.ones(2)).tolist() == [
            False,
            False,
        ]
        mask, _ = filter_.lookup_many(keys)
        assert mask.tolist() == [False, False]

    def test_vector_bulk_min_retracking(self):
        """A bulk hit on the minimum slot re-tracks the cached minimum."""
        filter_ = make_filter("vector", 3)
        filter_.insert(1, 10, 0)
        filter_.insert(2, 1, 0)  # the minimum
        filter_.insert(3, 5, 0)
        filter_.add_many_if_present(
            np.array([2], dtype=np.int64), np.array([100], dtype=np.int64)
        )
        assert filter_.min_new_count() == 5
