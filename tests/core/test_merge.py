"""Tests for Count-Min and ASketch merging (distributed aggregation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.counters.exact import ExactCounter
from repro.errors import ConfigurationError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.streams.zipf import zipf_stream


@pytest.fixture()
def two_streams():
    return (
        zipf_stream(30_000, 8_000, 1.4, seed=81),
        zipf_stream(30_000, 8_000, 1.4, seed=82),
    )


class TestCountMinMerge:
    def test_merge_equals_single_sketch_over_both_streams(self, two_streams):
        first, second = two_streams
        left = CountMinSketch(8, total_bytes=32 * 1024, seed=9)
        right = CountMinSketch(8, total_bytes=32 * 1024, seed=9)
        combined = CountMinSketch(8, total_bytes=32 * 1024, seed=9)
        left.update_batch(first.keys)
        right.update_batch(second.keys)
        combined.update_batch(first.keys)
        combined.update_batch(second.keys)
        left.merge(right)
        np.testing.assert_array_equal(left.table, combined.table)

    def test_mergeable_checks_dimensions(self):
        a = CountMinSketch(8, row_width=512, seed=1)
        b = CountMinSketch(8, row_width=256, seed=1)
        assert not a.is_mergeable_with(b)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_mergeable_checks_seeds(self):
        a = CountMinSketch(8, row_width=512, seed=1)
        b = CountMinSketch(8, row_width=512, seed=2)
        assert not a.is_mergeable_with(b)

    def test_not_mergeable_with_other_types(self):
        a = CountMinSketch(8, row_width=512, seed=1)
        assert not a.is_mergeable_with(CountSketch(8, row_width=512, seed=1))


class TestASketchMerge:
    def test_one_sided_after_merge(self, two_streams):
        first, second = two_streams
        left = ASketch(total_bytes=32 * 1024, filter_items=16, seed=3)
        right = ASketch(total_bytes=32 * 1024, filter_items=16, seed=3)
        left.process_stream(first.keys)
        right.process_stream(second.keys)
        left.merge(right)

        truth = ExactCounter()
        truth.update_batch(first.keys)
        truth.update_batch(second.keys)
        for key, count in truth.items():
            assert left.query(key) >= count

    def test_total_mass_accumulates(self, two_streams):
        first, second = two_streams
        left = ASketch(total_bytes=32 * 1024, filter_items=16, seed=3)
        right = ASketch(total_bytes=32 * 1024, filter_items=16, seed=3)
        left.process_stream(first.keys)
        right.process_stream(second.keys)
        left.merge(right)
        assert left.total_mass == len(first) + len(second)

    def test_merged_heavy_hitters_near_exact(self, two_streams):
        first, second = two_streams
        left = ASketch(total_bytes=64 * 1024, filter_items=32, seed=4)
        right = ASketch(total_bytes=64 * 1024, filter_items=32, seed=4)
        left.process_stream(first.keys)
        right.process_stream(second.keys)
        left.merge(right)

        truth = ExactCounter()
        truth.update_batch(first.keys)
        truth.update_batch(second.keys)
        key, count = truth.top_k(1)[0]
        estimate = left.query(key)
        assert count <= estimate <= count * 1.05 + 20

    def test_merge_conserves_mass(self, two_streams):
        """Filter resident mass + sketch mass equals both streams."""
        first, second = two_streams
        left = ASketch(total_bytes=32 * 1024, filter_items=16, seed=5)
        right = ASketch(total_bytes=32 * 1024, filter_items=16, seed=5)
        left.process_stream(first.keys)
        right.process_stream(second.keys)
        left.merge(right)
        resident = sum(e.resident_count for e in left.filter.entries())
        sketch_mass = left.sketch.total_count()
        assert resident + sketch_mass == len(first) + len(second)

    def test_incompatible_sketches_rejected(self):
        left = ASketch(total_bytes=32 * 1024, seed=1)
        right = ASketch(total_bytes=32 * 1024, seed=2)
        with pytest.raises(ConfigurationError):
            left.merge(right)

    def test_count_sketch_backend_merges(self, two_streams):
        """Count Sketch gained merge support; mass flows into one synopsis."""
        first, second = two_streams
        left = ASketch(
            total_bytes=32 * 1024, sketch_backend="count-sketch", seed=1
        )
        right = ASketch(
            total_bytes=32 * 1024, sketch_backend="count-sketch", seed=1
        )
        left.process_stream(first.keys)
        right.process_stream(second.keys)
        left.merge(right)
        assert left.total_mass == len(first) + len(second)

    def test_merge_less_backend_rejected(self):
        class OpaqueSketch:
            size_bytes = 0

            def update(self, key, amount=1):
                return 0

            def estimate(self, key):
                return 0

        left = ASketch(sketch=OpaqueSketch(), filter_items=8)
        right = ASketch(sketch=OpaqueSketch(), filter_items=8)
        with pytest.raises(ConfigurationError):
            left.merge(right)

    def test_merge_empty_other(self):
        left = ASketch(total_bytes=32 * 1024, seed=1)
        right = ASketch(total_bytes=32 * 1024, seed=1)
        left.process_stream(np.arange(100, dtype=np.int64))
        left.merge(right)
        assert left.total_mass == 100
