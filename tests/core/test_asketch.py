"""Core ASketch tests: Algorithm 1/2 semantics and the paper's Example 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError, NegativeCountError
from repro.hardware.costs import OpCounters
from repro.sketches.base import FrequencySketch
from repro.sketches.count_min import CountMinSketch


class DictSketch(FrequencySketch):
    """Deterministic stand-in sketch: exact counts, no collisions.

    Lets the exchange logic be tested without hash randomness.
    """

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.update_log: list[tuple[int, int]] = []
        self.ops = OpCounters()

    @property
    def size_bytes(self) -> int:
        return 1024

    def update(self, key: int, amount: int = 1) -> int:
        self.counts[key] = self.counts.get(key, 0) + amount
        self.update_log.append((key, amount))
        return self.counts[key]

    def estimate(self, key: int) -> int:
        return self.counts.get(key, 0)


def make_asketch(filter_items=2, **kwargs) -> tuple[ASketch, DictSketch]:
    sketch = DictSketch()
    asketch = ASketch(
        sketch=sketch, filter_items=filter_items,
        filter_kind=kwargs.pop("filter_kind", "relaxed-heap"), **kwargs
    )
    return asketch, sketch


class TestConstruction:
    def test_exactly_one_of_bytes_or_sketch(self):
        with pytest.raises(ConfigurationError):
            ASketch()
        with pytest.raises(ConfigurationError):
            ASketch(total_bytes=1024, sketch=DictSketch())

    def test_filter_space_carved_from_budget(self):
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32)
        plain = CountMinSketch(8, total_bytes=128 * 1024)
        assert asketch.sketch.row_width < plain.row_width
        assert asketch.size_bytes <= 128 * 1024
        # h' = h - s_f / w exactly (12-byte slots, 4-byte cells, w=8).
        expected_width = plain.row_width - (32 * 12) // (8 * 4)
        assert asketch.sketch.row_width == expected_width

    def test_filter_exceeding_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ASketch(total_bytes=400, filter_items=64)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ASketch(total_bytes=64 * 1024, sketch_backend="bloom")

    def test_zero_exchanges_rejected(self):
        with pytest.raises(ConfigurationError):
            ASketch(total_bytes=64 * 1024, max_exchanges_per_update=0)

    @pytest.mark.parametrize(
        "backend", ["count-min", "fcm", "count-sketch"]
    )
    def test_all_backends_construct(self, backend):
        asketch = ASketch(total_bytes=64 * 1024, sketch_backend=backend)
        asketch.update(1)
        assert asketch.query(1) == 1


class TestAlgorithm1:
    def test_filter_absorbs_until_full(self):
        asketch, sketch = make_asketch(filter_items=2)
        asketch.update(1)
        asketch.update(2)
        asketch.update(1)
        assert sketch.update_log == []  # nothing reached the sketch
        assert asketch.query(1) == 2
        assert asketch.query(2) == 1

    def test_overflow_goes_to_sketch(self):
        asketch, sketch = make_asketch(filter_items=2)
        for key in [1, 2]:
            for _ in range(5):
                asketch.update(key)
        asketch.update(3)  # filter full; 3 -> sketch (count 1 < min 5)
        assert sketch.update_log == [(3, 1)]
        assert asketch.exchange_count == 0

    def test_exchange_on_overtake(self):
        asketch, sketch = make_asketch(filter_items=2)
        asketch.update(1)   # filter: 1 -> (1, 0)
        asketch.update(2)   # filter: 2 -> (1, 0)
        asketch.update(3)   # sketch: 3 -> 1; 1 > min? not strictly
        assert asketch.exchange_count == 0
        asketch.update(3)   # sketch: 3 -> 2 > min 1 -> exchange
        assert asketch.exchange_count == 1
        # 3 now monitored with new == old == 2 (no exact mass yet).
        assert asketch.filter.get_counts(3) == (2, 2)
        # The evicted item had new == 1, old == 0 -> 1 hashed to sketch.
        assert (1, 1) in sketch.update_log or (2, 1) in sketch.update_log

    def test_evicted_zero_delta_not_rehashed(self):
        asketch, sketch = make_asketch(filter_items=1)
        asketch.update(1)          # filter: (1, 0)
        asketch.update(2)          # sketch: 2 -> 1, no exchange (1 == min)
        asketch.update(2)          # sketch: 2 -> 2 > 1 -> exchange
        assert asketch.filter.get_counts(2) == (2, 2)
        log_before = list(sketch.update_log)
        # evicted key 1 had delta 1 > 0, so it was hashed once.
        assert log_before.count((1, 1)) == 1
        asketch.update(1)          # sketch: 1 -> 2; 2 == min 2, no exchange
        asketch.update(1)          # sketch: 1 -> 3 > 2 -> exchange back
        assert asketch.filter.get_counts(1) == (3, 3)
        # Key 2's delta was 0 (new == old == 2): nothing hashed on evict.
        assert (2, 0) not in sketch.update_log
        assert sum(amount for key, amount in sketch.update_log if key == 2) == 2

    def test_at_most_one_exchange_per_update(self):
        asketch, _ = make_asketch(filter_items=2)
        keys = np.array([1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5])
        before_each = []
        for key in keys.tolist():
            start = asketch.exchange_count
            asketch.update(key)
            before_each.append(asketch.exchange_count - start)
        assert max(before_each) <= 1

    def test_update_returns_estimate(self):
        asketch, _ = make_asketch(filter_items=2)
        assert asketch.update(1) == 1
        assert asketch.update(1) == 2
        asketch.update(2)
        assert asketch.update(3) == 1  # went to sketch

    def test_weighted_updates(self):
        asketch, _ = make_asketch(filter_items=2)
        asketch.update(1, 10)
        assert asketch.query(1) == 10
        assert asketch.total_mass == 10

    def test_negative_amount_rejected_in_update(self):
        asketch, _ = make_asketch()
        with pytest.raises(NegativeCountError):
            asketch.update(1, -1)


class TestPaperExample2:
    """The worked example of Figure 4, transposed onto the DictSketch.

    Filter holds A=(new 8, old 2) and B=(new 10, old 1); C arrives with
    count 1 but the sketch already holds 8 for C, so the update estimates
    C at 9 > min(8) and triggers the exchange: C enters the filter with
    new = old = 9, nothing is removed from the sketch, and A's resident
    mass 8 - 2 = 6 is hashed into the sketch.
    """

    def test_example2_exchange(self):
        asketch, sketch = make_asketch(filter_items=2)
        # Arrange the initial state directly.
        asketch.filter.insert(ord("A"), 8, 2)
        asketch.filter.insert(ord("B"), 10, 1)
        sketch.counts[ord("C")] = 8
        sketch.counts[ord("A")] = 2  # A's old_count lives in the sketch

        asketch.update(ord("C"), 1)

        # C was moved into the filter with new == old == 9.
        assert asketch.filter.get_counts(ord("C")) == (9, 9)
        # B is untouched.
        assert asketch.filter.get_counts(ord("B")) == (10, 1)
        # A left; only its resident mass 6 was hashed into the sketch.
        assert asketch.filter.get_counts(ord("A")) is None
        assert sketch.counts[ord("A")] == 8  # 2 + 6
        # No second exchange despite A's sketch count 8 < B's 10... the
        # paper stops after one exchange even though A(8) < min(9, 10).
        assert asketch.exchange_count == 1


class TestAlgorithm2:
    def test_query_prefers_filter(self):
        asketch, sketch = make_asketch(filter_items=2)
        asketch.update(1)
        sketch.counts[1] = 999  # stale sketch value must be ignored
        assert asketch.query(1) == 1

    def test_query_falls_back_to_sketch(self):
        asketch, sketch = make_asketch(filter_items=1)
        asketch.update(1)
        sketch.counts[42] = 7
        assert asketch.query(42) == 7

    def test_query_batch_matches_scalar(self, skewed_stream):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=16, seed=3)
        asketch.process_stream(skewed_stream.keys[:20000])
        probe = skewed_stream.keys[:50]
        assert asketch.query_batch(probe) == [
            asketch.query(int(k)) for k in probe
        ]


class TestSelectivityAndStats:
    def test_selectivity_zero_when_filter_holds_all(self):
        asketch, _ = make_asketch(filter_items=8)
        for key in [1, 2, 3] * 10:
            asketch.update(key)
        assert asketch.achieved_selectivity == 0.0
        assert asketch.miss_events == 0

    def test_selectivity_counts_overflow_mass_only(self):
        asketch, _ = make_asketch(filter_items=1)
        asketch.update(1)  # filter
        asketch.update(2)  # sketch (mass 1)
        asketch.update(1)  # filter hit
        assert asketch.total_mass == 3
        assert asketch.overflow_mass == 1
        assert asketch.achieved_selectivity == pytest.approx(1 / 3)

    def test_stage_ops_split(self, skewed_stream):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=16, seed=1)
        asketch.process_stream(skewed_stream.keys[:10000])
        stage0, stage1 = asketch.stage_ops()
        assert stage0.items == 10000
        assert stage0.filter_probes >= 10000
        assert stage0.hash_evals == 0
        assert stage1.hash_evals > 0
        assert stage1.exchanges == asketch.exchange_count

    def test_combined_ops_merges_all(self):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=8)
        asketch.process_stream(np.arange(1000, dtype=np.int64))
        combined = asketch.combined_ops()
        assert combined.items == 1000
        assert combined.filter_probes >= 1000
        assert combined.hash_evals > 0


class TestTopK:
    def test_top_k_defaults_to_filter_capacity(self, skewed_stream):
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=2)
        asketch.process_stream(skewed_stream.keys)
        assert len(asketch.top_k()) == 32

    def test_top_k_beyond_capacity_rejected(self):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=8)
        with pytest.raises(ConfigurationError):
            asketch.top_k(9)

    def test_top_k_recovers_true_heavy_hitters(self, skewed_stream):
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=2)
        asketch.process_stream(skewed_stream.keys)
        reported = {key for key, _ in asketch.top_k(10)}
        truth = {key for key, _ in skewed_stream.exact.top_k(10)}
        assert len(reported & truth) >= 9  # paper: precision 1.0 at skew 1.5

    def test_top_k_counts_descending(self, skewed_stream):
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=2)
        asketch.process_stream(skewed_stream.keys)
        counts = [count for _, count in asketch.top_k(32)]
        assert counts == sorted(counts, reverse=True)


class TestOneSidedGuarantee:
    @pytest.mark.parametrize(
        "filter_kind",
        ["vector", "strict-heap", "relaxed-heap", "stream-summary"],
    )
    def test_never_underestimates(self, skewed_stream, filter_kind):
        asketch = ASketch(
            total_bytes=32 * 1024,
            filter_items=16,
            filter_kind=filter_kind,
            seed=4,
        )
        asketch.process_stream(skewed_stream.keys[:30000])
        exact = skewed_stream.prefix(30000).exact
        for key, true in exact.items():
            assert asketch.query(key) >= true, (filter_kind, key)

    def test_filter_residents_have_exact_resident_mass(self, skewed_stream):
        """new_count - old_count equals the hits received while resident —
        by construction; verified against a replayed trace."""
        asketch = ASketch(total_bytes=64 * 1024, filter_items=8, seed=5)
        asketch.process_stream(skewed_stream.keys[:5000])
        exact = skewed_stream.prefix(5000).exact
        for entry in asketch.filter.entries():
            assert entry.new_count >= exact.count_of(entry.key)


class TestMultiExchangeAblation:
    def test_cascading_exchanges_allowed_when_enabled(self):
        asketch, _ = make_asketch(filter_items=2, max_exchanges_per_update=4)
        # Prime the sketch so multiple filter items can be overtaken.
        keys = [1, 2] + [3] * 5 + [4] * 5 + [5] * 5
        for key in keys:
            asketch.update(key)
        assert asketch.exchange_count >= 1

    def test_single_exchange_is_default(self):
        asketch, _ = make_asketch()
        assert asketch.max_exchanges_per_update == 1
