"""Heap-filter-specific tests: invariants of strict vs relaxed variants."""

from __future__ import annotations

import pytest

from repro.core.filters.heap import RelaxedHeapFilter, StrictHeapFilter


class TestStrictHeap:
    def test_heap_property_always_holds(self, rng):
        filter_ = StrictHeapFilter(16)
        for key in range(16):
            filter_.insert(key, int(rng.integers(1, 100)), 0)
        for _ in range(2000):
            key = int(rng.integers(0, 16))
            filter_.add_if_present(key, int(rng.integers(1, 5)))
            assert filter_.heap_property_violations() == 0

    def test_root_is_global_min_always(self, rng):
        filter_ = StrictHeapFilter(16)
        for key in range(16):
            filter_.insert(key, int(rng.integers(1, 100)), 0)
        for _ in range(1000):
            filter_.add_if_present(int(rng.integers(0, 16)), 1)
            true_min = min(e.new_count for e in filter_.entries())
            assert filter_.min_new_count() == true_min


class TestRelaxedHeap:
    def test_can_accumulate_violations(self, rng):
        """Non-root hits are not fixed, so interior violations may appear."""
        filter_ = RelaxedHeapFilter(16)
        for key in range(16):
            filter_.insert(key, 10, 0)
        saw_violation = False
        for _ in range(500):
            filter_.add_if_present(int(rng.integers(1, 16)), 3)
            if filter_.heap_property_violations() > 0:
                saw_violation = True
                break
        assert saw_violation

    def test_root_is_exact_min(self, rng):
        """Regression: the root must be the exact minimum at all times.

        A lazier relaxed heap that only sifts the root down on a root
        hit drifts away from the true minimum (the sift consults stale
        interior values), which starves the exchange policy; this test
        drives the exact ASketch usage pattern and checks exactness."""
        filter_ = RelaxedHeapFilter(8)
        for key in range(8):
            filter_.insert(key, int(rng.integers(1, 20)), 0)
        fresh_key = 100_000
        for _ in range(2000):
            key = int(rng.integers(0, 30))
            if not filter_.add_if_present(key, 1):
                estimate = int(rng.integers(1, 200))
                if estimate > filter_.min_new_count():
                    fresh_key += 1
                    filter_.replace_min(fresh_key, estimate, estimate)
            true_min = min(e.new_count for e in filter_.entries())
            assert filter_.min_new_count() == true_min

    def test_cheaper_maintenance_than_strict(self, rng):
        """Relaxed performs strictly fewer heap fix-up levels (Fig. 14)."""
        hits = [int(rng.integers(0, 16)) for _ in range(5000)]
        strict = StrictHeapFilter(16)
        relaxed = RelaxedHeapFilter(16)
        for filter_ in (strict, relaxed):
            for key in range(16):
                filter_.insert(key, 1, 0)
            for key in hits:
                filter_.add_if_present(key, 1)
        assert (
            relaxed.ops.heap_fixup_levels < strict.ops.heap_fixup_levels
        )


class TestBothHeaps:
    @pytest.mark.parametrize("cls", [StrictHeapFilter, RelaxedHeapFilter])
    def test_set_counts_reheapifies(self, cls):
        filter_ = cls(8)
        for key in range(8):
            filter_.insert(key, key + 10, 0)
        filter_.set_counts(7, 1, 0)  # was the largest, now the smallest
        assert filter_.heap_property_violations() == 0
        assert filter_.min_new_count() == 1

    @pytest.mark.parametrize("cls", [StrictHeapFilter, RelaxedHeapFilter])
    def test_index_consistent_after_swaps(self, cls, rng):
        filter_ = cls(16)
        for key in range(16):
            filter_.insert(key, int(rng.integers(1, 50)), 0)
        for _ in range(500):
            filter_.add_if_present(int(rng.integers(0, 16)), 2)
        # Every key must still be reachable with its own counts.
        for entry in filter_.entries():
            assert filter_.get_counts(entry.key) == (
                entry.new_count,
                entry.old_count,
            )

    @pytest.mark.parametrize("cls", [StrictHeapFilter, RelaxedHeapFilter])
    def test_id_array_matches_entries(self, cls):
        filter_ = cls(8)
        for key in [5, 9, 13]:
            filter_.insert(key, key, 0)
        stored = {int(v) - 1 for v in filter_.id_array if v != 0}
        assert stored == {5, 9, 13}
