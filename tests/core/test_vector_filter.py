"""Vector-filter-specific tests, including SIMD-path equivalence."""

from __future__ import annotations

import numpy as np

from repro.core.filters.vector import VectorFilter
from repro.simd.engine import numpy_find_index, simd_find_index


class TestMinCache:
    def test_min_exact_under_increments(self, rng):
        filter_ = VectorFilter(16)
        for key in range(16):
            filter_.insert(key, int(rng.integers(1, 40)), 0)
        for _ in range(2000):
            filter_.add_if_present(int(rng.integers(0, 16)), 1)
            true_min = min(e.new_count for e in filter_.entries())
            assert filter_.min_new_count() == true_min

    def test_min_exact_after_replace(self, rng):
        filter_ = VectorFilter(8)
        for key in range(8):
            filter_.insert(key, key + 1, 0)
        filter_.replace_min(100, 50, 50)
        true_min = min(e.new_count for e in filter_.entries())
        assert filter_.min_new_count() == true_min

    def test_min_scan_cost_charged(self):
        filter_ = VectorFilter(32)
        filter_.insert(1, 1, 0)
        before = filter_.ops.min_scans
        filter_.min_new_count()
        assert filter_.ops.min_scans == before + 32


class TestSimdEquivalence:
    def test_id_array_searchable_by_faithful_kernel(self, rng):
        """The faithful Algorithm 3 kernel locates real filter state."""
        filter_ = VectorFilter(32)
        keys = rng.choice(10_000, size=20, replace=False)
        for key in keys.tolist():
            filter_.insert(int(key), 1, 0)
        ids32 = filter_.id_array.astype(np.int32)
        for key in keys.tolist():
            simd_result = simd_find_index(ids32, int(key) + 1)
            numpy_result = numpy_find_index(filter_.id_array, int(key) + 1)
            assert simd_result == numpy_result >= 0

    def test_faithful_kernel_misses_absent_keys(self, rng):
        filter_ = VectorFilter(16)
        for key in range(10):
            filter_.insert(key, 1, 0)
        ids32 = filter_.id_array.astype(np.int32)
        assert simd_find_index(ids32, 999 + 1) == -1


class TestSlotReuse:
    def test_replace_reuses_slot(self):
        filter_ = VectorFilter(2)
        filter_.insert(1, 5, 0)
        filter_.insert(2, 9, 0)
        filter_.replace_min(3, 11, 11)
        assert filter_.get_counts(3) == (11, 11)
        assert filter_.get_counts(1) is None
        assert len(filter_) == 2
        occupied = int((filter_.id_array != 0).sum())
        assert occupied == 2
