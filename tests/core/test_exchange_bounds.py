"""Exchange-policy bound tests: Lemma 1, Lemma 2, Lemma 3 (Appendix C)."""

from __future__ import annotations

import numpy as np

from repro.core.asketch import ASketch
from repro.sketches.count_min import CountMinSketch
from repro.streams.adversarial import (
    lemma2_alternating_stream,
    lemma3_colliding_stream,
)
from repro.streams.zipf import zipf_stream


class TestLemma1:
    def test_sketch_insertions_bounded_by_occurrences(self, rng):
        """Lemma 1: a key appearing t times is inserted into the sketch at
        most t times (early aggregation can only reduce insertions)."""
        from tests.core.test_asketch import DictSketch

        asketch = ASketch(
            sketch=DictSketch(), filter_items=4, filter_kind="relaxed-heap"
        )
        keys = rng.integers(0, 20, size=5000)
        asketch.process_stream(np.asarray(keys))
        occurrences: dict[int, int] = {}
        for key in keys.tolist():
            occurrences[key] = occurrences.get(key, 0) + 1
        insertions: dict[int, int] = {}
        for key, _ in asketch.sketch.update_log:
            insertions[key] = insertions.get(key, 0) + 1
        for key, count in insertions.items():
            assert count <= occurrences[key], key

    def test_sketch_mass_bounded_by_stream_mass(self, rng):
        """Total count hashed into the sketch never exceeds the stream's."""
        from tests.core.test_asketch import DictSketch

        asketch = ASketch(sketch=DictSketch(), filter_items=4)
        keys = rng.integers(0, 30, size=4000)
        asketch.process_stream(np.asarray(keys))
        hashed_mass = sum(amount for _, amount in asketch.sketch.update_log)
        assert hashed_mass <= len(keys)


class TestLemma2:
    def test_alternating_stream_shape(self):
        stream = lemma2_alternating_stream(9)
        assert stream.keys.tolist() == [0, 1, 1, 0, 0, 1, 1, 0, 0]

    def test_collision_free_exchanges_at_most_half(self):
        """With a collision-free sketch, exchanges <= N/2."""
        n = 2000
        stream = lemma2_alternating_stream(n)
        sketch = CountMinSketch(num_hashes=2, row_width=4096, seed=1)
        asketch = ASketch(sketch=sketch, filter_items=1)
        asketch.process_stream(stream.keys)
        assert asketch.exchange_count <= n // 2
        # And the construction actually forces many exchanges:
        assert asketch.exchange_count >= n // 4

    def test_one_sided_despite_churn(self):
        n = 1000
        stream = lemma2_alternating_stream(n)
        asketch = ASketch(total_bytes=16 * 1024, filter_items=1, seed=2)
        asketch.process_stream(stream.keys)
        exact = stream.exact
        for key in (0, 1):
            assert asketch.query(key) >= exact.count_of(key)


class TestLemma3:
    def test_colliding_stream_shape(self):
        stream = lemma3_colliding_stream(8)
        assert stream.keys.tolist() == [0, 1, 1, 0, 1, 0, 1, 0]

    def test_full_collision_exchanges_bounded_by_n(self):
        """With total collisions (width-1 sketch), exchanges <= N and the
        adversarial order drives them close to N."""
        n = 1000
        stream = lemma3_colliding_stream(n)
        sketch = CountMinSketch(num_hashes=2, row_width=1, seed=3)
        asketch = ASketch(sketch=sketch, filter_items=1)
        asketch.process_stream(stream.keys)
        assert asketch.exchange_count <= n
        assert asketch.exchange_count >= n // 2

    def test_guarantee_survives_total_collisions(self):
        n = 500
        stream = lemma3_colliding_stream(n)
        sketch = CountMinSketch(num_hashes=2, row_width=1, seed=3)
        asketch = ASketch(sketch=sketch, filter_items=1)
        asketch.process_stream(stream.keys)
        exact = stream.exact
        for key in (0, 1):
            assert asketch.query(key) >= exact.count_of(key)


class TestExchangeTrendWithSkew:
    def test_exchanges_decrease_with_skew(self):
        """Figure 9's shape on small streams."""
        counts = []
        for skew in (0.0, 1.0, 2.0):
            stream = zipf_stream(30_000, 8_000, skew, seed=5)
            asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=5)
            asketch.process_stream(stream.keys)
            counts.append(asketch.exchange_count)
        assert counts[0] > counts[1] > counts[2]

    def test_uniform_exchanges_below_average_case_bound(self):
        from repro.core.analysis import expected_exchanges_uniform

        stream = zipf_stream(30_000, 8_000, 0.0, seed=6)
        asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=6)
        asketch.process_stream(stream.keys)
        bound = expected_exchanges_uniform(
            30_000, 32, asketch.sketch.row_width
        )
        assert asketch.exchange_count <= bound
