"""Behavioural tests shared by all four filter implementations."""

from __future__ import annotations

import pytest

from repro.core.filters import make_filter
from repro.core.filters.factory import FILTER_KINDS
from repro.errors import CapacityError, ConfigurationError

ALL_KINDS = sorted(FILTER_KINDS)

@pytest.fixture(params=ALL_KINDS)
def kind(request):
    return request.param


class TestFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_filter("btree", 8)

    def test_exactly_one_capacity_argument(self):
        with pytest.raises(ConfigurationError):
            make_filter("vector")
        with pytest.raises(ConfigurationError):
            make_filter("vector", 8, budget_bytes=96)

    def test_budget_bytes_respects_slot_size(self):
        array_filter = make_filter("vector", budget_bytes=384)
        assert array_filter.capacity == 32
        pointer_filter = make_filter("stream-summary", budget_bytes=400)
        assert pointer_filter.capacity == 4

    def test_budget_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            make_filter("stream-summary", budget_bytes=50)


class TestLifecycle:
    def test_empty_filter(self, kind):
        filter_ = make_filter(kind, 4)
        assert len(filter_) == 0
        assert not filter_.is_full
        assert not filter_.add_if_present(1, 1)
        assert filter_.get_counts(1) is None
        assert filter_.get_new_count(1) is None

    def test_insert_then_hit(self, kind):
        filter_ = make_filter(kind, 4)
        filter_.insert(10, 5, 0)
        assert filter_.add_if_present(10, 3)
        assert filter_.get_counts(10) == (8, 0)

    def test_fill_to_capacity(self, kind):
        filter_ = make_filter(kind, 3)
        for key in range(3):
            filter_.insert(key, key + 1, 0)
        assert filter_.is_full
        with pytest.raises(CapacityError):
            filter_.insert(99, 1, 0)

    def test_duplicate_insert_rejected(self, kind):
        filter_ = make_filter(kind, 4)
        filter_.insert(1, 1, 0)
        with pytest.raises(CapacityError):
            filter_.insert(1, 2, 0)

    def test_zero_capacity_rejected(self, kind):
        with pytest.raises((ConfigurationError, CapacityError)):
            make_filter(kind, 0)


class TestMinTracking:
    def test_min_on_empty_raises(self, kind):
        with pytest.raises(CapacityError):
            make_filter(kind, 4).min_new_count()

    def test_min_is_a_resident_count(self, kind):
        filter_ = make_filter(kind, 4)
        for key, count in [(1, 9), (2, 3), (3, 6)]:
            filter_.insert(key, count, 0)
        minimum = filter_.min_new_count()
        assert minimum in {9, 3, 6}
        assert minimum == 3  # exact before any relaxation can occur

    def test_replace_min_evicts_minimum(self, kind):
        filter_ = make_filter(kind, 3)
        for key, count in [(1, 9), (2, 3), (3, 6)]:
            filter_.insert(key, count, 0)
        evicted = filter_.replace_min(7, 10, 10)
        assert evicted.key == 2
        assert evicted.new_count == 3
        assert filter_.get_counts(7) == (10, 10)
        assert filter_.get_counts(2) is None
        assert len(filter_) == 3

    def test_replace_min_existing_key_rejected(self, kind):
        filter_ = make_filter(kind, 2)
        filter_.insert(1, 5, 0)
        filter_.insert(2, 7, 0)
        with pytest.raises(CapacityError):
            filter_.replace_min(1, 10, 10)

    def test_replace_min_on_empty_raises(self, kind):
        with pytest.raises(CapacityError):
            make_filter(kind, 2).replace_min(1, 1, 1)


class TestEntriesAndTopK:
    def test_entries_roundtrip(self, kind):
        filter_ = make_filter(kind, 4)
        expected = {(1, 4, 0), (2, 8, 2), (3, 6, 6)}
        for key, new, old in expected:
            filter_.insert(key, new, old)
        observed = {
            (e.key, e.new_count, e.old_count) for e in filter_.entries()
        }
        assert observed == expected

    def test_resident_count(self, kind):
        filter_ = make_filter(kind, 2)
        filter_.insert(1, 10, 4)
        (entry,) = filter_.entries()
        assert entry.resident_count == 6

    def test_top_k_descending(self, kind):
        filter_ = make_filter(kind, 5)
        for key, count in [(1, 5), (2, 9), (3, 2), (4, 7)]:
            filter_.insert(key, count, 0)
        assert filter_.top_k(3) == [(2, 9), (4, 7), (1, 5)]


class TestSetCounts:
    def test_decrease_updates_counts(self, kind):
        filter_ = make_filter(kind, 3)
        filter_.insert(1, 10, 2)
        filter_.set_counts(1, 6, 2)
        assert filter_.get_counts(1) == (6, 2)

    def test_decrease_can_change_min(self, kind):
        filter_ = make_filter(kind, 3)
        filter_.insert(1, 10, 0)
        filter_.insert(2, 5, 0)
        filter_.set_counts(1, 2, 0)
        assert filter_.min_new_count() == 2
        evicted = filter_.replace_min(9, 99, 99)
        assert evicted.key == 1


class TestExchangeSimulation:
    def test_mimics_asketch_usage_pattern(self, kind, rng):
        """Drive the filter exactly as Algorithm 1 would, then check state."""
        filter_ = make_filter(kind, 8)
        reference: dict[int, tuple[int, int]] = {}
        for _ in range(2000):
            key = int(rng.integers(0, 50))
            amount = int(rng.integers(1, 4))
            if filter_.add_if_present(key, amount):
                new, old = reference[key]
                reference[key] = (new + amount, old)
            elif not filter_.is_full:
                filter_.insert(key, amount, 0)
                reference[key] = (amount, 0)
            else:
                estimate = int(rng.integers(1, 400))
                if estimate > filter_.min_new_count():
                    evicted = filter_.replace_min(key, estimate, estimate)
                    expected_new, expected_old = reference.pop(evicted.key)
                    assert (evicted.new_count, evicted.old_count) == (
                        expected_new,
                        expected_old,
                    )
                    reference[key] = (estimate, estimate)
        for key, (new, old) in reference.items():
            assert filter_.get_counts(key) == (new, old)


class TestOpsAccounting:
    def test_probe_charged_per_lookup(self, kind):
        filter_ = make_filter(kind, 32)
        before = filter_.ops.filter_probes
        filter_.add_if_present(1, 1)
        filter_.get_counts(1)
        assert filter_.ops.filter_probes == before + 2

    def test_hits_counted(self, kind):
        filter_ = make_filter(kind, 4)
        filter_.insert(1, 1, 0)
        filter_.add_if_present(1, 1)
        filter_.add_if_present(2, 1)
        assert filter_.ops.filter_hits == 1

    def test_size_bytes(self, kind):
        filter_ = make_filter(kind, 10)
        assert filter_.size_bytes == 10 * type(filter_).BYTES_PER_SLOT
