"""Tests for the sliding-window extension (Appendix-A deletions)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.window import SlidingWindowASketch
from repro.errors import ConfigurationError
from repro.streams.zipf import zipf_stream


class TestBasics:
    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowASketch(0, total_bytes=32 * 1024)

    def test_fill_phase(self):
        window = SlidingWindowASketch(10, total_bytes=32 * 1024)
        for key in range(5):
            window.process(key)
        assert len(window) == 5
        assert not window.is_saturated
        np.testing.assert_array_equal(
            window.window_contents(), np.arange(5)
        )

    def test_eviction_order(self):
        window = SlidingWindowASketch(3, total_bytes=32 * 1024)
        for key in [1, 2, 3, 4, 5]:
            window.process(key)
        np.testing.assert_array_equal(
            window.window_contents(), np.array([3, 4, 5])
        )
        assert len(window) == 3

    def test_expired_key_count_drops(self):
        window = SlidingWindowASketch(4, total_bytes=32 * 1024, seed=1)
        for key in [7, 7, 7, 7]:
            window.process(key)
        assert window.query(7) == 4
        for key in [8, 9, 10, 11]:
            window.process(key)
        assert window.query(7) == 0


class TestOneSidedOverWindow:
    def test_never_underestimates_window_counts(self, rng):
        window = SlidingWindowASketch(
            500, total_bytes=32 * 1024, filter_items=8, seed=2
        )
        keys = rng.integers(0, 60, size=3000)
        for key in keys.tolist():
            window.process(int(key))
        truth = Counter(keys[-500:].tolist())
        for key in range(60):
            assert window.query(key) >= truth.get(key, 0)

    def test_heavy_item_exact_in_window(self):
        stream = zipf_stream(8000, 2000, 1.6, seed=93)
        window = SlidingWindowASketch(
            2000, total_bytes=64 * 1024, filter_items=32, seed=3
        )
        window.process_stream(stream.keys)
        truth = Counter(stream.keys[-2000:].tolist())
        top_key, top_count = truth.most_common(1)[0]
        estimate = window.query(top_key)
        assert estimate >= top_count
        assert estimate <= top_count + 50


class TestTopKOverWindow:
    def test_topk_tracks_recent_distribution_shift(self):
        """Keys dominant early must vanish from top-k once expired."""
        window = SlidingWindowASketch(
            1000, total_bytes=64 * 1024, filter_items=16, seed=4
        )
        early = np.full(2000, 111, dtype=np.int64)
        late = np.full(2000, 222, dtype=np.int64)
        window.process_stream(early)
        assert window.top_k(1)[0][0] == 111
        window.process_stream(late)
        assert window.top_k(1)[0][0] == 222
        assert window.query(111) == 0

    def test_batch_query(self, rng):
        window = SlidingWindowASketch(100, total_bytes=32 * 1024, seed=5)
        keys = rng.integers(0, 20, size=500)
        window.process_stream(keys)
        probe = list(range(20))
        assert window.query_batch(probe) == [
            window.query(key) for key in probe
        ]
