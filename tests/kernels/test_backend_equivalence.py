"""End-to-end backend equivalence: whole pipelines are bit-identical.

The kernel layer's contract is not "about the same" — it is exact: an
ASketch ingest run under any backend must leave the identical filter
entries, sketch cells, mass bookkeeping, and answers as under any other
backend.  These tests drive full pipelines (ASketch over every filter
kind, weighted sketch updates, and the multiprocess runtime) under each
backend pair and compare complete states.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.kernels import available_backends, use_backend
from repro.runtime.engine import StreamEngine
from repro.runtime.parallel import parallel_ingest
from repro.runtime.sharding import ShardedASketch
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

FILTER_KINDS = ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
BACKEND_NAMES = [
    name for name in ("python", "numpy", "numba") if name in available_backends()
]
PAIRS = [
    (left, BACKEND_NAMES[j])
    for i, left in enumerate(BACKEND_NAMES)
    for j in range(i + 1, len(BACKEND_NAMES))
]


def build(seed: int, kind: str) -> ASketch:
    sketch = CountMinSketch(num_hashes=3, row_width=23, seed=seed)
    return ASketch(sketch=sketch, filter_items=8, filter_kind=kind)


def full_state(asketch: ASketch):
    return (
        {
            entry.key: (entry.new_count, entry.old_count)
            for entry in asketch.filter.entries()
        },
        asketch.sketch.table.tolist(),
        asketch.total_mass,
        asketch.overflow_mass,
        asketch.miss_events,
        asketch.exchange_count,
    )


def ingest(backend_name: str, kind: str, keys: np.ndarray, chunk: int):
    with use_backend(backend_name):
        asketch = build(seed=17, kind=kind)
        for start in range(0, keys.shape[0], chunk):
            asketch.process_batch(keys[start : start + chunk])
        probes = sorted(set(keys.tolist())) + [10**6]
        return full_state(asketch), asketch.query_batch(probes)


@pytest.mark.parametrize("left,right", PAIRS, ids=lambda p: str(p))
class TestBackendPairs:
    @pytest.mark.parametrize("kind", FILTER_KINDS)
    def test_asketch_ingest_bit_identical(self, left, right, kind):
        keys = zipf_stream(6_000, 2_000, 1.3, seed=93).keys
        state_l, answers_l = ingest(left, kind, keys, chunk=512)
        state_r, answers_r = ingest(right, kind, keys, chunk=512)
        assert state_l == state_r
        assert answers_l == answers_r

    def test_weighted_updates_bit_identical(self, left, right):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 3_000, size=5_000)
        amounts = rng.integers(1, 20, size=5_000).astype(np.int64)
        tables = {}
        estimates = {}
        for name in (left, right):
            with use_backend(name):
                sketch = CountMinSketch(num_hashes=4, row_width=97, seed=29)
                sketch.update_batch_weighted(keys, amounts)
                tables[name] = sketch.table.copy()
                estimates[name] = sketch.estimate_batch(keys[:500])
        assert np.array_equal(tables[left], tables[right])
        assert np.array_equal(
            np.asarray(estimates[left]), np.asarray(estimates[right])
        )

    def test_sharded_engine_bit_identical(self, left, right):
        keys = zipf_stream(8_000, 3_000, 1.4, seed=61).keys
        chunks = [keys[i : i + 1_000] for i in range(0, keys.shape[0], 1_000)]
        states = {}
        for name in (left, right):
            with use_backend(name):
                group = ShardedASketch(
                    3, total_bytes=32 * 1024, filter_items=16, seed=31
                )
                StreamEngine(group, batched=True).run(iter(chunks))
                states[name] = group.state()
        assert states[left].equals(states[right])


@pytest.mark.skipif(
    "python" not in available_backends(), reason="python backend unavailable"
)
def test_parallel_workers_inherit_parent_backend():
    """Workers spawned under a non-default backend must reproduce the
    sequential numpy result exactly — proving both the backend hand-off
    to child processes and cross-backend identity in one go."""
    stream = zipf_stream(12_000, 4_000, 1.5, seed=171)
    chunks = [
        stream.keys[i : i + 2_000] for i in range(0, len(stream), 2_000)
    ]
    group_params = {"total_bytes": 32 * 1024, "filter_items": 16, "seed": 31}

    with use_backend("numpy"):
        sequential = ShardedASketch(2, **group_params)
        StreamEngine(sequential, batched=True).run(iter(chunks))

    with use_backend("python"):
        supervisor, stats = parallel_ingest(
            iter(chunks), 2, shards=2, **group_params
        )
    assert stats.tuples_ingested == len(stream)
    assert supervisor.group.state().equals(sequential.state())
