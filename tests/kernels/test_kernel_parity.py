"""Raw kernel parity: every backend answers every operation identically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.families import (
    CarterWegmanHash,
    cw_fold_columns,
    encode_key_array,
)
from repro.kernels import available_backends
from repro.kernels._backends import NumpyBackend, PythonBackend

BACKENDS = [PythonBackend(), NumpyBackend()]
if "numba" in available_backends():
    from repro.kernels._backends import NumbaBackend

    BACKENDS.append(NumbaBackend())

BACKEND_IDS = [backend.name for backend in BACKENDS]


@pytest.fixture(params=BACKENDS, ids=BACKEND_IDS)
def backend(request):
    return request.param


def _reference_backend():
    return BACKENDS[1]  # numpy


class TestMembershipProbe:
    def test_hits_misses_and_empty_slots(self, backend):
        # Slots hold key + 1; zeros are empty.
        ids = np.array([6, 0, 3, 12, 0, 1], dtype=np.int64)
        keys = np.array([5, 2, 11, 0, 7, 5], dtype=np.int64)
        slots = backend.membership_probe(ids, keys)
        assert slots.tolist() == [0, 2, 3, 5, -1, 0]

    def test_negative_key_never_matches_empty_slot(self, backend):
        # key -1 encodes to target 0, the empty-slot marker; it must
        # miss, not "find" the first hole.
        ids = np.array([0, 4, 0], dtype=np.int64)
        slots = backend.membership_probe(
            ids, np.array([-1, 3, -5], dtype=np.int64)
        )
        assert slots.tolist() == [-1, 1, -1]

    def test_all_empty_filter(self, backend):
        ids = np.zeros(8, dtype=np.int64)
        slots = backend.membership_probe(
            ids, np.array([0, 1, 2], dtype=np.int64)
        )
        assert slots.tolist() == [-1, -1, -1]

    def test_empty_key_batch(self, backend):
        ids = np.array([5, 3], dtype=np.int64)
        slots = backend.membership_probe(ids, np.empty(0, dtype=np.int64))
        assert slots.shape == (0,)

    def test_random_batches_match_reference(self, backend):
        rng = np.random.default_rng(11)
        reference = _reference_backend()
        for _ in range(5):
            capacity = int(rng.integers(1, 64))
            monitored = rng.choice(
                np.arange(1000), size=capacity, replace=False
            )
            ids = np.zeros(capacity, dtype=np.int64)
            occupancy = int(rng.integers(0, capacity + 1))
            ids[:occupancy] = monitored[:occupancy] + 1
            keys = rng.integers(0, 1500, size=200).astype(np.int64)
            assert np.array_equal(
                backend.membership_probe(ids, keys),
                reference.membership_probe(ids, keys),
            )


def _cw_params(num_rows: int, width: int, seed: int):
    hashes = [CarterWegmanHash(width, seed * 1_000_003 + r) for r in range(num_rows)]
    params = [h.kernel_params for h in hashes]
    return hashes, (
        np.array([p[0] for p in params], dtype=np.int64),
        np.array([p[1] for p in params], dtype=np.int64),
        np.array([p[2] for p in params], dtype=np.int64),
    )


class TestCountMinKernels:
    def test_update_matches_hash_array_scatter(self, backend):
        rng = np.random.default_rng(3)
        width, rows = 37, 4
        hashes, (a_hi, a_lo, b_mod) = _cw_params(rows, width, seed=5)
        encoded = encode_key_array(rng.integers(0, 500, size=300))
        amounts = rng.integers(1, 9, size=300).astype(np.int64)

        table = np.zeros((rows, width), dtype=np.int64)
        backend.cm_update_weighted(table, a_hi, a_lo, b_mod, encoded, amounts)

        expected = np.zeros((rows, width), dtype=np.int64)
        for row, family in enumerate(hashes):
            np.add.at(expected[row], family.hash_array(encoded), amounts)
        assert np.array_equal(table, expected)

    def test_estimate_matches_hash_array_gather(self, backend):
        rng = np.random.default_rng(4)
        width, rows = 29, 3
        hashes, (a_hi, a_lo, b_mod) = _cw_params(rows, width, seed=9)
        table = rng.integers(0, 1000, size=(rows, width)).astype(np.int64)
        encoded = encode_key_array(rng.integers(0, 500, size=100))

        estimates = backend.cm_estimate(table, a_hi, a_lo, b_mod, encoded)

        expected = np.full(encoded.shape[0], np.iinfo(np.int64).max)
        for row, family in enumerate(hashes):
            columns = family.hash_array(encoded)
            np.minimum(expected, table[row, columns], out=expected)
        assert np.array_equal(estimates, expected)

    def test_fold_matches_scalar_hash(self):
        # The shared folding equals the scalar ((a*x + b) % p) % h for
        # every backend-eligible key — the identity the int64 Mersenne
        # reduction argument rests on.
        family = CarterWegmanHash(101, seed=42)
        a_hi, a_lo, b_mod = family.kernel_params
        keys = np.array(
            [0, 1, 2, (1 << 31) - 1, 12345, 999_999_999], dtype=np.int64
        )
        folded = cw_fold_columns(a_hi, a_lo, b_mod, keys, 101)
        assert folded.tolist() == [family(int(k)) for k in keys.tolist()]


class TestExchangeCandidates:
    def test_positions_above_threshold(self, backend):
        estimates = np.array([5, 1, 9, 3, 9, 2], dtype=np.int64)
        assert backend.exchange_candidates(estimates, 3).tolist() == [0, 2, 4]
        assert backend.exchange_candidates(estimates, 9).tolist() == []
        assert backend.exchange_candidates(estimates, 0).tolist() == [
            0, 1, 2, 3, 4, 5,
        ]

    def test_empty(self, backend):
        out = backend.exchange_candidates(np.empty(0, dtype=np.int64), 5)
        assert out.shape == (0,)
