"""Backend registry: selection, env resolution, fallback, stamping."""

from __future__ import annotations

import warnings

import pytest

import repro.kernels as kernels
from repro.errors import ConfigurationError
from repro.kernels import (
    DEFAULT_BACKEND,
    active_backend,
    available_backends,
    backend_fallback_reason,
    reset_backend,
    set_backend,
    stamp_backend,
    use_backend,
)
from repro.obs import MetricsRegistry

NUMBA_PRESENT = "numba" in available_backends()


@pytest.fixture(autouse=True)
def _restore_selection():
    """Every test leaves the process-global selection as it found it."""
    previous = kernels._active
    previous_reason = kernels._fallback_reason
    yield
    kernels._active = previous
    kernels._fallback_reason = previous_reason


class TestSelection:
    def test_default_is_numpy(self):
        reset_backend()
        assert active_backend().name == DEFAULT_BACKEND == "numpy"

    def test_available_always_has_reference_backends(self):
        names = available_backends()
        assert "numpy" in names
        assert "python" in names
        assert names == sorted(names)

    def test_set_backend_python(self):
        backend = set_backend("python")
        assert backend.name == "python"
        assert active_backend() is backend
        assert backend_fallback_reason() is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            set_backend("cuda")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        reset_backend()
        assert active_backend().name == "python"

    def test_env_var_empty_means_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "")
        reset_backend()
        assert active_backend().name == DEFAULT_BACKEND

    def test_use_backend_restores_previous(self):
        set_backend("numpy")
        with use_backend("python") as backend:
            assert backend.name == "python"
            assert active_backend() is backend
        assert active_backend().name == "numpy"

    def test_backends_are_cached(self):
        first = set_backend("python")
        second = set_backend("python")
        assert first is second


@pytest.mark.skipif(NUMBA_PRESENT, reason="needs an environment WITHOUT numba")
class TestNumbaAbsentFallback:
    def test_requesting_numba_falls_back_to_numpy_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = set_backend("numba")
        assert backend.name == "numpy"
        assert active_backend().name == "numpy"
        reason = backend_fallback_reason()
        assert reason is not None and "numba" in reason

    def test_fallback_raises_warning_metric(self):
        with pytest.warns(RuntimeWarning):
            set_backend("numba")
        registry = MetricsRegistry()
        stamp_backend(registry)
        assert registry.value("kernels_backend_fallback") == 1.0
        assert registry.value("kernels_backend_info", backend="numpy") == 1.0

    def test_numba_not_listed_available(self):
        assert "numba" not in available_backends()


@pytest.mark.skipif(not NUMBA_PRESENT, reason="needs numba installed")
class TestNumbaPresent:
    def test_numba_selects_cleanly(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = set_backend("numba")
        assert backend.name == "numba"
        assert backend.accelerated
        assert backend_fallback_reason() is None


class TestStamping:
    def test_stamp_records_active_backend(self):
        set_backend("python")
        registry = MetricsRegistry()
        stamp_backend(registry)
        assert registry.value("kernels_backend_info", backend="python") == 1.0
        assert registry.value("kernels_backend_fallback") == 0.0
