"""Every registered synopsis kind roundtrips through save/load bit-for-bit.

The acceptance bar of the synopsis-state protocol: after
``load_synopsis(save_synopsis(x))`` the restored object answers every
probe identically *and* continues identically under further ingest —
the restored internal layout (heap slots, bucket order, free lists,
pending tables) matches the original's, not just its visible counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.persistence import load_synopsis, save_synopsis
from repro.streams.zipf import zipf_stream
from repro.synopses import SynopsisSpec, build_synopsis

STREAM = zipf_stream(20_000, 5_000, 1.4, seed=33)
PROBE = STREAM.keys[:200]

#: One representative spec per registered kind (small sizes for speed).
SPECS = [
    SynopsisSpec(
        "count-min",
        {"num_hashes": 4, "row_width": 256, "seed": 7, "conservative": True},
    ),
    SynopsisSpec("count-sketch", {"num_hashes": 5, "row_width": 256, "seed": 7}),
    SynopsisSpec(
        "fcm",
        {"num_hashes": 8, "row_width": 128, "mg_capacity": 16, "seed": 7},
    ),
    SynopsisSpec(
        "hierarchical-count-min",
        {"domain_bits": 13, "total_bytes": 64 * 1024, "num_hashes": 4,
         "seed": 7},
    ),
    SynopsisSpec(
        "holistic-udaf",
        {"table_items": 16, "total_bytes": 16 * 1024, "seed": 7},
    ),
    SynopsisSpec("space-saving", {"capacity": 24, "estimate_mode": "min"}),
    SynopsisSpec("misra-gries", {"capacity": 24}),
    SynopsisSpec(
        "sf-sketch",
        {"num_hashes": 4, "total_bytes": 8 * 1024, "fat_ratio": 4, "seed": 7},
    ),
    SynopsisSpec(
        "salsa-cm",
        {"num_hashes": 4, "total_bytes": 8 * 1024, "seed": 7},
    ),
    SynopsisSpec(
        "asketch",
        {"total_bytes": 16 * 1024, "filter_items": 8, "seed": 7},
    ),
    SynopsisSpec(
        "sliding-window-asketch",
        {"window_size": 4096, "total_bytes": 8 * 1024, "filter_items": 8,
         "seed": 7},
    ),
    SynopsisSpec(
        "sharded-asketch",
        {"shards": 3, "total_bytes": 8 * 1024, "filter_items": 8, "seed": 7},
    ),
]

SPEC_IDS = [spec.kind for spec in SPECS]


def _ingest(synopsis, keys: np.ndarray) -> None:
    process = getattr(synopsis, "process_stream", None)
    if process is not None:
        process(keys)
        return
    for key in keys.tolist():
        synopsis.update(int(key))


def _estimates(synopsis) -> list[int]:
    return [int(synopsis.estimate(int(key))) for key in PROBE]


@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
class TestRoundtrip:
    def test_estimates_identical(self, spec, tmp_path):
        synopsis = build_synopsis(spec)
        _ingest(synopsis, STREAM.keys)
        path = tmp_path / "synopsis.npz"
        save_synopsis(synopsis, path)
        restored = load_synopsis(path)
        assert type(restored) is type(synopsis)
        assert _estimates(restored) == _estimates(synopsis)

    def test_continuation_identical(self, spec, tmp_path):
        """Further ingest lands identically: the layout was restored."""
        synopsis = build_synopsis(spec)
        _ingest(synopsis, STREAM.keys[:12_000])
        path = tmp_path / "synopsis.npz"
        save_synopsis(synopsis, path)
        restored = load_synopsis(path)
        _ingest(synopsis, STREAM.keys[12_000:])
        _ingest(restored, STREAM.keys[12_000:])
        assert _estimates(restored) == _estimates(synopsis)

    def test_size_preserved(self, spec, tmp_path):
        synopsis = build_synopsis(spec)
        path = tmp_path / "synopsis.npz"
        save_synopsis(synopsis, path)
        assert load_synopsis(path).size_bytes == synopsis.size_bytes


class TestAllFilterKindsContinue:
    """ASketch restore must preserve each filter's exact internal layout."""

    @pytest.mark.parametrize(
        "kind", ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
    )
    def test_filter_layout_survives(self, kind, tmp_path):
        spec = SynopsisSpec(
            "asketch",
            {"total_bytes": 8 * 1024, "filter_items": 8,
             "filter_kind": kind, "seed": 5},
        )
        asketch = build_synopsis(spec)
        _ingest(asketch, STREAM.keys[:10_000])
        path = tmp_path / "asketch.npz"
        save_synopsis(asketch, path)
        restored = load_synopsis(path)
        # Exchange-heavy continuation: eviction tie-breaks depend on the
        # physical slot/bucket order, so identical answers mean the
        # layout — not just the entry set — was restored.
        _ingest(asketch, STREAM.keys[10_000:])
        _ingest(restored, STREAM.keys[10_000:])
        assert restored.query_batch(PROBE) == asketch.query_batch(PROBE)
        assert restored.exchange_count == asketch.exchange_count
        assert restored.top_k() == asketch.top_k()


class TestShardedReduce:
    def test_reduce_is_non_destructive(self):
        group = build_synopsis(SPECS[-1])
        group.process_stream(STREAM.keys)
        before = [int(v) for v in group.query_batch(PROBE)]
        reduced = group.reduce()
        assert [int(v) for v in group.query_batch(PROBE)] == before
        assert reduced.total_mass == group.total_mass

    def test_reduce_one_sided(self):
        group = build_synopsis(SPECS[-1])
        group.process_stream(STREAM.keys)
        reduced = group.reduce()
        for key, count in STREAM.exact.items():
            assert reduced.query(int(key)) >= count

    def test_reduced_checkpoint_roundtrips(self, tmp_path):
        group = build_synopsis(SPECS[-1])
        group.process_stream(STREAM.keys)
        reduced = group.reduce()
        path = tmp_path / "reduced.npz"
        save_synopsis(reduced, path)
        restored = load_synopsis(path)
        assert restored.query_batch(PROBE) == reduced.query_batch(PROBE)
