"""Every registered kind builds, persists, and merges (or refuses, typed).

The registry (``repro.synopses.spec``) is the single construction path
for the CLI, experiments, checkpoints and shard groups — so a kind that
is registered but cannot build from a spec, or whose state does not
survive ``save_synopsis``/``load_synopsis``, is a latent production
bug.  This suite closes the loop: the ``DEFAULT_PARAMS`` table below
must cover the registry *exactly* (adding a kind without a row here
fails the test), and every kind must

1. build from a plain ``SynopsisSpec``;
2. roundtrip through save/load with ``SynopsisState.equals`` —
   bit-identical params, arrays and extra, not just equal answers;
3. either merge losslessly (one-sided over the union of two split
   streams) or refuse with a typed :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.persistence import load_synopsis, save_synopsis
from repro.streams.zipf import zipf_stream
from repro.synopses import SynopsisSpec, build_synopsis, registered_kinds
from repro.synopses.protocol import synopsis_state_of

STREAM = zipf_stream(12_000, 3_000, 1.3, seed=41)

#: One buildable parameter set per registered kind.  Keep in sync with
#: ``repro.synopses.spec._BUILTIN_KINDS`` — the completeness test below
#: fails when a kind is registered without a row here (or vice versa).
DEFAULT_PARAMS: dict[str, dict] = {
    "count-min": {"num_hashes": 4, "row_width": 256, "seed": 3},
    "count-sketch": {"num_hashes": 5, "row_width": 256, "seed": 3},
    "fcm": {"num_hashes": 4, "row_width": 128, "mg_capacity": 16, "seed": 3},
    "hierarchical-count-min": {
        "domain_bits": 13, "total_bytes": 32 * 1024, "num_hashes": 4,
        "seed": 3,
    },
    "holistic-udaf": {"table_items": 16, "total_bytes": 16 * 1024, "seed": 3},
    "sf-sketch": {
        "num_hashes": 4, "total_bytes": 8 * 1024, "fat_ratio": 4, "seed": 3,
    },
    "salsa-cm": {"num_hashes": 4, "total_bytes": 8 * 1024, "seed": 3},
    "space-saving": {"capacity": 24},
    "misra-gries": {"capacity": 24},
    "asketch": {"total_bytes": 16 * 1024, "filter_items": 8, "seed": 3},
    "sliding-window-asketch": {
        "window_size": 4096, "total_bytes": 8 * 1024, "filter_items": 8,
        "seed": 3,
    },
    "sharded-asketch": {
        "shards": 2, "total_bytes": 8 * 1024, "filter_items": 8, "seed": 3,
    },
    "shard-supervisor": {
        "shards": 2, "total_bytes": 8 * 1024, "filter_items": 8, "seed": 3,
    },
}

#: Kinds whose estimates are *not* one-sided over-estimates (signed
#: estimators / decremented counters) — merge losslessness is checked
#: via mass instead of per-key dominance for these.
NOT_ONE_SIDED = {"count-sketch", "misra-gries", "space-saving"}


def _build(kind: str):
    return build_synopsis(SynopsisSpec(kind, dict(DEFAULT_PARAMS[kind])))


def _ingest(synopsis, keys: np.ndarray) -> None:
    process = getattr(synopsis, "process_stream", None)
    if process is not None:
        process(keys)
        return
    for key in keys.tolist():
        synopsis.update(int(key))


def _estimate(synopsis, key: int) -> int:
    return int(synopsis.estimate(int(key)))


def test_every_registered_kind_has_default_params():
    assert sorted(DEFAULT_PARAMS) == registered_kinds()


@pytest.mark.parametrize("kind", sorted(DEFAULT_PARAMS))
class TestEveryRegisteredKind:
    def test_builds_from_spec(self, kind):
        synopsis = _build(kind)
        assert synopsis.SYNOPSIS_KIND == kind
        assert synopsis.size_bytes > 0

    def test_state_roundtrips_bit_identically(self, kind, tmp_path):
        synopsis = _build(kind)
        _ingest(synopsis, STREAM.keys)
        path = tmp_path / f"{kind}.npz"
        save_synopsis(synopsis, path)
        restored = load_synopsis(path)
        assert type(restored) is type(synopsis)
        assert synopsis_state_of(restored).equals(synopsis_state_of(synopsis))

    def test_merges_losslessly_or_raises_typed(self, kind):
        half = STREAM.keys.shape[0] // 2
        a, b = _build(kind), _build(kind)
        _ingest(a, STREAM.keys[:half])
        _ingest(b, STREAM.keys[half:])
        try:
            a.merge(b)
        except ReproError:
            # A typed refusal is a valid contract (sliding windows,
            # geometry mismatches) — a bare TypeError/AttributeError
            # is not, and would escape this except clause.
            return
        keys, counts = np.unique(STREAM.keys, return_counts=True)
        if kind in NOT_ONE_SIDED:
            # Signed/decremented estimators: merged top estimates must
            # still cover the union's head mass within their usual bias.
            assert _estimate(a, int(keys[np.argmax(counts)])) > 0
        else:
            for key, count in zip(keys.tolist(), counts.tolist()):
                assert _estimate(a, key) >= count, kind
