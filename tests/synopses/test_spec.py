"""Tests for declarative synopsis specs and the kind registry."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.counters.misra_gries import MisraGries
from repro.counters.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.experiments.common import METHOD_LABELS, build_method
from repro.experiments.config import ExperimentConfig
from repro.sketches.count_min import CountMinSketch
from repro.synopses import (
    SynopsisSpec,
    build_synopsis,
    register_synopsis,
    registered_kinds,
    resolve_kind,
)


class TestRegistry:
    def test_all_builtin_kinds_resolve(self):
        for kind in registered_kinds():
            cls = resolve_kind(kind)
            assert cls.SYNOPSIS_KIND == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown synopsis kind"):
            resolve_kind("bloom-filter")

    def test_runtime_registration(self):
        class TinyExact:
            SYNOPSIS_KIND = "tiny-exact"

            def __init__(self, limit: int = 8) -> None:
                self.limit = limit

        register_synopsis("tiny-exact", TinyExact)
        try:
            assert "tiny-exact" in registered_kinds()
            built = build_synopsis(SynopsisSpec("tiny-exact", {"limit": 3}))
            assert isinstance(built, TinyExact)
            assert built.limit == 3
        finally:
            from repro.synopses.spec import _RUNTIME_KINDS

            _RUNTIME_KINDS.pop("tiny-exact", None)

    def test_empty_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            register_synopsis("", object)


class TestSpec:
    def test_build_count_min(self):
        spec = SynopsisSpec(
            "count-min", {"num_hashes": 4, "row_width": 64, "seed": 3}
        )
        sketch = build_synopsis(spec)
        assert isinstance(sketch, CountMinSketch)
        assert (sketch.num_hashes, sketch.row_width, sketch.seed) == (4, 64, 3)

    def test_invalid_params_raise_configuration_error(self):
        spec = SynopsisSpec("count-min", {"rows": 4})
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            build_synopsis(spec)

    def test_with_params_overrides(self):
        base = SynopsisSpec("count-min", {"row_width": 64, "seed": 0})
        derived = base.with_params(seed=7)
        assert derived.params["seed"] == 7
        assert base.params["seed"] == 0  # the original is untouched

    def test_dict_roundtrip(self):
        spec = SynopsisSpec("asketch", {"total_bytes": 4096, "seed": 2})
        assert SynopsisSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            SynopsisSpec.from_dict({"params": {}})


class TestExperimentSpecs:
    def test_every_method_id_builds_through_spec(self):
        config = ExperimentConfig(synopsis_bytes=16 * 1024, filter_items=8)
        for method in METHOD_LABELS:
            synopsis = build_synopsis(config.spec_for(method, seed=1))
            assert synopsis.size_bytes <= config.synopsis_bytes

    def test_build_method_matches_direct_construction(self):
        config = ExperimentConfig(synopsis_bytes=32 * 1024, filter_items=16)
        asketch = build_method("asketch", config, seed=5)
        assert isinstance(asketch, ASketch)
        direct = ASketch(
            total_bytes=32 * 1024, filter_items=16, num_hashes=8, seed=5
        )
        assert asketch.size_bytes == direct.size_bytes
        assert asketch.sketch.is_mergeable_with(direct.sketch)

    def test_space_saving_modes(self):
        config = ExperimentConfig(synopsis_bytes=16 * 1024)
        for method, mode in [
            ("space-saving-min", "min"),
            ("space-saving-zero", "zero"),
        ]:
            summary = build_method(method, config)
            assert isinstance(summary, SpaceSaving)
            assert summary.estimate_mode == mode

    def test_unknown_method_rejected(self):
        config = ExperimentConfig()
        with pytest.raises(ConfigurationError, match="unknown method"):
            config.spec_for("bloom-filter")


class TestProtocolConformance:
    def test_registered_kinds_satisfy_protocol_members(self):
        """Every registered class exposes the full synopsis interface."""
        for kind in registered_kinds():
            cls = resolve_kind(kind)
            for member in (
                "update",
                "estimate",
                "state",
                "from_state",
                "merge",
            ):
                assert callable(getattr(cls, member)), f"{kind}.{member}"
            assert isinstance(
                getattr(cls, "size_bytes"), property
            ), f"{kind}.size_bytes"

    def test_runtime_checkable_structural_match(self):
        from repro.synopses import Synopsis

        assert isinstance(MisraGries(4), Synopsis)
        assert isinstance(CountMinSketch(4, row_width=16), Synopsis)
        assert not isinstance(object(), Synopsis)
