"""Unit tests for the hash families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    CarterWegmanHash,
    MultiplyShiftHash,
    SignHash,
    make_hash_family,
)
from repro.hashing.families import MERSENNE_PRIME_61, key_to_int

ALL_FAMILIES = ["carter-wegman", "tabulation"]


class TestKeyToInt:
    def test_zigzag_values(self):
        assert key_to_int(0) == 0
        assert key_to_int(1) == 2
        assert key_to_int(-1) == 1
        assert key_to_int(12345) == 24690

    def test_mixed_sign_ints_map_injectively(self):
        values = [key_to_int(v) for v in range(-100, 101)]
        assert len(set(values)) == len(values)

    def test_negative_ints_are_non_negative(self):
        assert key_to_int(-1) >= 0
        assert key_to_int(-(10**12)) >= 0

    def test_numpy_integers_match_python_ints(self):
        assert key_to_int(np.int64(42)) == key_to_int(42)

    def test_strings_fold_to_61_bits(self):
        assert 0 <= key_to_int("hello") < MERSENNE_PRIME_61

    def test_encode_key_array_matches_scalar(self):
        from repro.hashing.families import encode_key_array

        keys = np.array([-5, -1, 0, 1, 7, 2**40], dtype=np.int64)
        np.testing.assert_array_equal(
            encode_key_array(keys),
            np.array([key_to_int(int(k)) for k in keys]),
        )


class TestRangeAndDeterminism:
    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_output_in_range(self, name):
        family = make_hash_family(name, 97, seed=5)
        for key in range(1000):
            assert 0 <= family(key) < 97

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_same_seed_same_function(self, name):
        first = make_hash_family(name, 128, seed=9)
        second = make_hash_family(name, 128, seed=9)
        keys = list(range(500))
        assert [first(k) for k in keys] == [second(k) for k in keys]

    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_different_seed_different_function(self, name):
        first = make_hash_family(name, 1 << 16, seed=1)
        second = make_hash_family(name, 1 << 16, seed=2)
        keys = list(range(200))
        assert [first(k) for k in keys] != [second(k) for k in keys]

    def test_multiply_shift_range(self):
        family = MultiplyShiftHash(256, seed=3)
        for key in range(2000):
            assert 0 <= family(key) < 256

    def test_multiply_shift_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MultiplyShiftHash(100, seed=0)

    def test_zero_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CarterWegmanHash(0, seed=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            make_hash_family("md5", 10, seed=0)


class TestVectorisedAgreement:
    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_hash_array_matches_scalar(self, name, rng):
        family = make_hash_family(name, 4084, seed=11)
        keys = rng.integers(0, 2**31 - 1, size=3000)
        vectorised = family.hash_array(keys)
        scalar = np.array([family(int(k)) for k in keys])
        np.testing.assert_array_equal(vectorised, scalar)

    def test_carter_wegman_large_keys_fallback(self):
        family = CarterWegmanHash(1009, seed=2)
        keys = np.array([2**40, 2**50, 2**33 + 7], dtype=np.int64)
        vectorised = family.hash_array(keys)
        scalar = np.array([family(int(k)) for k in keys])
        np.testing.assert_array_equal(vectorised, scalar)

    def test_multiply_shift_array_matches_scalar(self, rng):
        family = MultiplyShiftHash(1 << 12, seed=8)
        keys = rng.integers(0, 2**31 - 1, size=2000)
        np.testing.assert_array_equal(
            family.hash_array(keys),
            np.array([family(int(k)) for k in keys]),
        )


class TestDistributionQuality:
    @pytest.mark.parametrize("name", ALL_FAMILIES)
    def test_buckets_roughly_uniform(self, name, rng):
        buckets = 64
        family = make_hash_family(name, buckets, seed=21)
        keys = rng.integers(0, 2**30, size=64_000)
        counts = np.bincount(family.hash_array(keys), minlength=buckets)
        expected = len(keys) / buckets
        # Chi-square-ish sanity bound: no bucket deviates more than 25%.
        assert counts.min() > expected * 0.75
        assert counts.max() < expected * 1.25

    def test_pairwise_collision_rate(self, rng):
        """Collision probability of random key pairs is ~1/range."""
        output_range = 512
        family = CarterWegmanHash(output_range, seed=13)
        pairs = rng.integers(0, 2**30, size=(20_000, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        left = family.hash_array(pairs[:, 0])
        right = family.hash_array(pairs[:, 1])
        rate = float((left == right).mean())
        assert rate < 2.5 / output_range


class TestSignHash:
    def test_values_are_plus_minus_one(self):
        sign = SignHash(seed=4)
        values = {sign(key) for key in range(500)}
        assert values == {-1, 1}

    def test_roughly_balanced(self, rng):
        sign = SignHash(seed=6)
        keys = rng.integers(0, 2**30, size=20_000)
        mean = float(sign.hash_array(keys).mean())
        assert abs(mean) < 0.05

    def test_array_matches_scalar(self, rng):
        sign = SignHash(seed=10)
        keys = rng.integers(0, 2**30, size=1000)
        np.testing.assert_array_equal(
            sign.hash_array(keys), np.array([sign(int(k)) for k in keys])
        )
