"""Unit tests for the metrics registry primitives."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    current_registry,
    install_registry,
    uninstall_registry,
)
from repro.obs.registry import Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("ops")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("ops")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_thread_safety(self):
        counter = MetricsRegistry().counter("ops")

        def work():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000.0


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7.5)
        assert gauge.value == 7.5
        gauge.inc(-2.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_bucket_counts_are_cumulative_and_end_at_inf(self):
        histogram = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        pairs = histogram.bucket_counts()
        assert pairs == [(1.0, 1), (2.0, 2), (4.0, 3), (float("inf"), 4)]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.0)

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_quantile_interpolates(self):
        histogram = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)
        # All mass sits in the (1, 2] bucket: the median interpolates
        # inside it.
        assert 1.0 < histogram.quantile(0.5) <= 2.0

    def test_quantile_empty_and_overflow(self):
        histogram = Histogram("lat", buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) == 0.0
        histogram.observe(50.0)  # +Inf bucket
        assert histogram.quantile(0.99) == 2.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_default_buckets_cover_sub_millisecond_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("ops") is registry.counter("ops")
        assert registry.counter("ops", shard="0") is not registry.counter(
            "ops", shard="1"
        )

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("ops")
        with pytest.raises(ValueError):
            registry.gauge("ops")

    def test_value_of_absent_series_is_zero(self):
        registry = MetricsRegistry()
        assert registry.value("never_recorded") == 0.0
        assert registry.get("never_recorded") is None

    def test_instruments_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha", shard="1")
        registry.counter("alpha", shard="0")
        names = [
            (instrument.name, instrument.labels)
            for instrument in registry.instruments()
        ]
        assert names == sorted(names)


class TestInstallation:
    def test_not_installed_by_default(self):
        assert current_registry() is None

    def test_install_and_uninstall(self):
        registry = install_registry()
        assert current_registry() is registry
        uninstall_registry()
        assert current_registry() is None

    def test_install_specific_registry(self):
        mine = MetricsRegistry()
        assert install_registry(mine) is mine
        assert current_registry() is mine
