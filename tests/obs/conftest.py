"""Observability test fixtures: leak-proof registry/tracer teardown."""

from __future__ import annotations

import pytest

from repro.obs import (
    install_registry,
    uninstall_registry,
    uninstall_tracer,
)


@pytest.fixture(autouse=True)
def _clean_observability():
    """Guarantee no registry/tracer leaks between tests (even on failure)."""
    yield
    uninstall_registry()
    uninstall_tracer()


@pytest.fixture()
def registry():
    """A freshly installed registry, uninstalled after the test."""
    return install_registry()
