"""CLI observability: --metrics-json, stream targets, health, serve-metrics."""

from __future__ import annotations

import json
import urllib.request

from repro.cli import main
from repro.obs import validate_metrics_json


class TestRunMetricsJson:
    def test_zipf_stream_target_writes_valid_snapshot(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            ["run", "zipf", "--scale", "0.05", "--metrics-json", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ingested" in out
        document = json.loads(path.read_text())
        assert validate_metrics_json(document) == []
        derived = document["derived"]
        assert 0.0 <= derived["filter_hit_rate"] <= 1.0
        assert derived["exchange_count"] >= 0
        assert "checkpoint" in derived

    def test_uniform_stream_target(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            ["run", "uniform", "--scale", "0.02", "--metrics-json", str(path)]
        )
        assert code == 0
        assert validate_metrics_json(json.loads(path.read_text())) == []

    def test_trace_jsonl_written(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["run", "zipf", "--scale", "0.02", "--trace-jsonl",
             str(trace_path)]
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert any(event["name"] == "ingest" for event in events)
        assert any(event["name"] == "exchange" for event in events)

    def test_experiment_run_supports_metrics_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(
            ["run", "figure3", "--scale", "0.05", "--metrics-json",
             str(path)]
        )
        assert code == 0
        document = json.loads(path.read_text())
        assert validate_metrics_json(document) == []
        assert "filter_hit_rate" in document["derived"]

    def test_checkpointed_run_embeds_metrics_in_manifest(
        self, capsys, tmp_path
    ):
        directory = tmp_path / "ckpts"
        code = main(
            ["run", "asketch", "--checkpoint-dir", str(directory),
             "--checkpoint-every", "2", "--scale", "0.05"]
        )
        assert code == 0
        manifest = json.loads(
            (directory / "run-manifest.json").read_text()
        )
        assert validate_metrics_json(manifest["metrics"]) == []
        assert manifest["metrics"]["derived"]["checkpoint"] is not None


class TestHealth:
    def _checkpointed_run(self, tmp_path):
        directory = tmp_path / "ckpts"
        assert (
            main(
                ["run", "asketch", "--checkpoint-dir", str(directory),
                 "--checkpoint-every", "2", "--scale", "0.05"]
            )
            == 0
        )
        return directory

    def test_healthy_run_exits_zero(self, capsys, tmp_path):
        directory = self._checkpointed_run(tmp_path)
        capsys.readouterr()
        code = main(["health", "--checkpoint-dir", str(directory)])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["status"] == "ok"
        assert report["synopsis_kind"] == "asketch"
        assert report["tuples_ingested"] > 0

    def test_missing_directory_exits_two(self, capsys, tmp_path):
        code = main(
            ["health", "--checkpoint-dir", str(tmp_path / "missing")]
        )
        assert code == 2
        assert "no checkpoint journal" in capsys.readouterr().err

    def test_corrupt_checkpoints_exit_one(self, capsys, tmp_path):
        from repro.runtime.reliability import corrupt_file

        directory = self._checkpointed_run(tmp_path)
        for snapshot in directory.glob("gen-*.npz"):
            corrupt_file(snapshot, seed=1)
        capsys.readouterr()
        code = main(["health", "--checkpoint-dir", str(directory)])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["status"] == "unreadable"

    def test_degraded_supervisor_exits_one(self, capsys, tmp_path):
        import numpy as np

        from repro.runtime.reliability import (
            CheckpointStore,
            ShardSupervisor,
        )

        supervisor = ShardSupervisor(
            shards=2, total_bytes=8 * 1024, seed=3
        )
        supervisor.process_batch(
            np.arange(1_000, dtype=np.int64) % 50
        )
        supervisor._mark_failed(0, RuntimeError("injected"))
        store = CheckpointStore(tmp_path / "ckpts")
        store.save(supervisor, chunk_index=1, tuples_ingested=1_000)
        code = main(
            ["health", "--checkpoint-dir", str(tmp_path / "ckpts")]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["status"] == "degraded"
        assert any(
            shard["status"] != "ok" for shard in report["shards"]
        )


class TestServeMetrics:
    def test_serves_during_ingest_and_exits_clean(self, capsys):
        code = main(
            ["serve-metrics", "--scale", "0.02", "--chunk-size", "4000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving metrics at http://127.0.0.1:" in out
        assert "ingested" in out

    def test_scrape_during_linger(self, capsys, monkeypatch):
        """``--linger`` keeps the endpoint up after ingest; scraping it
        then sees the full run's metrics.  The linger sleep is patched
        to perform the scrape, so the test never actually waits."""
        import time as time_module

        scraped: dict[str, str] = {}

        def scrape_instead_of_sleeping(_seconds):
            out = capsys.readouterr().out
            url = out.split("serving metrics at ")[1].split()[0]
            with urllib.request.urlopen(url, timeout=5) as response:
                scraped["body"] = response.read().decode()

        monkeypatch.setattr(
            time_module, "sleep", scrape_instead_of_sleeping
        )
        code = main(
            ["serve-metrics", "--scale", "0.02", "--chunk-size", "4000",
             "--linger", "5.0"]
        )
        assert code == 0
        assert "engine_tuples_total" in scraped["body"]
        assert "asketch_filter_hits_total" in scraped["body"]
