"""Correctness of the metrics woven through ingest and recovery paths.

The instrumentation contract is observational: with a registry
installed the counters must reconcile exactly with the synopsis' own
bookkeeping (hits + misses = items, exchange counts match), and the
synopsis state must stay bit-identical to an unobserved run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.obs import (
    RecordingTraceSink,
    install_registry,
    install_tracer,
    uninstall_registry,
)
from repro.runtime.engine import EngineStats, StreamEngine
from repro.runtime.reliability import (
    DeadLetterQueue,
    FaultPlan,
    ResilientEngine,
    RetryPolicy,
)
from repro.runtime.sharding import ShardedASketch
from repro.streams.zipf import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(30_000, 8_000, 1.5, seed=17)


def make_asketch() -> ASketch:
    return ASketch(total_bytes=16 * 1024, filter_items=16, seed=5)


class TestASketchCounters:
    def test_scalar_hits_plus_misses_equal_items(self, stream, registry):
        asketch = make_asketch()
        asketch.process_stream(stream.keys)
        items = registry.value("asketch_items_total")
        hits = registry.value("asketch_filter_hits_total")
        misses = registry.value("asketch_filter_misses_total")
        assert items == stream.keys.shape[0]
        assert hits + misses == items
        assert registry.value("asketch_exchanges_total") == float(
            asketch.ops.exchanges
        )
        assert misses == float(asketch.miss_events)

    def test_batched_hits_plus_misses_equal_items(self, stream, registry):
        asketch = make_asketch()
        asketch.process_batch(stream.keys)
        items = registry.value("asketch_items_total")
        hits = registry.value("asketch_filter_hits_total")
        misses = registry.value("asketch_filter_misses_total")
        assert items == stream.keys.shape[0]
        assert hits + misses == items
        assert registry.value("asketch_exchanges_total") == float(
            asketch.ops.exchanges
        )

    def test_chunk_size_one_batched_matches_scalar_totals(self, stream):
        """Driving ``process_batch`` one key at a time is the scalar
        path in batch clothing: every counter total must agree."""
        keys = stream.keys[:4_000]

        scalar_registry = install_registry()
        scalar = make_asketch()
        scalar.process_stream(keys)
        scalar_totals = {
            name: scalar_registry.value(name)
            for name in (
                "asketch_items_total",
                "asketch_filter_hits_total",
                "asketch_filter_misses_total",
                "asketch_exchanges_total",
            )
        }
        uninstall_registry()

        batched_registry = install_registry()
        batched = make_asketch()
        for key in keys:
            batched.process_batch(np.asarray([key], dtype=np.int64))
        batched_totals = {
            name: batched_registry.value(name) for name in scalar_totals
        }
        assert batched_totals == scalar_totals
        assert batched.state().equals(scalar.state())

    def test_latency_histogram_observes_each_call(self, stream, registry):
        asketch = make_asketch()
        asketch.process_stream(stream.keys[:1_000])
        asketch.process_batch(stream.keys[1_000:2_000])
        histogram = registry.get("asketch_chunk_seconds")
        assert histogram.count == 2
        assert histogram.sum > 0.0


class TestBitIdenticalStates:
    def test_scalar_state_unchanged_by_observation(self, stream):
        bare = make_asketch()
        bare.process_stream(stream.keys)
        install_registry()
        observed = make_asketch()
        observed.process_stream(stream.keys)
        uninstall_registry()
        assert observed.state().equals(bare.state())

    def test_batched_state_unchanged_by_observation(self, stream):
        bare = make_asketch()
        bare.process_batch(stream.keys)
        install_registry()
        install_tracer(RecordingTraceSink())
        observed = make_asketch()
        observed.process_batch(stream.keys)
        assert observed.state().equals(bare.state())


class TestEngineMetrics:
    def test_engine_counters_reconcile(self, stream, registry):
        engine = StreamEngine(make_asketch())
        engine.every(10_000, lambda position: None)
        stats = engine.run(stream.chunks(5_000))
        assert registry.value("engine_tuples_total") == stats.tuples_ingested
        assert registry.value("engine_chunks_total") == stats.chunks_ingested
        assert registry.get("engine_chunk_seconds").count == (
            stats.chunks_ingested
        )
        assert registry.value("engine_items_per_s") > 0.0
        assert registry.value("engine_consumer_firings_total") == float(
            stats.consumer_firings
        )

    def test_ingest_spans_emitted(self, stream, registry):
        sink = RecordingTraceSink()
        install_tracer(sink)
        StreamEngine(make_asketch()).run(stream.chunks(10_000))
        spans = sink.named("ingest")
        assert [event.phase for event in spans[:2]] == ["enter", "exit"]
        assert spans[1].attrs["items"] == 10_000

    def test_exchange_points_emitted(self, stream):
        sink = RecordingTraceSink()
        install_tracer(sink)
        asketch = make_asketch()
        asketch.process_stream(stream.keys[:5_000])
        points = sink.named("exchange")
        assert len(points) == asketch.ops.exchanges
        assert all(event.phase == "point" for event in points)


class TestZeroWallTimeGuards:
    """Satellite regression: throughput accessors at zero wall time."""

    def test_engine_stats_zero_wall_time(self):
        stats = EngineStats(tuples_ingested=1_000, wall_seconds=0.0)
        assert stats.wall_throughput_items_per_ms == 0.0

    def test_phase_measurement_zero_wall_time(self):
        from repro.experiments.common import PhaseMeasurement
        from repro.hardware import OpCounters

        phase = PhaseMeasurement(
            ops=OpCounters(), wall_seconds=0.0, n_items=500
        )
        assert phase.wall_throughput_items_per_ms == 0.0


class TestShardMetrics:
    def test_shard_items_sum_to_stream(self, stream, registry):
        group = ShardedASketch(shards=4, total_bytes=8 * 1024, seed=3)
        group.process_batch(stream.keys)
        total = sum(
            registry.value("shard_items_total", shard=str(index))
            for index in range(4)
        )
        assert total == stream.keys.shape[0]
        assert registry.value("shard_skew") >= 1.0

    def test_scalar_route_records_too(self, stream, registry):
        group = ShardedASketch(shards=2, total_bytes=8 * 1024, seed=3)
        group.process_stream(stream.keys[:2_000])
        total = sum(
            registry.value("shard_items_total", shard=str(index))
            for index in range(2)
        )
        assert total == 2_000


class TestReliabilityMetrics:
    def test_checkpoint_metrics(self, stream, tmp_path, registry):
        sink = RecordingTraceSink()
        install_tracer(sink)
        engine = ResilientEngine(
            make_asketch(),
            checkpoint_dir=tmp_path / "ckpts",
            checkpoint_every=2,
        )
        engine.run(stream.chunks(5_000))
        written = registry.value("checkpoints_total")
        assert written == 3  # 6 chunks / every 2
        assert registry.value("checkpoint_bytes_total") > 0.0
        assert registry.value("journal_fsyncs_total") == written
        assert registry.get("checkpoint_seconds").count == written
        checkpoint_spans = sink.named("checkpoint")
        assert len(checkpoint_spans) == 2 * written

    def test_recovery_metrics(self, stream, tmp_path, registry):
        sink = RecordingTraceSink()
        install_tracer(sink)
        directory = tmp_path / "ckpts"
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=directory, checkpoint_every=2
        )
        chunks = list(stream.chunks(5_000))
        engine.run(chunks[:4])  # checkpoints at chunks 2 and 4

        resumed = ResilientEngine(
            make_asketch(), checkpoint_dir=directory, checkpoint_every=2
        )
        resumed.resume(chunks)
        assert registry.value("recoveries_total") == 1.0
        assert registry.value("recovery_restored_chunk_index") == 4.0
        assert registry.value("recovery_replay_chunks") == 2.0
        recover_spans = sink.named("recover")
        assert [event.phase for event in recover_spans] == ["enter", "exit"]

    def test_retry_metrics_by_error_class(self, stream, registry):
        engine = ResilientEngine(
            make_asketch(),
            default_retry_policy=RetryPolicy(jitter=0.0),
            sleep=lambda _delay: None,
        )
        engine.run(
            stream.chunks(5_000),
            fault_plan=FaultPlan(transient_errors={1: 2}),
        )
        assert (
            registry.value(
                "source_retries_total", error="TransientSourceError"
            )
            == 2.0
        )
        assert registry.value("source_backoff_seconds_total") > 0.0

    def test_dlq_metrics(self, registry):
        queue = DeadLetterQueue(capacity=1)
        queue.quarantine(0, "poison", None)
        queue.quarantine(1, "poison", None)
        assert registry.value("dlq_quarantined_total") == 2.0
        assert registry.value("dlq_dropped_total") == 1.0
        assert registry.value("dlq_depth") == 1.0
